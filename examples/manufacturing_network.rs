//! The paper's manufacturing application (Figure 4): four plants, global
//! files replicated with a master node per record, deferred replica
//! updates through suspense files — node autonomy through a network
//! partition, convergence after the heal.
//!
//! ```text
//! cargo run --example manufacturing_network
//! ```

use bytes::Bytes;
use encompass_tmf::encompass::app::{launch_mfg_app, read_replica, MfgAppParams};
use encompass_tmf::encompass::manufacturing::suspense;
use encompass_tmf::encompass::messages::{AppReply, AppRequest, ServerRequest};
use encompass_tmf::prelude::*;
use encompass_tmf::storage::media::{media_key, VolumeMedia};
use guardian::{Rpc, Target};
use std::cell::RefCell;
use std::rc::Rc;

/// Issues one `master-update` transaction and records success.
struct Update {
    node: NodeId,
    key: &'static str,
    value: &'static str,
    session: TmfSession,
    rpc: Rpc<ServerRequest, AppReply>,
    state: u8,
    ok: Rc<RefCell<Option<bool>>>,
}

impl Process for Update {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.state = 1;
        self.session.begin(ctx, SessionOptions::default(), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let payload = match self.session.accept(ctx, payload) {
            Ok(Some(ev)) => {
                match (self.state, ev) {
                    (1, SessionEvent::Began { .. }) => {
                        self.state = 2;
                        let env = ServerRequest {
                            transid: self.session.transid(),
                            options: self.session.options(),
                            request: AppRequest::new(
                                "master-update",
                                vec![
                                    Bytes::from_static(b"item"),
                                    Bytes::copy_from_slice(self.key.as_bytes()),
                                    Bytes::copy_from_slice(self.value.as_bytes()),
                                ],
                            ),
                        };
                        let _ = self.rpc.call(
                            ctx,
                            Target::Named(self.node, "$SC-mfg".into()),
                            env,
                            SimDuration::from_secs(2),
                            0,
                            0,
                        );
                    }
                    (3, SessionEvent::Committed { .. }) => {
                        *self.ok.borrow_mut() = Some(true);
                    }
                    (_, SessionEvent::Aborted { .. }) | (_, SessionEvent::Failed { .. }) => {
                        *self.ok.borrow_mut() = Some(false);
                    }
                    _ => {}
                }
                return;
            }
            Ok(None) => return,
            Err(p) => p,
        };
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            if self.state == 2 && c.body.ok {
                self.state = 3;
                self.session.end(ctx, 0);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        let _ = self.session.on_timer(ctx, tag);
        let _ = self.rpc.on_timer(ctx, tag);
    }
}

fn main() {
    let mut app = launch_mfg_app(MfgAppParams::default());
    let plants = ["Cupertino", "Santa Clara", "Reston", "Neufahrn"];
    let n0 = app.nodes[0];
    let n3 = app.nodes[3];

    println!("manufacturing network up: 4 plants, global files item/bom/pohead replicated everywhere");
    println!();
    println!("1. partitioning {} ({n3}) off the network", plants[3]);
    app.world.inject(Fault::Partition(vec![n3]));

    println!("2. updating item 'widget' at its master {} ({n0}) — node autonomy says this must work", plants[0]);
    let ok = Rc::new(RefCell::new(None));
    let catalog = app.catalog.clone();
    app.world.spawn(
        n0,
        2,
        Box::new(Update {
            node: n0,
            key: "widget",
            value: "rev-42",
            session: TmfSession::new(catalog, 5),
            rpc: Rpc::new(40),
            state: 0,
            ok: ok.clone(),
        }),
    );
    app.world.run_for(SimDuration::from_secs(15));
    println!("   committed: {:?}", ok.borrow().unwrap());

    let show = |app: &mut encompass_tmf::encompass::app::AppHandles| {
        for (i, &n) in app.nodes.clone().iter().enumerate() {
            let r = read_replica(&mut app.world, n, "item", b"widget");
            let backlog = app
                .world
                .stable()
                .get::<VolumeMedia>(&media_key(n, "$MFG"))
                .and_then(|m| m.file(&suspense(n)))
                .map(|f| f.len())
                .unwrap_or(0);
            println!(
                "   {:12} replica: {:28} suspense backlog: {}",
                plants[i],
                r.map(|b| format!("{:?}", String::from_utf8_lossy(&b[1..])))
                    .unwrap_or_else(|| "<absent>".into()),
                backlog
            );
        }
    };
    println!("3. replica state while {} is cut off:", plants[3]);
    show(&mut app);

    println!("4. healing the partition; the suspense monitor drains deferred updates in order");
    app.world.inject(Fault::HealAllLinks);
    app.world.run_for(SimDuration::from_secs(30));
    println!("   replica state after the heal:");
    show(&mut app);
    println!();
    println!(
        "   suspense updates applied: {}",
        app.world.metrics().get("suspense.applied")
    );
    println!("   global file copies converged to a consistent state — Figure 4's design works");
}
