//! A fault-tolerant bank: the full ENCOMPASS stack — terminals driven by a
//! Terminal Control Process pair, a dynamically-sized server class, TMF,
//! audit trails — surviving a processor failure mid-workload with on-line
//! transaction backout (no halt, no restart).
//!
//! ```text
//! cargo run --example fault_tolerant_bank
//! ```

use encompass_tmf::encompass::workload::total_balance;
use encompass_tmf::prelude::*;
use encompass_tmf::sim::CpuId;

fn main() {
    let terminals = 8usize;
    let txns = 20u64;
    let accounts = 500u64;
    let mut app = launch_bank_app(BankAppParams {
        accounts,
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        think: SimDuration::from_millis(2),
        ..BankAppParams::default()
    });
    let node = app.nodes[0];

    println!("bank open: {terminals} terminals x {txns} debit transactions over {accounts} accounts");
    println!("running 1 virtual second of workload …");
    app.world.run_for(SimDuration::from_secs(1));
    println!(
        "  t=1s   commits so far: {}",
        app.world.metrics().get("tcp.commits")
    );

    println!("!! killing CPU 2 (hosts the DISCPROCESS primary and some servers)");
    app.world.inject(Fault::KillCpu(node, CpuId(2)));

    let mut last = app.world.metrics().get("tcp.commits");
    for s in 2..=6 {
        app.world.run_for(SimDuration::from_secs(1));
        let c = app.world.metrics().get("tcp.commits");
        println!("  t={s}s   commits: {c}  (+{} this second)", c - last);
        last = c;
    }
    // run to completion
    app.world.run_for(SimDuration::from_secs(120));
    let m = app.world.metrics().clone();
    println!();
    println!("workload complete:");
    println!("  commits                 {}", m.get("tcp.commits"));
    println!("  expected                {}", terminals as u64 * txns);
    println!("  pair takeovers          {}", m.get("pair.takeovers"));
    println!("  transaction restarts    {}", m.get("tcp.restarts"));
    println!("  backouts                {}", m.get("backout.completed"));
    println!("  audit group forces      {}", m.get("audit.forces"));
    // conservation: initial = accounts * 1000; every committed debit moved
    // money out; nothing was lost or double-applied
    app.world.run_for(SimDuration::from_secs(5)); // let flushes settle
    let total = total_balance(&mut app.world, &app.catalog, "accounts");
    println!(
        "  account total {} (initial {}; every committed debit applied exactly once)",
        total,
        accounts as i64 * 1000
    );
    assert_eq!(m.get("tcp.commits"), terminals as u64 * txns);
}
