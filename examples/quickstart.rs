//! Quickstart: one node, one audited file, one transaction — begin,
//! write, commit, read back; then a second transaction that aborts and is
//! transparently backed out.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use encompass_tmf::prelude::*;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// A tiny scripted transaction program (see `encompass::tcp` for the real
/// terminal machinery; this example drives the TMF session directly).
struct Quickstart {
    session: TmfSession,
    step: u32,
}

impl Process for Quickstart {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        println!("[{}] BEGIN-TRANSACTION", ctx.now());
        self.step = 1;
        self.session.begin(ctx, SessionOptions::default(), 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let Ok(Some(ev)) = self.session.accept(ctx, payload) else {
            return;
        };
        match (self.step, ev) {
            (1, SessionEvent::Began { transid, .. }) => {
                println!("[{}]   transid = {transid}", ctx.now());
                self.step = 2;
                let _ = self.session.op(
                    ctx,
                    DbOp::Insert { file: "accounts".into(), key: b("alice"), value: b("100") },
                    0,
                );
            }
            (2, SessionEvent::OpDone { reply, .. }) => {
                println!("[{}]   insert alice=100 -> {reply:?}", ctx.now());
                self.step = 3;
                self.session.end(ctx, 0);
            }
            (3, SessionEvent::Committed { .. }) => {
                println!("[{}] END-TRANSACTION: committed", ctx.now());
                // second transaction: update then ABORT — TMF backs it out
                self.step = 4;
                self.session.begin(ctx, SessionOptions::default(), 0);
            }
            (4, SessionEvent::Began { .. }) => {
                self.step = 5;
                let _ = self.session.op(
                    ctx,
                    DbOp::ReadLock { file: "accounts".into(), key: b("alice") },
                    0,
                );
            }
            (5, SessionEvent::OpDone { reply, .. }) => {
                println!("[{}]   read-lock alice -> {reply:?}", ctx.now());
                self.step = 6;
                let _ = self.session.op(
                    ctx,
                    DbOp::Update { file: "accounts".into(), key: b("alice"), value: b("0") },
                    0,
                );
            }
            (6, SessionEvent::OpDone { .. }) => {
                println!("[{}]   updated alice=0 … now ABORT-TRANSACTION", ctx.now());
                self.step = 7;
                self.session.abort(ctx, AbortReason::Voluntary, 0);
            }
            (7, SessionEvent::Aborted { .. }) => {
                println!("[{}] ABORT-TRANSACTION: backed out", ctx.now());
                self.step = 8;
                let _ = self.session.op(
                    ctx,
                    DbOp::Read { file: "accounts".into(), key: b("alice") },
                    0,
                );
            }
            (8, SessionEvent::OpDone { reply, .. }) => {
                println!(
                    "[{}] read alice after backout -> {reply:?}  (the 100 survived)",
                    ctx.now()
                );
            }
            (_, ev) => println!("[{}] unexpected event: {ev:?}", ctx.now()),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        let _ = self.session.on_timer(ctx, tag);
    }
}

fn main() {
    // a 4-processor Tandem node with one audited volume
    let mut world = World::new(SimConfig::default());
    let node: NodeId = world.add_node(4);
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", VolumeRef::new(node, "$DATA")));
    spawn_tmf_network(&mut world, &catalog, TmfNodeConfig::default());

    let session = TmfSession::new(catalog, 0);
    world.spawn(node, 0, Box::new(Quickstart { session, step: 0 }));

    world.run_for(SimDuration::from_secs(5));
    println!();
    println!("metrics:");
    for (k, v) in world.metrics().snapshot() {
        if k.starts_with("tmf.") || k.starts_with("disc.") || k.starts_with("audit.") {
            println!("  {k:32} {v}");
        }
    }
}
