//! Offline stand-in for `proptest`: deterministic randomized testing
//! with the subset of the API this workspace uses — `proptest!`,
//! `Strategy`/`prop_map`, integer-range and tuple strategies,
//! `any::<T>()`, a tiny `[a-z]{m,n}`-style regex string strategy,
//! `prop::collection::vec`, `prop_oneof!`, and `prop_assert*!`.
//!
//! No shrinking: on failure the macro prints the generated inputs and
//! the case's seed, which is derived deterministically from the case
//! index, so every failure replays on the next run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies by the `proptest!` runner.
pub type TestRng = StdRng;

#[doc(hidden)]
pub fn test_rng(case: u64) -> TestRng {
    // Fixed base so runs are reproducible; each case gets its own stream.
    StdRng::seed_from_u64(0x7072_6F70_7465_7374 ^ case.wrapping_mul(0x9E37_79B9))
}

/// Runner configuration: only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values. Object-safe so `prop_oneof!` can box
/// heterogeneous arms.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Any-value strategy for types with a uniform default distribution.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random()
    }
}

/// String strategy from a pattern literal. Supports the tiny regex
/// subset used in tests: a char class `[a-z]` (or a literal char)
/// followed by an optional `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let i;
        // char class or single literal
        let (lo, hi) = if chars.first() == Some(&'[') {
            let close = chars
                .iter()
                .position(|&c| c == ']')
                .expect("unterminated char class in pattern");
            let class = &chars[1..close];
            i = close + 1;
            match class {
                [a, '-', b] => (*a, *b),
                [a] => (*a, *a),
                _ => panic!("unsupported char class in pattern {self:?}"),
            }
        } else {
            let c = chars[0];
            i = 1;
            (c, c)
        };
        // repetition
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (m, n) = match body.split_once(',') {
                Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                None => {
                    let v: usize = body.parse().unwrap();
                    (v, v)
                }
            };
            (m, n)
        } else {
            (1, 1)
        };
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| {
                let span = hi as u32 - lo as u32;
                char::from_u32(lo as u32 + rng.random_range(0..=span)).unwrap()
            })
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Weighted-choice union of boxed arms (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prop` (call sites use `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_rng(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body
                ));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {case}/{} failed; inputs: {inputs}",
                        config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_rng(0);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_plumbing_works(
            n in 1usize..10,
            flag in any::<bool>(),
            items in prop::collection::vec(prop_oneof![(0u8..5).prop_map(|v| v as u16), 10u16..20], 0..8),
        ) {
            prop_assert!((1..10).contains(&n), "n = {}", n);
            let _ = flag;
            for item in items {
                prop_assert!(item < 5 || (10..20).contains(&item));
            }
        }
    }
}
