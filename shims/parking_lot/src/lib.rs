//! Offline stand-in for `parking_lot`: non-poisoning `Mutex`/`RwLock`
//! wrappers over std's primitives (a poisoned std lock is unwrapped
//! into the inner value, matching parking_lot's ignore-poison
//! semantics).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mutex_roundtrip() {
        let m = super::Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = super::RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
