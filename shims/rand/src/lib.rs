//! Offline stand-in for the `rand` crate, providing the (small) subset of
//! the 0.9 API this workspace uses: `rngs::StdRng`, `SeedableRng`, and the
//! `Rng` extension methods `random`, `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! per seed, which is all the simulator requires (exact output values are
//! never asserted, only reproducibility).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`] (the `StandardUniform` subset).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (u128::sample(rng)) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // the full u128 domain
                    return u128::sample(rng) as $t;
                }
                let v = u128::sample(rng) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128);

/// The user-facing extension methods (auto-implemented over any core RNG).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }
}
