//! Offline stand-in for `criterion`: runs each bench a configurable
//! number of samples, times it with `std::time::Instant`, and prints
//! mean wall-clock time per iteration. No warm-up, outlier analysis, or
//! report files — just enough to keep `cargo bench`/`--test` targets
//! building and producing comparable numbers offline.

// timing real wall-clock is this shim's entire job
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing harness handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Accumulated (total duration, iteration count).
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some((total, iters)) if iters > 0 => {
                let per_iter = total / iters as u32;
                println!("{}/{}: {:?}/iter ({} iters)", self.name, id, per_iter, iters);
            }
            _ => println!("{}/{}: no measurement", self.name, id),
        }
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut g = c.benchmark_group("example");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn group_runs() {
        benches();
    }
}
