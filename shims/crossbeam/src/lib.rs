//! Offline stand-in for `crossbeam`: only `crossbeam::scope`, built on
//! `std::thread::scope` (stable since 1.63). Spawn closures receive a
//! scope handle argument to match the crossbeam 0.8 signature; the
//! call returns `Ok(r)` with the closure's result, or `Err` if any
//! spawned thread panicked.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    panicked: Arc<AtomicBool>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = Scope {
            inner: self.inner,
            panicked: Arc::clone(&self.panicked),
        };
        let panicked = Arc::clone(&self.panicked);
        self.inner.spawn(move || {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
            if result.is_err() {
                panicked.store(true, Ordering::SeqCst);
            }
        });
    }
}

type PanicPayload = Box<dyn Any + Send + 'static>;

pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panicked = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&panicked);
    let result = std::thread::scope(move |s| {
        let scope = Scope {
            inner: s,
            panicked: flag,
        };
        f(&scope)
    });
    if panicked.load(Ordering::SeqCst) {
        Err(Box::new("a scoped thread panicked") as PanicPayload)
    } else {
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_run_and_join() {
        let total = std::sync::Mutex::new(0);
        super::scope(|s| {
            for i in 1..=4 {
                let total = &total;
                s.spawn(move |_| {
                    *total.lock().unwrap() += i;
                });
            }
        })
        .expect("no panics");
        assert_eq!(*total.lock().unwrap(), 10);
    }

    #[test]
    fn panic_reported_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
