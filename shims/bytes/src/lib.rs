//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte buffers (`Bytes`), a growable builder (`BytesMut`), and the
//! big-endian `Buf`/`BufMut` cursor traits — only the subset this
//! workspace uses.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone)]
pub enum Bytes {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::Static(&[])
    }

    pub const fn from_static(b: &'static [u8]) -> Bytes {
        Bytes::Static(b)
    }

    pub fn copy_from_slice(b: &[u8]) -> Bytes {
        Bytes::Shared(Arc::new(b.to_vec()))
    }

    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(v) => v.as_slice(),
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::Shared(Arc::new(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::Shared(Arc::new(s.into_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::Static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::Static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte builder; `freeze` converts into an immutable [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::Shared(Arc::new(self.buf))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian write cursor (append-only subset).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian read cursor. Implemented for `&[u8]`, advancing the slice
/// in place. Reads past the end panic, as in the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_put_get() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.remaining(), 2);
        cur.advance(1);
        assert_eq!(cur, b"y");
    }

    #[test]
    fn ordering_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(String::from("abd"));
        assert_eq!(a, b);
        assert!(a < c);
        assert_eq!(a, b"abc");
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn usable_as_map_key_via_borrow() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(Bytes::from_static(b"k"), 1);
        assert_eq!(m.get(b"k".as_slice()), Some(&1));
    }
}
