//! Focused TCP behaviour tests: scripted programs through the real TCP
//! pair — voluntary abort, the restart limit, SEND to an unknown class,
//! and TCP takeover resuming checkpointed progress.

use bytes::Bytes;
use encompass::appmon::{spawn_server_class, ServerClassConfig};
use encompass::messages::AppRequest;
use encompass::screen::{ScreenAction, ScreenProgram, ScriptProgram};
use encompass::tcp::{spawn_tcp, TcpConfig};
use encompass::workload::BankServer;
use encompass_sim::{CpuId, Fault, NodeId, SimConfig, SimDuration, World};
use encompass_storage::media::{media_key, VolumeMedia};
use encompass_storage::types::{FileDef, VolumeRef};
use encompass_storage::Catalog;
use tmf::facility::{spawn_tmf_network, TmfNodeConfig};

fn setup() -> (World, NodeId, Catalog) {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", VolumeRef::new(n, "$BANK")));
    catalog.add(FileDef::entry_sequenced("history", VolumeRef::new(n, "$BANK")));
    spawn_tmf_network(&mut w, &catalog, TmfNodeConfig::default());
    spawn_server_class(
        &mut w,
        n,
        0,
        ServerClassConfig {
            class: "bank".into(),
            server_cpus: vec![0, 1, 2, 3],
            min_servers: 2,
            ..ServerClassConfig::default()
        },
        catalog.clone(),
        || Box::new(BankServer::new(None)),
    );
    // seed one account directly on the media
    {
        let media = w
            .stable_mut()
            .get_mut::<VolumeMedia>(&media_key(n, "$BANK"))
            .unwrap();
        media.ensure_file(
            "accounts",
            encompass_storage::types::FileOrganization::KeySequenced,
        )
        .apply(b"acct00000000", Some(Bytes::from_static(b"1000")));
    }
    (w, n, catalog)
}

fn debit_send() -> ScreenAction {
    ScreenAction::Send {
        node: None,
        class: "bank".into(),
        request: AppRequest::new(
            "debit",
            vec![Bytes::from_static(b"acct00000000"), Bytes::from_static(b"5")],
        ),
    }
}

#[test]
fn scripted_commit_and_voluntary_abort_through_the_tcp() {
    let (mut w, n, catalog) = setup();
    spawn_tcp(
        &mut w,
        n,
        0,
        1,
        TcpConfig::default(),
        catalog,
        move || {
            vec![
                // terminal 0: begin → debit → commit
                Box::new(ScriptProgram::new(vec![
                    ScreenAction::begin(),
                    debit_send(),
                    ScreenAction::End,
                ])) as Box<dyn ScreenProgram>,
                // terminal 1: begin → debit → ABORT-TRANSACTION
                Box::new(ScriptProgram::new(vec![
                    ScreenAction::begin(),
                    debit_send(),
                    ScreenAction::Abort,
                ])) as Box<dyn ScreenProgram>,
            ]
        },
    );
    w.run_for(SimDuration::from_secs(20));
    let m = w.metrics();
    assert_eq!(m.get("tcp.commits"), 1);
    assert_eq!(m.get("tcp.voluntary_aborts"), 1);
    assert_eq!(m.get("tcp.terminals_finished"), 2);
    // net effect on the account: exactly one committed debit of 5
    let media = w
        .stable()
        .get::<VolumeMedia>(&media_key(n, "$BANK"))
        .unwrap();
    let _ = media;
    // allow the flush to land
    w.run_for(SimDuration::from_secs(3));
    let media = w
        .stable()
        .get::<VolumeMedia>(&media_key(n, "$BANK"))
        .unwrap();
    assert_eq!(
        media.file("accounts").unwrap().read(b"acct00000000"),
        Some(Bytes::from_static(b"995"))
    );
}

#[test]
fn send_to_unknown_server_class_hits_the_restart_limit() {
    let (mut w, n, catalog) = setup();
    spawn_tcp(
        &mut w,
        n,
        0,
        1,
        TcpConfig {
            restart_limit: 2,
            send_timeout: SimDuration::from_millis(300),
            backoff: SimDuration::from_millis(50),
            ..TcpConfig::default()
        },
        catalog,
        move || {
            vec![Box::new(ScriptProgram::new(vec![
                ScreenAction::begin(),
                ScreenAction::Send {
                    node: None,
                    class: "no-such-class".into(),
                    request: AppRequest::new("x", vec![]),
                },
                ScreenAction::End,
            ])) as Box<dyn ScreenProgram>]
        },
    );
    w.run_for(SimDuration::from_secs(30));
    let m = w.metrics();
    assert!(
        m.get("tcp.restart_limit_hit") >= 1,
        "the restart limit fired: restarts={} limit_hits={}",
        m.get("tcp.restarts"),
        m.get("tcp.restart_limit_hit")
    );
    assert_eq!(m.get("tcp.commits"), 0);
    // the ScriptProgram's restart rewinds to Begin; past the limit it is
    // delivered Aborted and (script exhausted) finishes
    assert_eq!(m.get("tcp.terminals_finished"), 1);
}

#[test]
fn tcp_takeover_aborts_open_transaction_and_finishes_script() {
    let (mut w, n, catalog) = setup();
    spawn_tcp(
        &mut w,
        n,
        2, // primary on cpu2 so we can kill it without killing the queue
        3,
        TcpConfig::default(),
        catalog,
        move || {
            vec![Box::new(ScriptProgram::new(vec![
                ScreenAction::begin(),
                debit_send(),
                // a long think inside the transaction: the kill lands here
                ScreenAction::Think(SimDuration::from_secs(2)),
                ScreenAction::End,
            ])) as Box<dyn ScreenProgram>]
        },
    );
    w.run_for(SimDuration::from_millis(500));
    w.inject(Fault::KillCpu(n, CpuId(2)));
    w.run_for(SimDuration::from_secs(30));
    let m = w.metrics();
    assert!(m.get("tcp.takeovers") >= 1);
    // the open transaction was aborted by the backup and the program
    // restarted at BEGIN; the script then commits
    assert_eq!(m.get("tcp.commits"), 1, "restarted and committed");
    assert_eq!(m.get("tcp.terminals_finished"), 1);
    assert!(m.get("tmf.aborts") >= 1, "the takeover aborted the open txn");
}
