//! Full-stack ENCOMPASS tests: terminals → TCP → server classes → TMF →
//! DISCPROCESSes, with failures injected, plus the manufacturing
//! application's replica-convergence behaviour.

use bytes::Bytes;
use encompass::app::{launch_bank_app, launch_mfg_app, read_replica, BankAppParams, MfgAppParams};
use encompass::manufacturing::{global_record, master_of, Deferred};
use encompass::messages::{AppReply, AppRequest, ServerRequest};
use encompass::workload::total_balance;
use encompass_sim::{CpuId, Ctx, Fault, NodeId, Payload, Pid, Process, SimDuration, TimerId};
use guardian::{Rpc, Target, TimerOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use tmf::session::SessionOptions;

#[test]
fn bank_app_runs_all_transactions_and_conserves_money() {
    let params = BankAppParams {
        accounts: 200,
        terminals_per_node: 4,
        transactions_per_terminal: 10,
        ..BankAppParams::default()
    };
    let mut app = launch_bank_app(params);
    app.world.run_for(SimDuration::from_secs(60));
    let commits = app.world.metrics().get("tcp.commits");
    let finished = app.world.metrics().get("tcp.terminals_finished");
    assert_eq!(finished, 4, "all terminals finished");
    assert_eq!(commits, 40, "4 terminals x 10 transactions");
    // run long enough for flushes, then check conservation:
    // every debit moved money out of an account; committed history count
    // equals committed debits; initial total = 200 * 1000
    app.world.run_for(SimDuration::from_secs(5));
    let total = total_balance(&mut app.world, &app.catalog, "accounts");
    assert!(total < 200 * 1000, "debits actually happened");
}

#[test]
fn bank_app_survives_cpu_failure_mid_run() {
    let params = BankAppParams {
        accounts: 100,
        terminals_per_node: 4,
        transactions_per_terminal: 15,
        node_cpus: vec![4],
        ..BankAppParams::default()
    };
    let mut app = launch_bank_app(params);
    let n = app.nodes[0];
    app.world.run_for(SimDuration::from_secs(1));
    // kill a CPU mid-run: some servers/pairs die; service continues
    app.world.inject(Fault::KillCpu(n, CpuId(2)));
    app.world.run_for(SimDuration::from_secs(120));
    let finished = app.world.metrics().get("tcp.terminals_finished");
    assert_eq!(finished, 4, "all terminals eventually finished");
    let commits = app.world.metrics().get("tcp.commits");
    assert_eq!(commits, 60, "every transaction eventually committed");
}

#[test]
fn bank_contention_causes_restarts_not_wrong_results() {
    let params = BankAppParams {
        accounts: 50,
        hot_fraction: 0.9,
        hot_set: 2,
        terminals_per_node: 6,
        transactions_per_terminal: 8,
        think: SimDuration::from_micros(100),
        ..BankAppParams::default()
    };
    let mut app = launch_bank_app(params);
    app.world.run_for(SimDuration::from_secs(120));
    assert_eq!(app.world.metrics().get("tcp.terminals_finished"), 6);
    // under 90% traffic to 2 records, lock waits must have occurred
    assert!(
        app.world.metrics().get("disc.lock_waits") > 0,
        "contention produced lock waits"
    );
}

/// Drives one request against a server class and records the reply.
struct OneShot {
    node: NodeId,
    class: String,
    request: AppRequest,
    rpc: Rpc<ServerRequest, AppReply>,
    session: tmf::session::TmfSession,
    state: u8,
    result: Rc<RefCell<Option<bool>>>,
}

impl OneShot {
    fn new(
        catalog: encompass_storage::Catalog,
        node: NodeId,
        class: &str,
        request: AppRequest,
        result: Rc<RefCell<Option<bool>>>,
    ) -> OneShot {
        OneShot {
            node,
            class: class.to_string(),
            request,
            rpc: Rpc::new(40),
            session: tmf::session::TmfSession::new(catalog, 5),
            state: 0,
            result,
        }
    }
}

impl Process for OneShot {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.state = 1;
        self.session.begin(ctx, SessionOptions::default(), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let payload = match self.session.accept(ctx, payload) {
            Ok(Some(ev)) => {
                use tmf::session::SessionEvent;
                match (self.state, ev) {
                    (1, SessionEvent::Began { .. }) => {
                        self.state = 2;
                        let env = ServerRequest {
                            transid: self.session.transid(),
                            options: self.session.options(),
                            request: self.request.clone(),
                        };
                        let _ = self.rpc.call(
                            ctx,
                            Target::Named(self.node, format!("$SC-{}", self.class)),
                            env,
                            SimDuration::from_secs(3),
                            0,
                            0,
                        );
                    }
                    (3, SessionEvent::Committed { .. }) => {
                        *self.result.borrow_mut() = Some(true);
                    }
                    (_, SessionEvent::Aborted { .. }) | (_, SessionEvent::Failed { .. }) => {
                        *self.result.borrow_mut() = Some(false);
                    }
                    _ => {}
                }
                return;
            }
            Ok(None) => return,
            Err(p) => p,
        };
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            if self.state == 2 {
                if c.body.ok {
                    self.state = 3;
                    self.session.end(ctx, 0);
                } else {
                    self.state = 4;
                    self.session
                        .abort(ctx, tmf::state::AbortReason::Voluntary, 0);
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            use tmf::session::SessionEvent;
            if matches!(ev, SessionEvent::Failed { .. } | SessionEvent::Aborted { .. }) {
                *self.result.borrow_mut() = Some(false);
            }
            return;
        }
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            if self.session.transid().is_some() && !self.session.busy() {
                self.state = 4;
                self.session
                    .abort(ctx, tmf::state::AbortReason::NetworkPartition, 0);
            }
        }
    }
}

fn master_update_request(file: &str, key: &str, payload: &str) -> AppRequest {
    AppRequest::new(
        "master-update",
        vec![
            Bytes::copy_from_slice(file.as_bytes()),
            Bytes::copy_from_slice(key.as_bytes()),
            Bytes::copy_from_slice(payload.as_bytes()),
        ],
    )
}

#[test]
fn manufacturing_replicas_converge_via_suspense_files() {
    let mut app = launch_mfg_app(MfgAppParams::default());
    let n0 = app.nodes[0];
    // update item "widget" at its master (node 0)
    let result = Rc::new(RefCell::new(None));
    app.world.spawn(
        n0,
        2,
        Box::new(OneShot::new(
            app.catalog.clone(),
            n0,
            "mfg",
            master_update_request("item", "widget", "rev-1"),
            result.clone(),
        )),
    );
    app.world.run_for(SimDuration::from_secs(10));
    assert_eq!(*result.borrow(), Some(true), "master update committed");
    // give the suspense monitors time to drain, then flushes
    app.world.run_for(SimDuration::from_secs(30));
    let expected = global_record(n0, b"rev-1");
    for &n in &app.nodes {
        assert_eq!(
            read_replica(&mut app.world, n, "item", b"widget"),
            Some(expected.clone()),
            "replica on {n} converged"
        );
    }
    assert!(app.world.metrics().get("suspense.applied") >= 3);
    // regression: the apply transactions must have included the remote
    // node in the commit protocol — a second update of the SAME key would
    // otherwise deadlock on replica locks the first one leaked
    let result2 = Rc::new(RefCell::new(None));
    app.world.spawn(
        n0,
        3,
        Box::new(OneShot::new(
            app.catalog.clone(),
            n0,
            "mfg",
            master_update_request("item", "widget", "rev-2"),
            result2.clone(),
        )),
    );
    app.world.run_for(SimDuration::from_secs(40));
    assert_eq!(*result2.borrow(), Some(true), "second update of the same key");
    let expected2 = global_record(n0, b"rev-2");
    for &n in &app.nodes {
        assert_eq!(
            read_replica(&mut app.world, n, "item", b"widget"),
            Some(expected2.clone()),
            "replica on {n} re-converged (no leaked locks)"
        );
    }
    assert_eq!(
        app.world.metrics().get("suspense.retries"),
        0,
        "no apply transaction was ever aborted"
    );
}

#[test]
fn manufacturing_partition_defers_then_converges() {
    let mut app = launch_mfg_app(MfgAppParams::default());
    let n0 = app.nodes[0];
    let n3 = app.nodes[3];
    // cut node 3 off, then update at master node 0 — node autonomy says
    // this must still commit
    app.world.inject(Fault::Partition(vec![n3]));
    let result = Rc::new(RefCell::new(None));
    app.world.spawn(
        n0,
        2,
        Box::new(OneShot::new(
            app.catalog.clone(),
            n0,
            "mfg",
            master_update_request("item", "gadget", "rev-7"),
            result.clone(),
        )),
    );
    app.world.run_for(SimDuration::from_secs(10));
    assert_eq!(
        *result.borrow(),
        Some(true),
        "global update committed despite node 3 being unavailable"
    );
    app.world.run_for(SimDuration::from_secs(20));
    let expected = global_record(n0, b"rev-7");
    // reachable replicas converged, node 3 did not
    assert_eq!(
        read_replica(&mut app.world, app.nodes[1], "item", b"gadget"),
        Some(expected.clone())
    );
    assert_eq!(read_replica(&mut app.world, n3, "item", b"gadget"), None);
    // heal: the deferred update drains in suspense order
    app.world.inject(Fault::HealAllLinks);
    app.world.run_for(SimDuration::from_secs(30));
    assert_eq!(
        read_replica(&mut app.world, n3, "item", b"gadget"),
        Some(expected),
        "node 3 converged after the heal"
    );
}

#[test]
fn manufacturing_sync_design_blocks_during_outage() {
    let mut app = launch_mfg_app(MfgAppParams::default());
    let n0 = app.nodes[0];
    let n3 = app.nodes[3];
    app.world.inject(Fault::Partition(vec![n3]));
    let result = Rc::new(RefCell::new(None));
    app.world.spawn(
        n0,
        2,
        Box::new(OneShot::new(
            app.catalog.clone(),
            n0,
            "mfg",
            AppRequest::new(
                "sync-update",
                vec![
                    Bytes::from_static(b"item"),
                    Bytes::from_static(b"blocked"),
                    Bytes::from_static(b"v"),
                ],
            ),
            result.clone(),
        )),
    );
    app.world.run_for(SimDuration::from_secs(30));
    assert_eq!(
        *result.borrow(),
        Some(false),
        "the synchronous design cannot update global data while any node is down"
    );
    // and nothing leaked: the failed update is not visible anywhere
    app.world.run_for(SimDuration::from_secs(10));
    assert_eq!(read_replica(&mut app.world, n0, "item", b"blocked"), None);
}

#[test]
fn suspense_records_roundtrip_through_the_file() {
    // encoding sanity at the API boundary (deeper coverage in unit tests)
    let d = Deferred {
        dest: NodeId(2),
        file: "bom".into(),
        key: Bytes::from_static(b"assembly-9"),
        value: global_record(NodeId(1), b"x"),
    };
    let enc = d.encode();
    assert_eq!(Deferred::decode(&enc).unwrap(), d);
    assert_eq!(master_of(&d.value), Some(NodeId(1)));
}

#[test]
fn dynamic_server_creation_under_load() {
    let params = BankAppParams {
        accounts: 500,
        terminals_per_node: 16,
        transactions_per_terminal: 10,
        think: SimDuration::from_micros(10),
        servers_min: 1,
        servers_max: 8,
        ..BankAppParams::default()
    };
    let mut app = launch_bank_app(params);
    app.world.run_for(SimDuration::from_secs(60));
    assert!(
        app.world.metrics().get("appmon.servers_spawned") > 1,
        "backlog pressure spawned extra servers: {}",
        app.world.metrics().get("appmon.servers_spawned")
    );
    assert_eq!(app.world.metrics().get("tcp.terminals_finished"), 16);
}
