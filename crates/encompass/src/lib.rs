//! # encompass
//!
//! The ENCOMPASS application environment on top of TMF:
//!
//! * **Terminal management** ([`tcp`], [`screen`]): the Terminal Control
//!   Process — a process-pair interpreting *screen programs* (our stand-in
//!   for Screen COBOL) for up to 32 terminals. It implements
//!   `BEGIN-TRANSACTION` / `SEND` / `END-TRANSACTION` /
//!   `ABORT-TRANSACTION` / `RESTART-TRANSACTION`, automatic restart at
//!   `BEGIN-TRANSACTION` after failures (up to the configurable restart
//!   limit), and checkpoints terminal state so a takeover does not lose
//!   input.
//! * **Application servers** ([`server`]): simple, single-threaded,
//!   context-free request/reply programs that access the data base through
//!   a [`tmf::TmfSession`] — they need no fault-tolerance logic of their
//!   own, which is the paper's headline benefit of TMF.
//! * **Transaction flow and application control** ([`appmon`]): per-class
//!   server queues that dispatch requests to idle servers and *dynamically
//!   create and delete server processes* as the workload changes.
//! * **Workloads** ([`workload`]): an order-entry / debit-credit style
//!   generator used by the experiments.
//! * **The manufacturing application** ([`manufacturing`]): the paper's
//!   four-plant distributed data base — replicated global files with a
//!   master node per record, deferred replica updates through *suspense
//!   files*, and the *suspense monitor* that drains them in order so
//!   replicas converge after a partition heals; plus the synchronous
//!   variant the paper rejects, for the node-autonomy experiment.
//! * **Application wiring** ([`app`]): one builder that assembles nodes,
//!   links, catalog, TMF, server classes, and terminals.

pub mod app;
pub mod appmon;
pub mod manufacturing;
pub mod messages;
pub mod screen;
pub mod server;
pub mod tcp;
pub mod workload;

pub use app::{AppBuilder, AppHandles};
pub use appmon::{spawn_server_class, ServerClassConfig, ServerClassQueue};
pub use messages::{AppReply, AppRequest, ServerRequest};
pub use screen::{ScreenAction, ScreenInput, ScreenProgram};
pub use server::{DbOp, ServerLogic, ServerProcess, ServerStep};
pub use tcp::{spawn_tcp, TcpConfig, TerminalControlProcess};
