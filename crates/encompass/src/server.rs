//! Application server processes.
//!
//! "The structure of an application server program is simple and
//! single-threaded: (1) read the transaction request message; (2) perform
//! the data base function requested; (3) reply. A server must be 'context
//! free' in the sense that it retains no memory from the servicing of one
//! request to the next."
//!
//! Because TMF backs out failed transactions automatically, servers are
//! plain processes — *not* process-pairs. That is the paper's headline
//! benefit: before TMF, applications had to be coded as pairs with careful
//! checkpoints; with TMF "the state of progress of an incomplete
//! transaction is immaterial".

use crate::messages::{AppReply, AppRequest, ServerRequest};
use encompass_sim::{Ctx, Payload, Pid, Process, TimerId};
use encompass_storage::discprocess::DiscReply;
use encompass_storage::Catalog;
use guardian::reply;
use tmf::session::{SessionEvent, TmfSession};

/// A data-base operation a server step may issue. This is the session
/// layer's typed request enum, re-exported where server authors expect it.
pub use tmf::session::DbOp;

/// What a server-logic step decided.
pub enum ServerStep {
    /// Issue a data-base operation; the logic resumes in `on_db`.
    Db(DbOp),
    /// Finish the request with this reply.
    Reply(AppReply),
}

/// Single-request application logic, written as a small state machine:
/// `on_request` starts a request, `on_db` resumes after each data-base
/// completion. The logic is recreated fresh for every request (context
/// freedom).
pub trait ServerLogic: 'static {
    fn on_request(&mut self, req: &AppRequest) -> ServerStep;
    fn on_db(&mut self, db: &DiscReply) -> ServerStep;
}

struct Active {
    req_id: u64,
    from: Pid,
    logic: Box<dyn ServerLogic>,
}

/// The server process: hosts a [`ServerLogic`] factory and a TMF session.
pub struct ServerProcess {
    class: String,
    factory: Box<dyn Fn() -> Box<dyn ServerLogic>>,
    session: TmfSession,
    active: Option<Active>,
    /// The queue to notify when idle (set by the dispatcher).
    queue: Option<Pid>,
}

impl ServerProcess {
    pub fn new(
        class: &str,
        catalog: Catalog,
        factory: impl Fn() -> Box<dyn ServerLogic> + 'static,
    ) -> ServerProcess {
        ServerProcess {
            class: class.to_string(),
            factory: Box::new(factory),
            session: TmfSession::new(catalog, 1),
            active: None,
            queue: None,
        }
    }

    /// Configure the deadlock timeout attached to this server's lock
    /// requests (experiment T4 sweeps it).
    pub fn set_lock_wait(&mut self, wait: encompass_sim::SimDuration) {
        self.session.lock_wait = wait;
    }

    fn run_step(&mut self, ctx: &mut Ctx<'_>, step: ServerStep) {
        match step {
            ServerStep::Db(op) => {
                if let Some(SessionEvent::Failed { .. }) = self.session.op(ctx, op, 0) {
                    // synchronous refusal (a write under a read-only
                    // transaction): a server-logic bug, not a transient —
                    // restarting would loop forever
                    ctx.count("server.readonly_violations", 1);
                    self.finish(ctx, AppReply::error());
                }
            }
            ServerStep::Reply(r) => self.finish(ctx, r),
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, r: AppReply) {
        if let Some(active) = self.active.take() {
            reply(ctx, active.req_id, active.from, r);
        }
        self.session.clear();
        ctx.count("server.requests_served", 1);
        // tell the dispatcher we are idle again
        if let Some(q) = self.queue {
            let _ = ctx.send(q, Payload::new(ServerIdle));
        }
    }
}

/// Notification from server to its class queue.
pub(crate) struct ServerIdle;

/// Dispatch envelope from the queue: the original requester's correlation
/// info rides along so the server replies directly to the TCP.
pub(crate) struct Dispatch {
    pub req_id: u64,
    pub from: Pid,
    pub body: ServerRequest,
}

impl Process for ServerProcess {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_>, src: Pid, payload: Payload) {
        // session completions first
        let payload = match self.session.accept(ctx, payload) {
            Ok(Some(ev)) => {
                match ev {
                    SessionEvent::OpDone { reply: db, .. } => {
                        if let Some(active) = &mut self.active {
                            let step = active.logic.on_db(&db);
                            self.run_step(ctx, step);
                        }
                    }
                    SessionEvent::Failed { .. } => {
                        // data-base op unreachable/timed out: tell the
                        // requester to restart the transaction
                        self.finish(ctx, AppReply::restart());
                    }
                    _ => {}
                }
                return;
            }
            Ok(None) => return,
            Err(p) => p,
        };
        if payload.is::<crate::appmon::ServerStop>() {
            // dynamic deletion by application control
            if self.active.is_none() {
                ctx.exit();
            }
            return;
        }
        if payload.is::<Dispatch>() {
            let d = payload.expect::<Dispatch>();
            if self.queue.is_none() {
                self.queue = Some(src);
            }
            if self.active.is_some() {
                // busy (dispatcher raced a takeover); bounce a restart
                reply(ctx, d.req_id, d.from, AppReply::restart());
                return;
            }
            // (1) read the request: adopt its transid as the current
            // process transid, in the requester's declared mode
            match d.body.transid {
                Some(t) => self.session.adopt(t, d.body.options),
                None => self.session.clear(),
            }
            let mut logic = (self.factory)();
            let step = logic.on_request(&d.body.request);
            self.active = Some(Active {
                req_id: d.req_id,
                from: d.from,
                logic,
            });
            ctx.count(&format!("server.{}.dispatched", self.class), 1);
            self.run_step(ctx, step);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let Some(SessionEvent::Failed { .. }) = self.session.on_timer(ctx, tag) {
            self.finish(ctx, AppReply::restart());
        }
    }

    fn kind(&self) -> &'static str {
        "server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    struct Fixed;
    impl ServerLogic for Fixed {
        fn on_request(&mut self, _req: &AppRequest) -> ServerStep {
            ServerStep::Reply(AppReply::ok(vec![Bytes::from_static(b"done")]))
        }
        fn on_db(&mut self, _db: &DiscReply) -> ServerStep {
            ServerStep::Reply(AppReply::error())
        }
    }

    #[test]
    fn server_replies_and_reports_idle() {
        use encompass_sim::{SimConfig, World};
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let catalog = Catalog::new();
        let srv = w.spawn(
            n,
            0,
            Box::new(ServerProcess::new("t", catalog, || Box::new(Fixed))),
        );
        w.run_until_quiescent();
        // a fake queue/requester observer
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Probe {
            srv: Pid,
            got: Rc<RefCell<Vec<String>>>,
        }
        impl Process for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let _ = ctx.send(
                    self.srv,
                    Payload::new(Dispatch {
                        req_id: 1,
                        from: ctx.pid(),
                        body: ServerRequest {
                            transid: None,
                            options: tmf::session::SessionOptions::default(),
                            request: AppRequest::new("x", vec![]),
                        },
                    }),
                );
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
                if payload.is::<ServerIdle>() {
                    self.got.borrow_mut().push("idle".into());
                } else if let Some(r) = payload.downcast_ref::<guardian::RpcReply<AppReply>>() {
                    self.got
                        .borrow_mut()
                        .push(format!("reply:{}", r.body.ok));
                }
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            n,
            1,
            Box::new(Probe {
                srv,
                got: got.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(got.borrow().as_slice(), &["reply:true", "idle"]);
        assert_eq!(w.metrics().get("server.requests_served"), 1);
    }
}
