//! The Terminal Control Process (TCP).
//!
//! A TCP is a process-pair supervising "the interleaved execution of
//! Screen COBOL programs, each associated with one of the terminals under
//! control of the TCP" (up to 32 terminals). It owns the transaction
//! verbs:
//!
//! * `BEGIN-TRANSACTION` obtains a transid from the TMP and puts the
//!   terminal in transaction mode;
//! * `SEND` forwards a request to a server class (the File System
//!   automatically appends the terminal's current transid);
//! * `END-TRANSACTION` drives the commit; if the system aborted the
//!   transaction instead (processor failure, network partition, …), the
//!   TCP **restarts the program at BEGIN-TRANSACTION** — up to the
//!   configurable *transaction restart limit* — without re-entering the
//!   input screens (their data was checkpointed);
//! * `ABORT-TRANSACTION` backs out voluntarily, without restart;
//! * `RESTART-TRANSACTION` backs out and restarts (the deadlock-timeout
//!   path).
//!
//! A server-processor failure surfaces as a SEND timeout and takes the
//! restart path, matching the paper's list of automatic abort causes.

use crate::messages::{AppReply, ServerRequest};
use crate::screen::{ScreenAction, ScreenInput, ScreenProgram};
use encompass_sim::{NodeId, Payload, Pid, SimDuration};
use encompass_storage::types::Transid;
use encompass_storage::Catalog;
use guardian::{PairApp, PairCtx, PairHandle, Rpc, Target, TimerOutcome};
use tmf::session::{SessionEvent, TmfSession};
use tmf::state::AbortReason;
use tmf::tmp::{TmpMsg, TmpReply};

const MAX_TERMINALS: usize = 32;

/// TCP configuration.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Service name (e.g. `"$TCP0"`).
    pub name: String,
    /// The transaction restart limit.
    pub restart_limit: u32,
    /// SEND timeout (a dead server's processor surfaces here).
    pub send_timeout: SimDuration,
    /// Pause before retrying after a failed BEGIN or exhausted restart.
    pub backoff: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            name: "$TCP".into(),
            restart_limit: 5,
            send_timeout: SimDuration::from_secs(2),
            backoff: SimDuration::from_millis(100),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum TermState {
    Idle,
    AwaitBegin,
    AwaitSend,
    AwaitEnd,
    /// Abort issued; on completion the program restarts at BEGIN.
    AwaitAbortRestart,
    /// Abort issued voluntarily; on completion the program sees Aborted.
    AwaitAbortFinal,
    Thinking,
    Finished,
}

struct Terminal {
    program: Box<dyn ScreenProgram>,
    session: TmfSession,
    server_rpc: Rpc<ServerRequest, AppReply>,
    /// A SEND parked on its remote-transaction-begin.
    pending_send: Option<(NodeId, String, crate::messages::AppRequest)>,
    state: TermState,
    restart_count: u32,
    committed: u64,
    aborted: u64,
}

/// Checkpoint delta: per-terminal transaction metadata (the "data
/// extracted from input screens" equivalent — enough for the backup to
/// abort and restart cleanly).
struct TermDelta {
    idx: usize,
    committed: u64,
    aborted: u64,
    restart_count: u32,
    finished: bool,
    open: Option<Transid>,
}

struct TcpSnapshot {
    terms: Vec<TermDelta>,
}

/// The Terminal Control Process application.
pub struct TerminalControlProcess {
    cfg: TcpConfig,
    terminals: Vec<Terminal>,
    /// Mirrored per-terminal metadata on the backup.
    mirror_open: Vec<Option<Transid>>,
    tmp_rpc: Rpc<TmpMsg, TmpReply>,
}

impl TerminalControlProcess {
    pub fn new(
        cfg: TcpConfig,
        catalog: Catalog,
        programs: Vec<Box<dyn ScreenProgram>>,
    ) -> TerminalControlProcess {
        assert!(
            programs.len() <= MAX_TERMINALS,
            "a TCP controls up to {MAX_TERMINALS} terminals"
        );
        let terminals = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| Terminal {
                program,
                session: TmfSession::new(catalog.clone(), 64 + i as u64),
                server_rpc: Rpc::new(128 + i as u64),
                pending_send: None,
                state: TermState::Idle,
                restart_count: 0,
                committed: 0,
                aborted: 0,
            })
            .collect::<Vec<_>>();
        let _ = catalog;
        let n = terminals.len();
        TerminalControlProcess {
            cfg,
            terminals,
            mirror_open: vec![None; n],
            tmp_rpc: Rpc::new(30),
        }
    }

    fn checkpoint_terminal(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize) {
        let t = &self.terminals[idx];
        ctx.checkpoint(Payload::new(TermDelta {
            idx,
            committed: t.committed,
            aborted: t.aborted,
            restart_count: t.restart_count,
            finished: t.state == TermState::Finished,
            open: t.session.transid(),
        }));
    }

    /// Feed `input` to terminal `idx`'s program and carry out its action.
    fn drive(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize, input: ScreenInput<'_>) {
        let action = self.terminals[idx].program.next(input);
        self.perform(ctx, idx, action);
    }

    fn perform(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize, action: ScreenAction) {
        let my_node = ctx.node();
        let t = &mut self.terminals[idx];
        match action {
            ScreenAction::Begin { options } => {
                if t.session.transid().is_some() {
                    // BEGIN while already in transaction mode: program error
                    ctx.count("tcp.program_errors", 1);
                    self.restart_transaction(ctx, idx);
                    return;
                }
                t.state = TermState::AwaitBegin;
                t.session.begin(ctx, options, idx as u64);
            }
            ScreenAction::Send {
                node,
                class,
                request,
            } => {
                t.state = TermState::AwaitSend;
                let dest = node.unwrap_or(my_node);
                if t.session.needs_remote(my_node, dest) {
                    // the File System performs remote transaction begin
                    // before the first transmission of the transid to the
                    // destination node
                    t.pending_send = Some((dest, class, request));
                    t.session.ensure_remote(ctx, dest, idx as u64);
                    return;
                }
                self.do_send(ctx, idx, dest, &class, request);
            }
            ScreenAction::End => {
                if t.session.transid().is_none() {
                    // END-TRANSACTION outside transaction mode is a screen
                    // program error; surface it as an abort
                    ctx.count("tcp.program_errors", 1);
                    self.drive(ctx, idx, ScreenInput::Aborted);
                    return;
                }
                t.state = TermState::AwaitEnd;
                t.session.end(ctx, idx as u64);
            }
            ScreenAction::Abort => {
                if t.session.transid().is_none() {
                    ctx.count("tcp.program_errors", 1);
                    self.drive(ctx, idx, ScreenInput::Aborted);
                    return;
                }
                t.state = TermState::AwaitAbortFinal;
                t.session.abort(ctx, AbortReason::Voluntary, idx as u64);
            }
            ScreenAction::Restart => {
                self.restart_transaction(ctx, idx);
            }
            ScreenAction::Think(d) => {
                t.state = TermState::Thinking;
                ctx.set_timer(d, idx as u64);
            }
            ScreenAction::Finished => {
                t.state = TermState::Finished;
                ctx.count("tcp.terminals_finished", 1);
                self.checkpoint_terminal(ctx, idx);
            }
        }
    }

    fn do_send(
        &mut self,
        ctx: &mut PairCtx<'_, '_>,
        idx: usize,
        dest: NodeId,
        class: &str,
        request: crate::messages::AppRequest,
    ) {
        let t = &mut self.terminals[idx];
        let target = Target::Named(dest, format!("$SC-{class}"));
        let env = ServerRequest {
            transid: t.session.transid(),
            options: t.session.options(),
            request,
        };
        ctx.count("tcp.sends", 1);
        // a single attempt: a lost server surfaces as a timeout and takes
        // the abort+restart path (no blind re-execution of non-idempotent
        // work)
        let timeout = self.cfg.send_timeout;
        if t
            .server_rpc
            .call(ctx, target, env, timeout, 0, idx as u64)
            .is_err()
        {
            self.send_failed(ctx, idx);
        }
    }

    /// Back out and restart at BEGIN-TRANSACTION, subject to the restart
    /// limit.
    fn restart_transaction(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize) {
        let t = &mut self.terminals[idx];
        if t.session.transid().is_some() {
            t.state = TermState::AwaitAbortRestart;
            if !t.session.busy() {
                t.session.abort(ctx, AbortReason::Restart, idx as u64);
            }
            // if the session is busy, the in-flight op's completion (or
            // failure) arrives first; the state machine aborts then
        } else {
            self.after_abort_restart(ctx, idx);
        }
    }

    /// The transaction is backed out: restart the program (or give up past
    /// the limit).
    fn after_abort_restart(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize) {
        let limit = self.cfg.restart_limit;
        let backoff = self.cfg.backoff;
        let t = &mut self.terminals[idx];
        t.aborted += 1;
        t.restart_count += 1;
        ctx.count("tcp.restarts", 1);
        if t.restart_count > limit {
            ctx.count("tcp.restart_limit_hit", 1);
            t.restart_count = 0;
            self.checkpoint_terminal(ctx, idx);
            self.drive(ctx, idx, ScreenInput::Aborted);
            return;
        }
        t.program.restart();
        t.state = TermState::Thinking;
        ctx.set_timer(backoff, idx as u64);
        self.checkpoint_terminal(ctx, idx);
    }

    fn send_failed(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize) {
        ctx.count("tcp.send_failures", 1);
        if self.terminals[idx].session.transid().is_some() {
            // "failure of an application server's processor while that
            // server was working on the transaction" → abort + restart
            self.restart_transaction(ctx, idx);
        } else {
            self.drive(ctx, idx, ScreenInput::SendFailed);
        }
    }

    fn on_session_event(&mut self, ctx: &mut PairCtx<'_, '_>, idx: usize, ev: SessionEvent) {
        match ev {
            SessionEvent::Began { .. } => {
                self.checkpoint_terminal(ctx, idx);
                self.drive(ctx, idx, ScreenInput::Began);
            }
            SessionEvent::Committed { .. } => {
                let t = &mut self.terminals[idx];
                t.committed += 1;
                t.restart_count = 0;
                ctx.count("tcp.commits", 1);
                self.checkpoint_terminal(ctx, idx);
                self.drive(ctx, idx, ScreenInput::Committed);
            }
            SessionEvent::Aborted { .. } => {
                let state = self.terminals[idx].state;
                match state {
                    TermState::AwaitAbortFinal => {
                        let t = &mut self.terminals[idx];
                        t.aborted += 1;
                        t.restart_count = 0;
                        ctx.count("tcp.voluntary_aborts", 1);
                        self.checkpoint_terminal(ctx, idx);
                        self.drive(ctx, idx, ScreenInput::Aborted);
                    }
                    // END answered "aborted" (system abort) or an abort we
                    // requested for restart completed
                    _ => self.after_abort_restart(ctx, idx),
                }
            }
            SessionEvent::Failed { .. } => {
                // a verb or op could not be carried out; back out and retry
                if self.terminals[idx].session.transid().is_some() {
                    self.restart_transaction(ctx, idx);
                } else {
                    // BEGIN failed: back off and retry
                    let t = &mut self.terminals[idx];
                    t.state = TermState::Thinking;
                    t.program.restart();
                    let backoff = self.cfg.backoff;
                    ctx.set_timer(backoff, idx as u64);
                }
            }
            SessionEvent::OpDone { .. } => {
                // remote-transaction-begin completed: release the parked SEND
                if self.terminals[idx].state == TermState::AwaitSend {
                    if let Some((dest, class, request)) = self.terminals[idx].pending_send.take() {
                        self.do_send(ctx, idx, dest, &class, request);
                    }
                }
            }
        }
    }

    /// Per-terminal totals (committed, aborted) — read by experiments via
    /// the world's metrics instead; kept for doc completeness.
    pub fn totals(&self) -> (u64, u64) {
        self.terminals
            .iter()
            .fold((0, 0), |(c, a), t| (c + t.committed, a + t.aborted))
    }
}

impl PairApp for TerminalControlProcess {
    fn service_name(&self) -> String {
        self.cfg.name.clone()
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn on_primary_start(&mut self, ctx: &mut PairCtx<'_, '_>) {
        // start every idle terminal
        for idx in 0..self.terminals.len() {
            if self.terminals[idx].state == TermState::Idle {
                self.drive(ctx, idx, ScreenInput::Go);
            }
        }
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
        let mut payload = payload;
        for idx in 0..self.terminals.len() {
            // try the terminal's TMF session
            payload = match self.terminals[idx].session.accept(ctx, payload) {
                Ok(Some(ev)) => {
                    self.on_session_event(ctx, idx, ev);
                    return;
                }
                Ok(None) => return,
                Err(p) => p,
            };
            // then its server rpc
            payload = match self.terminals[idx].server_rpc.accept(ctx, payload) {
                Ok(c) => {
                    let r = c.body;
                    if r.restart {
                        self.restart_transaction(ctx, idx);
                    } else {
                        self.drive(ctx, idx, ScreenInput::Reply(&r));
                    }
                    return;
                }
                Err(p) => p,
            };
        }
        // drop anything else (stray replies after restarts)
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        if tag < MAX_TERMINALS as u64 {
            let idx = tag as usize;
            if self.terminals[idx].state == TermState::Thinking {
                self.drive(ctx, idx, ScreenInput::Go);
            }
            return;
        }
        // rpc timers: offer to every terminal's rpcs (ids are disjoint)
        for idx in 0..self.terminals.len() {
            if let Some(ev) = self.terminals[idx].session.on_timer(ctx, tag) {
                self.on_session_event(ctx, idx, ev);
                return;
            }
            if let TimerOutcome::Expired { .. } = self.terminals[idx].server_rpc.on_timer(ctx, tag)
            {
                self.send_failed(ctx, idx);
                return;
            }
        }
        let _ = self.tmp_rpc.on_timer(ctx, tag);
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        ctx.count("tcp.takeovers", 1);
        // abort every transaction that was open on the failed primary,
        // then restart the programs at BEGIN-TRANSACTION
        let node = ctx.node();
        let opens: Vec<(usize, Option<Transid>)> =
            self.mirror_open.iter().copied().enumerate().collect();
        for (idx, open) in opens {
            if let Some(transid) = open {
                self.tmp_rpc.call_persistent(
                    ctx,
                    Target::Named(node, "$TMP".into()),
                    TmpMsg::Abort {
                        transid,
                        reason: AbortReason::CpuFailure,
                    },
                    SimDuration::from_millis(100),
                    0,
                );
            }
            if idx < self.terminals.len() && self.terminals[idx].state != TermState::Finished {
                let t = &mut self.terminals[idx];
                // resume from the checkpointed progress: committed work is
                // never re-entered
                t.program.set_progress(t.committed);
                t.program.restart();
                t.state = TermState::Thinking;
                let backoff = self.cfg.backoff;
                ctx.set_timer(backoff, idx as u64);
            }
        }
    }

    fn apply_checkpoint(&mut self, delta: Payload) {
        let d = delta.expect::<TermDelta>();
        if d.idx < self.terminals.len() {
            let t = &mut self.terminals[d.idx];
            t.committed = d.committed;
            t.aborted = d.aborted;
            t.restart_count = d.restart_count;
            if d.finished {
                t.state = TermState::Finished;
            }
            self.mirror_open[d.idx] = d.open;
        }
    }

    fn snapshot(&self) -> Payload {
        Payload::new(TcpSnapshot {
            terms: self
                .terminals
                .iter()
                .enumerate()
                .map(|(idx, t)| TermDelta {
                    idx,
                    committed: t.committed,
                    aborted: t.aborted,
                    restart_count: t.restart_count,
                    finished: t.state == TermState::Finished,
                    open: self.mirror_open.get(idx).copied().flatten(),
                })
                .collect(),
        })
    }

    fn restore(&mut self, snapshot: Payload) {
        let s = snapshot.expect::<TcpSnapshot>();
        for d in s.terms {
            let open = d.open;
            let idx = d.idx;
            self.apply_checkpoint(Payload::new(d));
            if idx < self.mirror_open.len() {
                self.mirror_open[idx] = open;
            }
        }
    }
}

/// Spawn a TCP pair on `node`. `programs` drive its terminals (≤ 32).
pub fn spawn_tcp(
    world: &mut encompass_sim::World,
    node: NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
    cfg: TcpConfig,
    catalog: Catalog,
    program_factory: impl Fn() -> Vec<Box<dyn ScreenProgram>> + 'static,
) -> PairHandle {
    guardian::spawn_pair(world, node, cpu_primary, cpu_backup, move || {
        TerminalControlProcess::new(cfg.clone(), catalog.clone(), program_factory())
    })
}
