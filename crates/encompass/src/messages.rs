//! Application-level request/reply messages exchanged between Screen
//! programs (via the TCP) and application servers.
//!
//! The File System appends the terminal's current transid to every SEND
//! while the terminal is in transaction mode; [`ServerRequest`] models the
//! transid-carrying envelope.

use bytes::Bytes;
use encompass_storage::types::Transid;
use tmf::session::SessionOptions;

/// A request from a screen program to a server class.
#[derive(Clone, Debug, PartialEq)]
pub struct AppRequest {
    /// Operation name, interpreted by the server class (e.g. `"debit"`).
    pub op: String,
    /// Positional parameters (encoding is the application's business).
    pub params: Vec<Bytes>,
}

impl AppRequest {
    pub fn new(op: &str, params: Vec<Bytes>) -> AppRequest {
        AppRequest {
            op: op.to_string(),
            params,
        }
    }

    pub fn param(&self, i: usize) -> Bytes {
        self.params.get(i).cloned().unwrap_or_default()
    }
}

/// A server's reply.
#[derive(Clone, Debug, PartialEq)]
pub struct AppReply {
    pub ok: bool,
    /// If set, the screen program should RESTART-TRANSACTION (transient
    /// problem, e.g. a lock timeout signalling deadlock).
    pub restart: bool,
    pub data: Vec<Bytes>,
}

impl AppReply {
    pub fn ok(data: Vec<Bytes>) -> AppReply {
        AppReply {
            ok: true,
            restart: false,
            data,
        }
    }

    pub fn error() -> AppReply {
        AppReply {
            ok: false,
            restart: false,
            data: Vec::new(),
        }
    }

    pub fn restart() -> AppReply {
        AppReply {
            ok: false,
            restart: true,
            data: Vec::new(),
        }
    }
}

/// The wire envelope: the File System attaches the current transid and
/// the transaction's declared [`SessionOptions`], so the server's reads
/// run in the requester's mode (exclusive, shared, or snapshot).
#[derive(Clone, Debug)]
pub struct ServerRequest {
    pub transid: Option<Transid>,
    pub options: SessionOptions,
    pub request: AppRequest,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_params() {
        let r = AppRequest::new("debit", vec![Bytes::from_static(b"acct1")]);
        assert_eq!(r.param(0), Bytes::from_static(b"acct1"));
        assert_eq!(r.param(5), Bytes::new(), "missing params read as empty");
    }

    #[test]
    fn reply_constructors() {
        assert!(AppReply::ok(vec![]).ok);
        assert!(!AppReply::error().ok);
        let r = AppReply::restart();
        assert!(!r.ok);
        assert!(r.restart);
    }
}
