//! Application wiring: one builder that assembles a complete ENCOMPASS
//! system — nodes, links, catalog, the full TMF process set, server
//! classes, and TCPs with terminal programs — ready to run.

use crate::appmon::{spawn_server_class, ServerClassConfig};
use crate::manufacturing::{self, manufacturing_catalog, MfgServer, SuspenseMonitor};
use crate::screen::ScreenProgram;
use crate::tcp::{spawn_tcp, TcpConfig};
use crate::workload::{preload_accounts, BankProgram, BankServer, BankWorkload};
use bytes::Bytes;
use encompass_sim::{NodeId, SimConfig, SimDuration, World};
use encompass_storage::types::{FileDef, PartitionSpec, RecoveryMode, VolumeRef};
use encompass_storage::Catalog;
use tmf::facility::{spawn_tmf_network, NodeHandles, TmfNodeConfig};

/// Everything a built application exposes to the driver.
pub struct AppHandles {
    pub world: World,
    pub nodes: Vec<NodeId>,
    pub catalog: Catalog,
    pub tmf: Vec<NodeHandles>,
}

/// Builder for simulated ENCOMPASS systems.
pub struct AppBuilder {
    sim: SimConfig,
    node_cpus: Vec<u8>,
    links: Vec<(usize, usize, SimDuration)>,
    tmf: TmfNodeConfig,
}

impl Default for AppBuilder {
    fn default() -> Self {
        AppBuilder::new()
    }
}

impl AppBuilder {
    pub fn new() -> AppBuilder {
        AppBuilder {
            sim: SimConfig::default(),
            node_cpus: Vec::new(),
            links: Vec::new(),
            tmf: TmfNodeConfig::default(),
        }
    }

    pub fn sim_config(mut self, cfg: SimConfig) -> AppBuilder {
        self.sim = cfg;
        self
    }

    pub fn seed(mut self, seed: u64) -> AppBuilder {
        self.sim.seed = seed;
        self
    }

    /// Add a node with the given processor count (2..=16).
    pub fn node(mut self, cpus: u8) -> AppBuilder {
        self.node_cpus.push(cpus);
        self
    }

    /// Link two nodes (indices in add order).
    pub fn link(mut self, a: usize, b: usize, latency: SimDuration) -> AppBuilder {
        self.links.push((a, b, latency));
        self
    }

    /// Fully connect all nodes with the same latency.
    pub fn mesh(mut self, latency: SimDuration) -> AppBuilder {
        for a in 0..self.node_cpus.len() {
            for b in (a + 1)..self.node_cpus.len() {
                self.links.push((a, b, latency));
            }
        }
        self
    }

    pub fn recovery_mode(mut self, mode: RecoveryMode) -> AppBuilder {
        self.tmf.recovery_mode = mode;
        self
    }

    pub fn tmf_config(mut self, cfg: TmfNodeConfig) -> AppBuilder {
        self.tmf = cfg;
        self
    }

    /// Create the world + nodes + links and spawn TMF for `catalog`.
    pub fn build(self, catalog: Catalog) -> AppHandles {
        let mut world = World::new(self.sim);
        let nodes: Vec<NodeId> = self.node_cpus.iter().map(|&c| world.add_node(c)).collect();
        for (a, b, lat) in self.links {
            world.add_link(nodes[a], nodes[b], lat);
        }
        let tmf = spawn_tmf_network(&mut world, &catalog, self.tmf);
        AppHandles {
            world,
            nodes,
            catalog,
            tmf,
        }
    }
}

/// Parameters of the ready-made bank (debit-credit) application.
#[derive(Clone, Debug)]
pub struct BankAppParams {
    /// CPUs per node (one entry per node; accounts are partitioned evenly
    /// across nodes when there is more than one).
    pub node_cpus: Vec<u8>,
    /// Audited volumes per node holding account partitions. Volume 0 is
    /// the classic `$BANK`; extra volumes are `$BANK1`, `$BANK2`, … and
    /// each node's key range is sub-split evenly across its volumes. The
    /// history file always lives on node 0's `$BANK`.
    pub volumes_per_node: usize,
    /// Append a history record on every debit (the conservation oracle's
    /// food). Off, every transaction touches exactly one volume — the
    /// shape the trail-partitioning benchmarks need, since a shared
    /// entry-sequenced file pins every transaction to one partition.
    pub history: bool,
    pub accounts: u64,
    pub terminals_per_node: usize,
    /// Extra read-only terminals per node running query transactions
    /// (BEGIN read-only → SEND `query` → END). Appended after the
    /// read-write terminals so zero readers reproduces historical runs
    /// byte-for-byte.
    pub readonly_terminals_per_node: usize,
    pub transactions_per_terminal: u64,
    /// Transactions each read-only terminal runs; `None` = same as the
    /// read-write terminals. Lets a benchmark cell pin an exact
    /// read/write transaction mix within the per-TCP terminal cap.
    pub readonly_transactions_per_terminal: Option<u64>,
    pub think: SimDuration,
    pub hot_fraction: f64,
    pub hot_set: u64,
    pub recovery_mode: RecoveryMode,
    pub servers_min: usize,
    pub servers_max: usize,
    pub seed: u64,
    /// Deadlock timeout used by the bank servers' lock requests.
    pub lock_wait: SimDuration,
    /// Simulator cost model (latencies, jitter); the seed field above
    /// overrides `sim.seed`.
    pub sim: SimConfig,
    /// Per-node TMF configuration (group-commit knobs live here; build it
    /// with `TmfNodeConfig::builder()`). The `recovery_mode` field above
    /// overrides the mode inside this config.
    pub tmf: TmfNodeConfig,
}

impl Default for BankAppParams {
    fn default() -> Self {
        BankAppParams {
            node_cpus: vec![4],
            volumes_per_node: 1,
            history: true,
            accounts: 1000,
            terminals_per_node: 4,
            readonly_terminals_per_node: 0,
            transactions_per_terminal: 25,
            readonly_transactions_per_terminal: None,
            think: SimDuration::from_millis(10),
            hot_fraction: 0.0,
            hot_set: 10,
            recovery_mode: RecoveryMode::NonStopCheckpoint,
            servers_min: 2,
            servers_max: 8,
            seed: 42,
            lock_wait: SimDuration::from_millis(500),
            sim: SimConfig::default(),
            tmf: TmfNodeConfig::default(),
        }
    }
}

/// Build the complete bank application: catalog (accounts + history),
/// TMF, one `bank` server class per node, one TCP per node running
/// [`BankProgram`] terminals, and preloaded accounts.
pub fn launch_bank_app(params: BankAppParams) -> AppHandles {
    let mut builder = AppBuilder::new()
        .sim_config(params.sim.clone())
        .seed(params.seed);
    for &c in &params.node_cpus {
        builder = builder.node(c);
    }
    builder = builder
        .mesh(SimDuration::from_millis(2))
        .tmf_config(params.tmf.clone())
        .recovery_mode(params.recovery_mode);

    // provisional world to learn node ids (deterministic: 0..n)
    let n_nodes = params.node_cpus.len();
    let node_ids: Vec<NodeId> = (0..n_nodes as u8).map(NodeId).collect();

    // accounts partitioned evenly across nodes by key range, each node's
    // range sub-split across its volumes ($BANK, $BANK1, …)
    let volumes_per_node = params.volumes_per_node.max(1);
    let slots = n_nodes as u64 * volumes_per_node as u64;
    let mut catalog = Catalog::new();
    let mut parts = Vec::new();
    for (j, &node) in node_ids
        .iter()
        .flat_map(|n| std::iter::repeat_n(n, volumes_per_node))
        .enumerate()
    {
        let low = if j == 0 {
            Bytes::new()
        } else {
            crate::workload::account_key(params.accounts * j as u64 / slots)
        };
        let name = if j % volumes_per_node == 0 {
            "$BANK".to_string()
        } else {
            format!("$BANK{}", j % volumes_per_node)
        };
        parts.push(PartitionSpec {
            low_key: low,
            volume: VolumeRef::new(node, &name),
        });
    }
    catalog.add(FileDef::key_sequenced("accounts", parts[0].volume.clone()).partitioned(parts));
    catalog.add(FileDef::entry_sequenced(
        "history",
        VolumeRef::new(node_ids[0], "$BANK"),
    ));

    let mut app = builder.build(catalog);
    preload_accounts(&mut app.world, &app.catalog, "accounts", params.accounts, 1000);

    for (i, &node) in app.nodes.iter().enumerate() {
        let cpus = params.node_cpus[i];
        // the bank server class
        spawn_server_class(
            &mut app.world,
            node,
            0,
            ServerClassConfig {
                class: "bank".into(),
                server_cpus: (0..cpus).collect(),
                min_servers: params.servers_min,
                max_servers: params.servers_max,
                spawn_backlog: 2,
                shrink_interval: SimDuration::from_secs(5),
                lock_wait: params.lock_wait,
            },
            app.catalog.clone(),
            {
                let history = params.history.then(|| "history".to_string());
                move || Box::new(BankServer::new(history.clone()))
            },
        );
        // the TCP with its terminals
        let catalog = app.catalog.clone();
        let wl = BankWorkload {
            accounts: params.accounts,
            hot_fraction: params.hot_fraction,
            hot_set: params.hot_set,
            transactions: params.transactions_per_terminal,
            think: params.think,
            server_class: "bank".into(),
            server_node: None,
            read_only: false,
        };
        let terminals = params.terminals_per_node;
        let readonly_terminals = params.readonly_terminals_per_node;
        let readonly_transactions = params.readonly_transactions_per_terminal;
        let seed = params.seed;
        let node_idx = i as u64;
        spawn_tcp(
            &mut app.world,
            node,
            0,
            1,
            TcpConfig {
                name: format!("$TCP{}", node.0),
                ..TcpConfig::default()
            },
            catalog,
            move || {
                let mut programs: Vec<Box<dyn ScreenProgram>> = (0..terminals)
                    .map(|t| {
                        Box::new(BankProgram::new(
                            wl.clone(),
                            seed ^ (node_idx << 16) ^ t as u64,
                        )) as Box<dyn ScreenProgram>
                    })
                    .collect();
                // readers ride after the writers: terminal indices (and
                // therefore rpc id spaces) of the read-write terminals are
                // untouched when there are zero readers
                let ro = BankWorkload {
                    read_only: true,
                    transactions: readonly_transactions.unwrap_or(wl.transactions),
                    ..wl.clone()
                };
                programs.extend((terminals..terminals + readonly_terminals).map(|t| {
                    Box::new(BankProgram::new(
                        ro.clone(),
                        seed ^ (node_idx << 16) ^ t as u64,
                    )) as Box<dyn ScreenProgram>
                }));
                programs
            },
        );
    }
    app
}

/// Parameters of the manufacturing application (experiment F4/T7).
#[derive(Clone, Debug)]
pub struct MfgAppParams {
    pub nodes: usize,
    pub cpus_per_node: u8,
    pub suspense_poll: SimDuration,
    pub seed: u64,
}

impl Default for MfgAppParams {
    fn default() -> Self {
        MfgAppParams {
            nodes: 4,
            cpus_per_node: 4,
            suspense_poll: SimDuration::from_millis(100),
            seed: 7,
        }
    }
}

/// Build the manufacturing network: TMF on every node, an `mfg` server
/// class per node, and a suspense monitor per node. Terminal programs are
/// the caller's business (tests drive specific scenarios).
pub fn launch_mfg_app(params: MfgAppParams) -> AppHandles {
    let node_ids: Vec<NodeId> = (0..params.nodes as u8).map(NodeId).collect();
    let catalog = manufacturing_catalog(&node_ids);
    let mut builder = AppBuilder::new().seed(params.seed);
    for _ in 0..params.nodes {
        builder = builder.node(params.cpus_per_node);
    }
    let mut app = builder.mesh(SimDuration::from_millis(3)).build(catalog);
    for &node in &app.nodes {
        let all = node_ids.clone();
        spawn_server_class(
            &mut app.world,
            node,
            0,
            ServerClassConfig {
                class: "mfg".into(),
                server_cpus: (0..params.cpus_per_node).collect(),
                min_servers: 2,
                max_servers: 6,
                spawn_backlog: 2,
                shrink_interval: SimDuration::from_secs(5),
                lock_wait: SimDuration::from_millis(500),
            },
            app.catalog.clone(),
            move || Box::new(MfgServer::new(node, all.clone())),
        );
        app.world.spawn(
            node,
            1,
            Box::new(SuspenseMonitor::new(
                app.catalog.clone(),
                params.suspense_poll,
            )),
        );
    }
    app
}

/// Directly read a global replica from the media (test assertions).
pub fn read_replica(
    world: &mut World,
    node: NodeId,
    file: &str,
    key: &[u8],
) -> Option<Bytes> {
    use encompass_storage::media::{media_key, VolumeMedia};
    let media = world
        .stable()
        .get::<VolumeMedia>(&media_key(node, "$MFG"))?;
    media.file(&manufacturing::replica(file, node))?.read(key)
}
