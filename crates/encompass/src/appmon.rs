//! Application control: per-class server queues with dynamic server
//! creation and deletion.
//!
//! "ENCOMPASS application control … provides for the dynamic creation and
//! deletion of application server processes to ensure good response time
//! and utilization of resources as the workload on the system changes."
//!
//! A [`ServerClassQueue`] is a process-pair registered as `$SC-<class>` on
//! its node. SENDs from TCPs arrive here; the queue dispatches each to an
//! idle server (spawning new ones while the backlog is deep, up to the
//! maximum) and the server replies directly to the TCP. Idle servers above
//! the minimum are deleted after a shrink interval.
//!
//! The queue's state is deliberately reconstructible: a takeover drops the
//! backlog and the server roster and spawns a fresh minimum set — the
//! TCPs' SEND timeouts abort and restart the affected transactions, which
//! is exactly TMF's recovery model for application-path failures.

use crate::messages::ServerRequest;
use crate::server::{Dispatch, ServerIdle, ServerLogic, ServerProcess};
use encompass_sim::{CpuId, Payload, Pid, SimDuration, SystemEvent};
use encompass_storage::Catalog;
use guardian::{PairApp, PairCtx, PairHandle, Request};
use std::collections::VecDeque;
use std::rc::Rc;

const TAG_SHRINK: u64 = 1;

/// Configuration of one server class on one node.
#[derive(Clone, Debug)]
pub struct ServerClassConfig {
    /// Class name; the queue registers as `$SC-<class>`.
    pub class: String,
    /// CPUs servers may run on (round-robin).
    pub server_cpus: Vec<u8>,
    pub min_servers: usize,
    pub max_servers: usize,
    /// Spawn another server when the backlog exceeds this.
    pub spawn_backlog: usize,
    /// How often to consider deleting idle servers above the minimum.
    pub shrink_interval: SimDuration,
    /// Lock-wait (deadlock timeout) for the servers' data-base requests.
    pub lock_wait: SimDuration,
}

impl Default for ServerClassConfig {
    fn default() -> Self {
        ServerClassConfig {
            class: "server".into(),
            server_cpus: vec![0, 1],
            min_servers: 1,
            max_servers: 8,
            spawn_backlog: 2,
            shrink_interval: SimDuration::from_secs(5),
            lock_wait: SimDuration::from_millis(500),
        }
    }
}

/// Tells an idle server to exit (dynamic deletion).
pub(crate) struct ServerStop;

/// The queue/dispatcher for one server class (a process-pair).
pub struct ServerClassQueue {
    cfg: ServerClassConfig,
    catalog: Catalog,
    factory: Rc<dyn Fn() -> Box<dyn ServerLogic>>,
    idle: VecDeque<Pid>,
    busy: Vec<Pid>,
    backlog: VecDeque<Dispatch>,
    cpu_rr: usize,
    started: bool,
}

impl ServerClassQueue {
    pub fn new(
        cfg: ServerClassConfig,
        catalog: Catalog,
        factory: Rc<dyn Fn() -> Box<dyn ServerLogic>>,
    ) -> ServerClassQueue {
        ServerClassQueue {
            cfg,
            catalog,
            factory,
            idle: VecDeque::new(),
            busy: Vec::new(),
            backlog: VecDeque::new(),
            cpu_rr: 0,
            started: false,
        }
    }

    fn server_count(&self) -> usize {
        self.idle.len() + self.busy.len()
    }

    fn spawn_server(&mut self, ctx: &mut PairCtx<'_, '_>) {
        let node = ctx.node();
        for _ in 0..self.cfg.server_cpus.len() {
            let cpu = self.cfg.server_cpus[self.cpu_rr % self.cfg.server_cpus.len()];
            self.cpu_rr += 1;
            let factory = Rc::clone(&self.factory);
            let catalog = self.catalog.clone();
            let class = self.cfg.class.clone();
            let mut server = ServerProcess::new(&class, catalog, move || (factory)());
            server.set_lock_wait(self.cfg.lock_wait);
            if let Some(pid) = ctx.try_spawn(node, CpuId(cpu), Box::new(server)) {
                self.idle.push_back(pid);
                ctx.count("appmon.servers_spawned", 1);
                return;
            }
        }
    }

    fn drain(&mut self, ctx: &mut PairCtx<'_, '_>) {
        while !self.backlog.is_empty() {
            // skip dead idle servers
            while let Some(&front) = self.idle.front() {
                if ctx.is_alive(front) {
                    break;
                }
                self.idle.pop_front();
            }
            let Some(server) = self.idle.pop_front() else {
                break;
            };
            let d = self.backlog.pop_front().expect("non-empty");
            let _ = ctx.send(server, Payload::new(d));
            self.busy.push(server);
        }
        // dynamic creation under backlog pressure
        while self.backlog.len() > self.cfg.spawn_backlog
            && self.server_count() < self.cfg.max_servers
        {
            let before = self.server_count();
            self.spawn_server(ctx);
            if self.server_count() == before {
                break; // no CPU available
            }
            if let (Some(server), Some(d)) = (self.idle.pop_back(), self.backlog.pop_front()) {
                let _ = ctx.send(server, Payload::new(d));
                self.busy.push(server);
            }
        }
    }
}

impl PairApp for ServerClassQueue {
    fn service_name(&self) -> String {
        format!("$SC-{}", self.cfg.class)
    }

    fn kind(&self) -> &'static str {
        "server-class-queue"
    }

    fn on_primary_start(&mut self, ctx: &mut PairCtx<'_, '_>) {
        if !self.started {
            self.started = true;
            for _ in 0..self.cfg.min_servers {
                self.spawn_server(ctx);
            }
        }
        ctx.set_timer(self.cfg.shrink_interval, TAG_SHRINK);
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, src: Pid, payload: Payload) {
        if payload.is::<Request<ServerRequest>>() {
            let req = payload.expect::<Request<ServerRequest>>();
            self.backlog.push_back(Dispatch {
                req_id: req.id,
                from: req.from,
                body: req.body,
            });
            ctx.count(&format!("appmon.{}.requests", self.cfg.class), 1);
            self.drain(ctx);
            return;
        }
        if payload.is::<ServerIdle>() {
            self.busy.retain(|p| *p != src);
            if ctx.is_alive(src) {
                self.idle.push_back(src);
            }
            self.drain(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        if tag == TAG_SHRINK {
            // dynamic deletion: drop idle servers above the minimum
            while self.server_count() > self.cfg.min_servers && self.idle.len() > 1 {
                if let Some(server) = self.idle.pop_front() {
                    let _ = ctx.send(server, Payload::new(ServerStop));
                    ctx.count("appmon.servers_deleted", 1);
                }
            }
            ctx.set_timer(self.cfg.shrink_interval, TAG_SHRINK);
        }
    }

    fn on_system(&mut self, ctx: &mut PairCtx<'_, '_>, ev: SystemEvent) {
        if let SystemEvent::CpuDown(node, cpu) = ev {
            if node != ctx.node() {
                return;
            }
            // forget servers that died with the CPU and restore capacity
            self.idle.retain(|p| p.cpu != cpu);
            self.busy.retain(|p| p.cpu != cpu);
            while self.server_count() < self.cfg.min_servers {
                let before = self.server_count();
                self.spawn_server(ctx);
                if self.server_count() == before {
                    break;
                }
            }
            self.drain(ctx);
        }
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        // reconstructible state: fresh roster; in-flight SENDs time out at
        // the TCPs and restart their transactions
        ctx.count("appmon.takeovers", 1);
        self.idle.clear();
        self.busy.clear();
        self.backlog.clear();
        self.started = true;
        while self.server_count() < self.cfg.min_servers {
            let before = self.server_count();
            self.spawn_server(ctx);
            if self.server_count() == before {
                break;
            }
        }
    }

    fn apply_checkpoint(&mut self, _delta: Payload) {}

    fn snapshot(&self) -> Payload {
        Payload::new(())
    }

    fn restore(&mut self, _snapshot: Payload) {}
}

/// Spawn a server-class queue pair (and its initial servers) on `node`.
pub fn spawn_server_class(
    world: &mut encompass_sim::World,
    node: encompass_sim::NodeId,
    cpu: u8,
    cfg: ServerClassConfig,
    catalog: Catalog,
    factory: impl Fn() -> Box<dyn ServerLogic> + 'static,
) -> PairHandle {
    let factory: Rc<dyn Fn() -> Box<dyn ServerLogic>> = Rc::new(factory);
    let backup_cpu = cfg
        .server_cpus
        .iter()
        .copied()
        .find(|&c| c != cpu)
        .unwrap_or(cpu.wrapping_add(1));
    guardian::spawn_pair(world, node, cpu, backup_cpu, move || {
        ServerClassQueue::new(cfg.clone(), catalog.clone(), Rc::clone(&factory))
    })
}
