//! The manufacturing distributed data base (Figure 4 and §"A Distributed
//! Data Base Application").
//!
//! Four plants (Cupertino, Santa Clara, Reston, Neufahrn) share **global**
//! files — Item Master, Bill of Materials, Purchase Order Header —
//! replicated at every node, plus **local** files (Stock,
//! Work-in-Progress, Transaction History, PO Detail).
//!
//! The design trades replica consistency for **node autonomy**: every
//! global record has a *master node* (stored in the record); an update
//! runs a TMF transaction at the master which updates the master copy and
//! queues *deferred updates* for the other copies in the master's
//! **suspense file**. A dedicated **suspense monitor** scans the suspense
//! file and, for each currently-accessible node, executes a TMF
//! transaction that sends the update to a server at the non-master node
//! and deletes the suspense entry — strictly in suspense-file order per
//! destination, so that when a partition heals "global file copies
//! converge to a consistent state".
//!
//! The rejected synchronous design (update every copy in one TMF
//! transaction) is also implemented (`sync-update`) for the node-autonomy
//! ablation, experiment T7.

use crate::messages::{AppReply, AppRequest, ServerRequest};
use crate::server::{DbOp, ServerLogic, ServerStep};
use bytes::{BufMut, Bytes, BytesMut};
use encompass_sim::{Ctx, NodeId, Payload, Pid, Process, SimDuration, TimerId};
use encompass_storage::discprocess::{DiscError, DiscReply};
use encompass_storage::types::{num_key, FileDef, VolumeRef};
use encompass_storage::Catalog;
use guardian::{Rpc, Target, TimerOutcome};
use tmf::session::{SessionEvent, TmfSession};
use tmf::state::AbortReason;

/// The four global files of the paper.
pub const GLOBAL_FILES: [&str; 3] = ["item", "bom", "pohead"];
/// The local files of the paper.
pub const LOCAL_FILES: [&str; 4] = ["stock", "wip", "hist", "podtl"];

/// The per-node replica of a global file.
pub fn replica(file: &str, node: NodeId) -> String {
    format!("{file}@{}", node.0)
}

/// The per-node name of a local file.
pub fn local(file: &str, node: NodeId) -> String {
    format!("{file}@{}", node.0)
}

/// The suspense file of a node.
pub fn suspense(node: NodeId) -> String {
    format!("suspense@{}", node.0)
}

/// Build the catalog for a manufacturing network over `nodes` (one volume
/// `$MFG` per node).
pub fn manufacturing_catalog(nodes: &[NodeId]) -> Catalog {
    let mut c = Catalog::new();
    for &n in nodes {
        let vol = VolumeRef::new(n, "$MFG");
        for f in GLOBAL_FILES {
            c.add(FileDef::key_sequenced(&replica(f, n), vol.clone()));
        }
        for f in LOCAL_FILES {
            if f == "hist" {
                c.add(FileDef::entry_sequenced(&local(f, n), vol.clone()));
            } else {
                c.add(FileDef::key_sequenced(&local(f, n), vol.clone()));
            }
        }
        c.add(FileDef::entry_sequenced(&suspense(n), vol.clone()));
    }
    c
}

// ----------------------------------------------------------------------
// Global-record encoding: [master_node][payload]
// ----------------------------------------------------------------------

pub fn global_record(master: NodeId, payload: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(payload.len() + 1);
    b.put_u8(master.0);
    b.put_slice(payload);
    b.freeze()
}

pub fn master_of(record: &[u8]) -> Option<NodeId> {
    record.first().map(|&m| NodeId(m))
}

pub fn payload_of(record: &[u8]) -> &[u8] {
    &record[1.min(record.len())..]
}

// ----------------------------------------------------------------------
// Suspense-record encoding: dest | file | key | value
// ----------------------------------------------------------------------

/// A deferred replica update queued in a suspense file.
#[derive(Clone, Debug, PartialEq)]
pub struct Deferred {
    pub dest: NodeId,
    /// Logical global file name (e.g. `"item"`).
    pub file: String,
    pub key: Bytes,
    pub value: Bytes,
}

impl Deferred {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u8(self.dest.0);
        b.put_u16(self.file.len() as u16);
        b.put_slice(self.file.as_bytes());
        b.put_u16(self.key.len() as u16);
        b.put_slice(&self.key);
        b.put_u32(self.value.len() as u32);
        b.put_slice(&self.value);
        b.freeze()
    }

    pub fn decode(mut raw: &[u8]) -> Option<Deferred> {
        use bytes::Buf;
        if raw.len() < 1 + 2 {
            return None;
        }
        let dest = NodeId(raw.get_u8());
        let flen = raw.get_u16() as usize;
        if raw.len() < flen + 2 {
            return None;
        }
        let file = String::from_utf8(raw[..flen].to_vec()).ok()?;
        raw.advance(flen);
        let klen = raw.get_u16() as usize;
        if raw.len() < klen + 4 {
            return None;
        }
        let key = Bytes::copy_from_slice(&raw[..klen]);
        raw.advance(klen);
        let vlen = raw.get_u32() as usize;
        if raw.len() < vlen {
            return None;
        }
        let value = Bytes::copy_from_slice(&raw[..vlen]);
        Some(Deferred {
            dest,
            file,
            key,
            value,
        })
    }
}

// ----------------------------------------------------------------------
// The manufacturing server class
// ----------------------------------------------------------------------

/// Context-free server for one node of the manufacturing network.
///
/// Ops:
/// * `read-global [file, key]` — read the local replica;
/// * `master-update [file, key, payload]` — master-node write: update the
///   master copy and queue deferred updates for every other replica;
/// * `apply-replica [file, key, value]` — install a deferred update
///   (called by a suspense monitor, inside its transaction);
/// * `put-local [file, key, value]` — read-lock + insert-or-update a local
///   file record;
/// * `sync-update [file, key, payload]` — the rejected design: update all
///   replicas in this one transaction.
pub struct MfgServer {
    node: NodeId,
    all_nodes: Vec<NodeId>,
    step: u32,
    op: String,
    file: String,
    key: Bytes,
    value: Bytes,
    queue: Vec<DbOp>,
    remotes: Vec<NodeId>,
    cursor: usize,
}

impl MfgServer {
    pub fn new(node: NodeId, all_nodes: Vec<NodeId>) -> MfgServer {
        MfgServer {
            node,
            all_nodes,
            step: 0,
            op: String::new(),
            file: String::new(),
            key: Bytes::new(),
            value: Bytes::new(),
            queue: Vec::new(),
            remotes: Vec::new(),
            cursor: 0,
        }
    }

    fn next_queued(&mut self) -> ServerStep {
        match self.queue.pop() {
            Some(op) => ServerStep::Db(op),
            None => ServerStep::Reply(AppReply::ok(vec![])),
        }
    }
}

impl ServerLogic for MfgServer {
    fn on_request(&mut self, req: &AppRequest) -> ServerStep {
        self.op = req.op.clone();
        self.file = String::from_utf8_lossy(&req.param(0)).to_string();
        self.key = req.param(1);
        self.value = req.param(2);
        match req.op.as_str() {
            "read-global" => ServerStep::Db(DbOp::Read {
                file: replica(&self.file, self.node),
                key: self.key.clone(),
            }),
            "master-update" | "sync-update" | "apply-replica" | "put-local" => {
                // all write paths start with a read-lock on the target
                let file = match self.op.as_str() {
                    "master-update" | "sync-update" => replica(&self.file, self.node),
                    "apply-replica" => replica(&self.file, self.node),
                    _ => local(&self.file, self.node),
                };
                self.step = 1;
                ServerStep::Db(DbOp::ReadLock {
                    file,
                    key: self.key.clone(),
                })
            }
            _ => ServerStep::Reply(AppReply::error()),
        }
    }

    fn on_db(&mut self, db: &DiscReply) -> ServerStep {
        if let DiscReply::Err(DiscError::LockTimeout) = db {
            return ServerStep::Reply(AppReply::restart());
        }
        match self.op.as_str() {
            "read-global" => match db {
                DiscReply::Value(v) => {
                    ServerStep::Reply(AppReply::ok(v.iter().cloned().collect()))
                }
                _ => ServerStep::Reply(AppReply::error()),
            },
            "put-local" | "apply-replica" => match (self.step, db) {
                (1, DiscReply::Value(existing)) => {
                    self.step = 2;
                    let file = if self.op == "apply-replica" {
                        replica(&self.file, self.node)
                    } else {
                        local(&self.file, self.node)
                    };
                    let op = if existing.is_some() {
                        DbOp::Update {
                            file,
                            key: self.key.clone(),
                            value: self.value.clone(),
                        }
                    } else {
                        DbOp::Insert {
                            file,
                            key: self.key.clone(),
                            value: self.value.clone(),
                        }
                    };
                    ServerStep::Db(op)
                }
                (2, DiscReply::Ok) => ServerStep::Reply(AppReply::ok(vec![])),
                _ => ServerStep::Reply(AppReply::error()),
            },
            "master-update" => match (self.step, db) {
                (1, DiscReply::Value(existing)) => {
                    // build the full work list: master copy + deferred
                    // updates for the other replicas
                    let record = global_record(self.node, &self.value);
                    let master_file = replica(&self.file, self.node);
                    let master_op = if existing.is_some() {
                        DbOp::Update {
                            file: master_file,
                            key: self.key.clone(),
                            value: record.clone(),
                        }
                    } else {
                        DbOp::Insert {
                            file: master_file,
                            key: self.key.clone(),
                            value: record.clone(),
                        }
                    };
                    for &n in &self.all_nodes {
                        if n == self.node {
                            continue;
                        }
                        let deferred = Deferred {
                            dest: n,
                            file: self.file.clone(),
                            key: self.key.clone(),
                            value: record.clone(),
                        };
                        self.queue.push(DbOp::InsertEntry {
                            file: suspense(self.node),
                            value: deferred.encode(),
                        });
                    }
                    self.step = 2;
                    ServerStep::Db(master_op)
                }
                (2, DiscReply::Ok) | (2, DiscReply::EntryNumber(_)) => self.next_queued(),
                _ => ServerStep::Reply(AppReply::error()),
            },
            // the design the paper rejects for lack of node autonomy:
            // update every replica in this one transaction. Steps:
            // 1 = master read-lock answered → write master copy
            // 2 = master write answered → lock next remote replica
            // 3 = remote replica locked → write it
            // 4 = remote write answered → lock next remote or finish
            "sync-update" => match (self.step, db) {
                (1, DiscReply::Value(existing)) => {
                    let record = global_record(self.node, &self.value);
                    self.remotes = self
                        .all_nodes
                        .iter()
                        .copied()
                        .filter(|n| *n != self.node)
                        .collect();
                    self.cursor = 0;
                    self.value = record.clone();
                    self.step = 2;
                    let master_file = replica(&self.file, self.node);
                    if existing.is_some() {
                        ServerStep::Db(DbOp::Update {
                            file: master_file,
                            key: self.key.clone(),
                            value: record,
                        })
                    } else {
                        ServerStep::Db(DbOp::Insert {
                            file: master_file,
                            key: self.key.clone(),
                            value: record,
                        })
                    }
                }
                (2, DiscReply::Ok) | (4, DiscReply::Ok) => {
                    if self.step == 4 {
                        self.cursor += 1;
                    }
                    if self.cursor >= self.remotes.len() {
                        return ServerStep::Reply(AppReply::ok(vec![]));
                    }
                    self.step = 3;
                    ServerStep::Db(DbOp::ReadLock {
                        file: replica(&self.file, self.remotes[self.cursor]),
                        key: self.key.clone(),
                    })
                }
                (3, DiscReply::Value(existing)) => {
                    let file = replica(&self.file, self.remotes[self.cursor]);
                    self.step = 4;
                    if existing.is_some() {
                        ServerStep::Db(DbOp::Update {
                            file,
                            key: self.key.clone(),
                            value: self.value.clone(),
                        })
                    } else {
                        ServerStep::Db(DbOp::Insert {
                            file,
                            key: self.key.clone(),
                            value: self.value.clone(),
                        })
                    }
                }
                _ => ServerStep::Reply(AppReply::error()),
            },
            _ => ServerStep::Reply(AppReply::error()),
        }
    }
}

// ----------------------------------------------------------------------
// The suspense monitor
// ----------------------------------------------------------------------

/// "A dedicated process, called the 'suspense monitor', scans the suspense
/// file looking for work to do."
///
/// Each cycle it reads the earliest pending entry per destination; for the
/// first destination that is currently accessible it runs one TMF
/// transaction: `apply-replica` at the destination, then delete the
/// suspense entry. Per-destination order is preserved by always taking
/// the earliest entry for a destination.
pub struct SuspenseMonitor {
    session: TmfSession,
    server_rpc: Rpc<ServerRequest, AppReply>,
    poll: SimDuration,
    state: MonState,
    current: Option<(u64, Deferred)>,
}

#[derive(PartialEq, Debug)]
enum MonState {
    Idle,
    Scanning,
    Beginning,
    EnsuringRemote,
    Applying,
    Locking,
    Deleting,
    Ending,
    Aborting,
}

const TAG_POLL: u64 = 1;

impl SuspenseMonitor {
    pub fn new(catalog: Catalog, poll: SimDuration) -> SuspenseMonitor {
        let session = TmfSession::new(catalog.clone(), 2);
        let _ = catalog;
        SuspenseMonitor {
            session,
            server_rpc: Rpc::new(20),
            poll,
            state: MonState::Idle,
            current: None,
        }
    }

    fn rearm(&mut self, ctx: &mut Ctx<'_>) {
        self.state = MonState::Idle;
        self.current = None;
        ctx.set_timer(self.poll, TAG_POLL);
    }

    fn send_apply(&mut self, ctx: &mut Ctx<'_>) {
        let d = self.current.as_ref().expect("work chosen").1.clone();
        self.state = MonState::Applying;
        let env = ServerRequest {
            transid: self.session.transid(),
            options: self.session.options(),
            request: AppRequest::new(
                "apply-replica",
                vec![
                    Bytes::copy_from_slice(d.file.as_bytes()),
                    d.key.clone(),
                    d.value.clone(),
                ],
            ),
        };
        if self
            .server_rpc
            .call(
                ctx,
                Target::Named(d.dest, "$SC-mfg".into()),
                env,
                SimDuration::from_secs(2),
                0,
                0,
            )
            .is_err()
        {
            self.state = MonState::Aborting;
            self.session.abort(ctx, AbortReason::Restart, 0);
        }
    }

    fn scan(&mut self, ctx: &mut Ctx<'_>) {
        self.state = MonState::Scanning;
        let node = ctx.node();
        let _ = self.session.op(
            ctx,
            DbOp::ReadRange {
                file: suspense(node),
                low: num_key(0),
                high: None,
                limit: 64,
            },
            0,
        );
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        match (&self.state, ev) {
            (MonState::Scanning, SessionEvent::OpDone { reply, .. }) => {
                let DiscReply::Entries(entries) = reply else {
                    self.rearm(ctx);
                    return;
                };
                // earliest entry per destination, in entry order
                let mut chosen: Option<(u64, Deferred)> = None;
                let mut seen_dests: Vec<NodeId> = Vec::new();
                for (k, v) in &entries {
                    let Some(entry) = encompass_storage::types::key_num(k) else {
                        continue;
                    };
                    let Some(d) = Deferred::decode(v) else {
                        continue;
                    };
                    if seen_dests.contains(&d.dest) {
                        continue; // a younger entry for this dest must wait
                    }
                    seen_dests.push(d.dest);
                    if chosen.is_none() && ctx.reachable(d.dest) {
                        chosen = Some((entry, d));
                    }
                }
                match chosen {
                    Some(work) => {
                        ctx.count("suspense.picked", 1);
                        self.current = Some(work);
                        self.state = MonState::Beginning;
                        self.session
                            .begin(ctx, tmf::session::SessionOptions::default(), 0);
                    }
                    None => self.rearm(ctx),
                }
            }
            (MonState::Beginning, SessionEvent::Began { .. }) => {
                // remote transaction begin precedes the SEND to the
                // destination node's server
                let d = self.current.as_ref().expect("work chosen").1.clone();
                let my_node = ctx.node();
                if self.session.needs_remote(my_node, d.dest) {
                    self.state = MonState::EnsuringRemote;
                    self.session.ensure_remote(ctx, d.dest, 0);
                    return;
                }
                self.send_apply(ctx);
            }
            (MonState::EnsuringRemote, SessionEvent::OpDone { .. }) => {
                self.send_apply(ctx);
            }
            (MonState::Locking, SessionEvent::OpDone { reply, .. }) => match reply {
                DiscReply::Value(_) => {
                    let entry = self.current.as_ref().expect("work chosen").0;
                    let node = ctx.node();
                    self.state = MonState::Deleting;
                    let _ = self.session.op(
                        ctx,
                        DbOp::Delete {
                            file: suspense(node),
                            key: num_key(entry),
                        },
                        0,
                    );
                }
                _ => {
                    self.state = MonState::Aborting;
                    self.session.abort(ctx, AbortReason::Restart, 0);
                }
            },
            (MonState::Deleting, SessionEvent::OpDone { reply, .. }) => match reply {
                DiscReply::Ok => {
                    self.state = MonState::Ending;
                    self.session.end(ctx, 0);
                }
                _ => {
                    self.state = MonState::Aborting;
                    self.session.abort(ctx, AbortReason::Restart, 0);
                }
            },
            (MonState::Ending, SessionEvent::Committed { .. }) => {
                ctx.count("suspense.applied", 1);
                // look for more work immediately
                self.state = MonState::Idle;
                self.current = None;
                self.scan(ctx);
            }
            (_, SessionEvent::Aborted { .. }) | (_, SessionEvent::Failed { .. }) => {
                ctx.count("suspense.retries", 1);
                if self.session.transid().is_some() && !self.session.busy() {
                    self.state = MonState::Aborting;
                    self.session.abort(ctx, AbortReason::Restart, 0);
                } else {
                    self.rearm(ctx);
                }
            }
            _ => self.rearm(ctx),
        }
    }
}

impl Process for SuspenseMonitor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.register_name("$SUSPENSE");
        self.rearm(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let payload = match self.session.accept(ctx, payload) {
            Ok(Some(ev)) => {
                self.on_event(ctx, ev);
                return;
            }
            Ok(None) => return,
            Err(p) => p,
        };
        if let Ok(c) = self.server_rpc.accept(ctx, payload) {
            if self.state == MonState::Applying {
                if c.body.ok {
                    // lock the suspense entry, then delete it
                    let entry = self.current.as_ref().expect("work chosen").0;
                    let node = ctx.node();
                    self.state = MonState::Locking;
                    let _ = self.session.op(
                        ctx,
                        DbOp::ReadLock {
                            file: suspense(node),
                            key: num_key(entry),
                        },
                        0,
                    );
                } else {
                    self.state = MonState::Aborting;
                    self.session.abort(ctx, AbortReason::Restart, 0);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if tag == TAG_POLL {
            if self.state == MonState::Idle {
                self.scan(ctx);
            } else {
                ctx.set_timer(self.poll, TAG_POLL);
            }
            return;
        }
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            self.on_event(ctx, ev);
            return;
        }
        if let TimerOutcome::Expired { .. } = self.server_rpc.on_timer(ctx, tag) {
            if self.session.transid().is_some() && !self.session.busy() {
                self.state = MonState::Aborting;
                self.session.abort(ctx, AbortReason::NetworkPartition, 0);
            } else {
                self.rearm(ctx);
            }
        }
    }

    fn kind(&self) -> &'static str {
        "suspense-monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_roundtrip() {
        let d = Deferred {
            dest: NodeId(3),
            file: "item".into(),
            key: Bytes::from_static(b"widget"),
            value: Bytes::from_static(b"\x00payload"),
        };
        assert_eq!(Deferred::decode(&d.encode()), Some(d));
        assert_eq!(Deferred::decode(b""), None);
        assert_eq!(Deferred::decode(b"\x01\x00"), None);
    }

    #[test]
    fn global_record_encoding() {
        let r = global_record(NodeId(2), b"data");
        assert_eq!(master_of(&r), Some(NodeId(2)));
        assert_eq!(payload_of(&r), b"data");
        assert_eq!(master_of(b""), None);
    }

    #[test]
    fn catalog_has_all_files() {
        let nodes = [NodeId(0), NodeId(1)];
        let c = manufacturing_catalog(&nodes);
        // per node: 3 global + 4 local + 1 suspense = 8
        assert_eq!(c.len(), 16);
        assert!(c.get("item@0").is_some());
        assert!(c.get("suspense@1").is_some());
        assert!(c.get("hist@0").is_some());
    }

    #[test]
    fn replica_names() {
        assert_eq!(replica("item", NodeId(2)), "item@2");
        assert_eq!(suspense(NodeId(0)), "suspense@0");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn deferred_roundtrips(
                dest in 0u8..16,
                file in "[a-z]{1,12}",
                key in prop::collection::vec(any::<u8>(), 0..64),
                value in prop::collection::vec(any::<u8>(), 0..256),
            ) {
                let d = Deferred {
                    dest: NodeId(dest),
                    file,
                    key: Bytes::from(key),
                    value: Bytes::from(value),
                };
                prop_assert_eq!(Deferred::decode(&d.encode()), Some(d));
            }

            #[test]
            fn decode_never_panics_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..128)) {
                let _ = Deferred::decode(&raw); // may be None; must not panic
            }
        }
    }
}
