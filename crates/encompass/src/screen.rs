//! Screen programs: the stand-in for Screen COBOL.
//!
//! A screen program drives one terminal. The TCP interprets it: it asks
//! the program for its next action ([`ScreenProgram::next`]), feeding back
//! what happened ([`ScreenInput`]). The verbs match the paper's:
//! `BEGIN-TRANSACTION`, `SEND`, `END-TRANSACTION`, `ABORT-TRANSACTION`,
//! `RESTART-TRANSACTION`.
//!
//! Restart semantics: when a transaction fails (or the program requests
//! RESTART), the TCP backs the transaction out and calls
//! [`ScreenProgram::restart`], which must rewind the program to its
//! `BEGIN-TRANSACTION` point *with the same input data* — the TCP
//! checkpointed the data extracted from the input screens, so the restart
//! "may not require re-entering the input screens".

use crate::messages::{AppReply, AppRequest};
use encompass_sim::SimDuration;
use tmf::session::SessionOptions;

/// What the program wants the TCP to do next.
#[derive(Clone, Debug)]
pub enum ScreenAction {
    /// BEGIN-TRANSACTION, with the transaction's declared options
    /// (class and read mode). [`ScreenAction::begin`] builds the default
    /// read-write begin.
    Begin { options: SessionOptions },
    /// SEND a request to a server class (optionally on a specific node;
    /// `None` = the TCP's own node).
    Send {
        node: Option<encompass_sim::NodeId>,
        class: String,
        request: AppRequest,
    },
    /// END-TRANSACTION.
    End,
    /// ABORT-TRANSACTION (no automatic restart).
    Abort,
    /// RESTART-TRANSACTION (back out, then restart at BEGIN).
    Restart,
    /// Simulate operator think time / screen interaction.
    Think(SimDuration),
    /// The terminal's work is done.
    Finished,
}

impl ScreenAction {
    /// BEGIN-TRANSACTION with default options (a read-write transaction).
    pub fn begin() -> ScreenAction {
        ScreenAction::Begin {
            options: SessionOptions::default(),
        }
    }

    /// BEGIN-TRANSACTION for a read-only transaction (snapshot reads).
    pub fn begin_read_only() -> ScreenAction {
        ScreenAction::Begin {
            options: SessionOptions::new().read_only(),
        }
    }
}

/// What just happened, fed to the program to get its next action.
#[derive(Debug)]
pub enum ScreenInput<'a> {
    /// First call, and after Think expires.
    Go,
    /// BEGIN completed; the terminal is in transaction mode.
    Began,
    /// A SEND completed with this reply.
    Reply(&'a AppReply),
    /// END completed: the updates are permanent.
    Committed,
    /// The transaction was backed out (voluntary abort, restart, or system
    /// abort). If the TCP is going to auto-restart, it calls `restart()`
    /// instead of delivering this.
    Aborted,
    /// A SEND failed (server class unreachable / timed out). The TCP will
    /// normally restart the transaction; delivered only past the restart
    /// limit.
    SendFailed,
}

/// One terminal's program.
pub trait ScreenProgram: 'static {
    /// Decide the next action.
    fn next(&mut self, input: ScreenInput<'_>) -> ScreenAction;

    /// Rewind to the BEGIN-TRANSACTION point with the same input data
    /// (called on RESTART-TRANSACTION and on automatic restart).
    fn restart(&mut self);

    /// After a TCP takeover the backup's program instances are fresh; the
    /// TCP hands them the checkpointed number of already-committed
    /// transactions so completed work is not re-entered. Default: no-op
    /// (programs that do not loop need nothing).
    fn set_progress(&mut self, _committed: u64) {}
}

/// A fixed linear script (useful for tests): actions are taken in order;
/// `restart` rewinds to the most recent `Begin`.
pub struct ScriptProgram {
    steps: Vec<ScreenAction>,
    next: usize,
    begin_at: usize,
}

impl ScriptProgram {
    pub fn new(steps: Vec<ScreenAction>) -> ScriptProgram {
        ScriptProgram {
            steps,
            next: 0,
            begin_at: 0,
        }
    }
}

impl ScreenProgram for ScriptProgram {
    fn next(&mut self, _input: ScreenInput<'_>) -> ScreenAction {
        if self.next >= self.steps.len() {
            return ScreenAction::Finished;
        }
        let action = self.steps[self.next].clone();
        if matches!(action, ScreenAction::Begin { .. }) {
            self.begin_at = self.next;
        }
        self.next += 1;
        action
    }

    fn restart(&mut self) {
        self.next = self.begin_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_runs_in_order_and_finishes() {
        let mut p = ScriptProgram::new(vec![ScreenAction::begin(), ScreenAction::End]);
        assert!(matches!(p.next(ScreenInput::Go), ScreenAction::Begin { .. }));
        assert!(matches!(p.next(ScreenInput::Began), ScreenAction::End));
        assert!(matches!(p.next(ScreenInput::Committed), ScreenAction::Finished));
        assert!(matches!(p.next(ScreenInput::Go), ScreenAction::Finished));
    }

    #[test]
    fn restart_rewinds_to_last_begin() {
        let mut p = ScriptProgram::new(vec![
            ScreenAction::Think(SimDuration::from_millis(1)),
            ScreenAction::begin(),
            ScreenAction::End,
        ]);
        let _ = p.next(ScreenInput::Go); // think
        let _ = p.next(ScreenInput::Go); // begin
        let _ = p.next(ScreenInput::Began); // end
        p.restart();
        assert!(
            matches!(p.next(ScreenInput::Go), ScreenAction::Begin { .. }),
            "restart resumes at BEGIN, not at the think step"
        );
    }
}
