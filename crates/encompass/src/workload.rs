//! Workload generators: a debit-credit / order-entry style bank
//! application (the canonical online-transaction-processing load of the
//! era, and the shape of workload the paper's Figure 2 configuration
//! serves).
//!
//! * [`BankServer`] — the server class: `debit` (read-lock the account,
//!   update its balance, append a history record), `query` (browse read).
//! * [`BankProgram`] — the screen program: a loop of
//!   `BEGIN-TRANSACTION` → `SEND debit` → `END-TRANSACTION` with think
//!   time, over a configurable account population with an optional hot
//!   set (for lock-contention experiments).
//! * [`preload_accounts`] — bulk-load the account file straight onto the
//!   volume media (experiment setup, bypassing TMF on purpose).

use crate::messages::{AppReply, AppRequest};
use crate::screen::{ScreenAction, ScreenInput, ScreenProgram};
use crate::server::{DbOp, ServerLogic, ServerStep};
use bytes::Bytes;
use encompass_sim::{NodeId, SimDuration, World};
use encompass_storage::discprocess::{DiscError, DiscReply};
use encompass_storage::media::{media_key, VolumeMedia};
use encompass_storage::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Account key formatting shared by generator and server.
pub fn account_key(i: u64) -> Bytes {
    Bytes::from(format!("acct{i:08}"))
}

fn balance_of(v: &Bytes) -> i64 {
    std::str::from_utf8(v)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

fn balance_bytes(b: i64) -> Bytes {
    Bytes::from(format!("{b}"))
}

// ----------------------------------------------------------------------
// Server side
// ----------------------------------------------------------------------

/// The bank server class. Context-free; a fresh instance handles each
/// request.
#[derive(Default)]
pub struct BankServer {
    step: u32,
    account: Bytes,
    amount: i64,
    history_file: Option<String>,
}

impl BankServer {
    /// `history_file`: if set, every debit appends an audit-style history
    /// record (entry-sequenced).
    pub fn new(history_file: Option<String>) -> BankServer {
        BankServer {
            history_file,
            ..BankServer::default()
        }
    }
}

impl ServerLogic for BankServer {
    fn on_request(&mut self, req: &AppRequest) -> ServerStep {
        match req.op.as_str() {
            "debit" => {
                self.account = req.param(0);
                self.amount = balance_of(&req.param(1));
                self.step = 1;
                ServerStep::Db(DbOp::ReadLock {
                    file: "accounts".into(),
                    key: self.account.clone(),
                })
            }
            "query" => {
                self.step = 100;
                ServerStep::Db(DbOp::Read {
                    file: "accounts".into(),
                    key: req.param(0),
                })
            }
            _ => ServerStep::Reply(AppReply::error()),
        }
    }

    fn on_db(&mut self, db: &DiscReply) -> ServerStep {
        match (self.step, db) {
            // debit: got the locked balance → update it
            (1, DiscReply::Value(Some(v))) => {
                let new_balance = balance_of(v) - self.amount;
                self.step = 2;
                ServerStep::Db(DbOp::Update {
                    file: "accounts".into(),
                    key: self.account.clone(),
                    value: balance_bytes(new_balance),
                })
            }
            (1, DiscReply::Value(None)) => ServerStep::Reply(AppReply::error()),
            // deadlock timeout: ask the requester to RESTART-TRANSACTION
            (_, DiscReply::Err(DiscError::LockTimeout)) => {
                ServerStep::Reply(AppReply::restart())
            }
            // the snapshot fence aged out of the volume's before-image
            // ring: restart pins a fresh fence
            (_, DiscReply::Err(DiscError::SnapshotTooOld)) => {
                ServerStep::Reply(AppReply::restart())
            }
            // debit: balance updated → optional history append
            (2, DiscReply::Ok) => match &self.history_file {
                Some(h) => {
                    self.step = 3;
                    let mut rec = self.account.to_vec();
                    rec.extend_from_slice(b":");
                    rec.extend_from_slice(format!("{}", self.amount).as_bytes());
                    ServerStep::Db(DbOp::InsertEntry {
                        file: h.clone(),
                        value: Bytes::from(rec),
                    })
                }
                None => ServerStep::Reply(AppReply::ok(vec![])),
            },
            (3, DiscReply::EntryNumber(_)) => ServerStep::Reply(AppReply::ok(vec![])),
            // query
            (100, DiscReply::Value(v)) => {
                ServerStep::Reply(AppReply::ok(v.iter().cloned().collect()))
            }
            _ => ServerStep::Reply(AppReply::error()),
        }
    }
}

// ----------------------------------------------------------------------
// Terminal side
// ----------------------------------------------------------------------

/// Workload knobs for one terminal.
#[derive(Clone, Debug)]
pub struct BankWorkload {
    /// Accounts in the file.
    pub accounts: u64,
    /// Probability of touching the hot set.
    pub hot_fraction: f64,
    /// Size of the hot set (first keys).
    pub hot_set: u64,
    /// Transactions to run (`u64::MAX` ≈ run forever).
    pub transactions: u64,
    /// Operator think time between transactions.
    pub think: SimDuration,
    /// Server class to SEND to, and the node it runs on (`None` = local).
    pub server_class: String,
    pub server_node: Option<NodeId>,
    /// Run read-only query transactions (BEGIN read-only → SEND `query` →
    /// END) instead of debits. Readers commit without forcing any trail.
    pub read_only: bool,
}

impl Default for BankWorkload {
    fn default() -> Self {
        BankWorkload {
            accounts: 1000,
            hot_fraction: 0.0,
            hot_set: 10,
            transactions: 100,
            think: SimDuration::from_millis(10),
            server_class: "bank".into(),
            server_node: None,
            read_only: false,
        }
    }
}

/// The screen program: think → BEGIN → SEND debit → END → repeat.
pub struct BankProgram {
    cfg: BankWorkload,
    rng: StdRng,
    done: u64,
    /// The input data of the current logical transaction (checkpoint-
    /// equivalent: a restart reuses it rather than re-entering screens).
    current: Option<(u64, i64)>,
    phase: u8, // 0 = think/begin, 1 = sent, 2 = ending
}

impl BankProgram {
    pub fn new(cfg: BankWorkload, seed: u64) -> BankProgram {
        BankProgram {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            done: 0,
            current: None,
            phase: 0,
        }
    }

    fn pick_account(&mut self) -> u64 {
        if self.cfg.hot_fraction > 0.0 && self.rng.random::<f64>() < self.cfg.hot_fraction {
            self.rng.random_range(0..self.cfg.hot_set.max(1))
        } else {
            self.rng.random_range(0..self.cfg.accounts.max(1))
        }
    }
}

impl ScreenProgram for BankProgram {
    fn next(&mut self, input: ScreenInput<'_>) -> ScreenAction {
        match input {
            ScreenInput::Go => {
                if self.done >= self.cfg.transactions {
                    return ScreenAction::Finished;
                }
                if self.current.is_none() {
                    let acct = self.pick_account();
                    let amount = self.rng.random_range(1..100);
                    self.current = Some((acct, amount));
                }
                self.phase = 0;
                if self.cfg.read_only {
                    ScreenAction::begin_read_only()
                } else {
                    ScreenAction::begin()
                }
            }
            ScreenInput::Began => {
                let (acct, amount) = self.current.expect("input data present");
                self.phase = 1;
                let request = if self.cfg.read_only {
                    AppRequest::new("query", vec![account_key(acct)])
                } else {
                    AppRequest::new("debit", vec![account_key(acct), balance_bytes(amount)])
                };
                ScreenAction::Send {
                    node: self.cfg.server_node,
                    class: self.cfg.server_class.clone(),
                    request,
                }
            }
            ScreenInput::Reply(r) => {
                if r.restart {
                    return ScreenAction::Restart;
                }
                if !r.ok {
                    return ScreenAction::Abort;
                }
                self.phase = 2;
                ScreenAction::End
            }
            ScreenInput::Committed => {
                self.done += 1;
                self.current = None;
                self.phase = 0;
                ScreenAction::Think(self.cfg.think)
            }
            ScreenInput::Aborted | ScreenInput::SendFailed => {
                // past the restart limit (or voluntary): drop this
                // transaction's input and move on
                self.current = None;
                self.phase = 0;
                ScreenAction::Think(self.cfg.think)
            }
        }
    }

    fn restart(&mut self) {
        // keep `current`: the checkpointed screen input is reused
        self.phase = 0;
    }

    fn set_progress(&mut self, committed: u64) {
        // resume after a TCP takeover: completed transactions stay done
        self.done = self.done.max(committed);
    }
}

// ----------------------------------------------------------------------
// Setup helpers
// ----------------------------------------------------------------------

/// Bulk-load `count` account records (balance `init`) directly onto the
/// media of the volumes holding `file`. Setup-only: bypasses TMF.
pub fn preload_accounts(world: &mut World, catalog: &Catalog, file: &str, count: u64, init: i64) {
    let def = catalog.get(file).expect("file in catalog").clone();
    for i in 0..count {
        let key = account_key(i);
        let vol = def.volume_for(&key).clone();
        let media_id = media_key(vol.node, &vol.volume);
        let vname = vol.volume.clone();
        let media = world
            .stable_mut()
            .get_or_create::<VolumeMedia, _>(&media_id, move || VolumeMedia::new(&vname));
        media
            .ensure_file(file, def.organization)
            .apply(&key, Some(balance_bytes(init)));
    }
}

/// Sum every account balance across partitions (consistency assertions in
/// tests: debits move money, the workload's invariant is
/// `initial_total - committed_debits == final_total`).
pub fn total_balance(world: &mut World, catalog: &Catalog, file: &str) -> i64 {
    let def = catalog.get(file).expect("file in catalog").clone();
    let mut total = 0;
    let mut seen_volumes = Vec::new();
    for p in &def.partitions {
        if seen_volumes.contains(&p.volume) {
            continue;
        }
        seen_volumes.push(p.volume.clone());
        let media_id = media_key(p.volume.node, &p.volume.volume);
        if let Some(media) = world.stable().get::<VolumeMedia>(&media_id) {
            if let Some(img) = media.file(file) {
                for (_, v) in img.scan(&[], None, usize::MAX) {
                    total += balance_of(&v);
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_parse_and_format() {
        assert_eq!(balance_of(&balance_bytes(-42)), -42);
        assert_eq!(balance_of(&Bytes::from_static(b"junk")), 0);
        assert_eq!(account_key(7), Bytes::from_static(b"acct00000007"));
    }

    #[test]
    fn program_emits_canonical_sequence() {
        let mut p = BankProgram::new(
            BankWorkload {
                transactions: 1,
                ..BankWorkload::default()
            },
            7,
        );
        assert!(matches!(p.next(ScreenInput::Go), ScreenAction::Begin { .. }));
        let send = p.next(ScreenInput::Began);
        match &send {
            ScreenAction::Send { class, request, .. } => {
                assert_eq!(class, "bank");
                assert_eq!(request.op, "debit");
            }
            other => panic!("expected send, got {other:?}"),
        }
        let ok = AppReply::ok(vec![]);
        assert!(matches!(p.next(ScreenInput::Reply(&ok)), ScreenAction::End));
        assert!(matches!(
            p.next(ScreenInput::Committed),
            ScreenAction::Think(_)
        ));
        assert!(matches!(p.next(ScreenInput::Go), ScreenAction::Finished));
    }

    #[test]
    fn restart_reuses_input_data() {
        let mut p = BankProgram::new(BankWorkload::default(), 3);
        let _ = p.next(ScreenInput::Go);
        let first = match p.next(ScreenInput::Began) {
            ScreenAction::Send { request, .. } => request,
            other => panic!("{other:?}"),
        };
        p.restart();
        let _ = p.next(ScreenInput::Go); // Begin again
        let second = match p.next(ScreenInput::Began) {
            ScreenAction::Send { request, .. } => request,
            other => panic!("{other:?}"),
        };
        assert_eq!(first, second, "same account and amount after restart");
    }

    #[test]
    fn restart_reply_maps_to_restart_action() {
        let mut p = BankProgram::new(BankWorkload::default(), 3);
        let _ = p.next(ScreenInput::Go);
        let _ = p.next(ScreenInput::Began);
        let r = AppReply::restart();
        assert!(matches!(
            p.next(ScreenInput::Reply(&r)),
            ScreenAction::Restart
        ));
    }

    #[test]
    fn server_logic_debit_sequence() {
        let mut s = BankServer::new(Some("history".into()));
        let req = AppRequest::new("debit", vec![account_key(1), balance_bytes(10)]);
        let step = s.on_request(&req);
        assert!(matches!(step, ServerStep::Db(DbOp::ReadLock { .. })));
        let step = s.on_db(&DiscReply::Value(Some(balance_bytes(100))));
        match step {
            ServerStep::Db(DbOp::Update { value, .. }) => {
                assert_eq!(balance_of(&value), 90);
            }
            _ => panic!("expected update"),
        }
        let step = s.on_db(&DiscReply::Ok);
        assert!(matches!(step, ServerStep::Db(DbOp::InsertEntry { .. })));
        let step = s.on_db(&DiscReply::EntryNumber(0));
        match step {
            ServerStep::Reply(r) => assert!(r.ok),
            _ => panic!("expected reply"),
        }
    }

    #[test]
    fn server_logic_maps_lock_timeout_to_restart() {
        let mut s = BankServer::new(None);
        let req = AppRequest::new("debit", vec![account_key(1), balance_bytes(10)]);
        let _ = s.on_request(&req);
        let step = s.on_db(&DiscReply::Err(DiscError::LockTimeout));
        match step {
            ServerStep::Reply(r) => assert!(r.restart),
            _ => panic!("expected restart reply"),
        }
    }
}
