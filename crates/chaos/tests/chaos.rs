//! The chaos harness's own tests: a fault-free baseline, determinism of
//! the seed → schedule → run pipeline, and a small smoke sweep. The full
//! sweep (hundreds of seeds) runs from the CLI: `cargo run -p
//! encompass-chaos --release -- --sweep N`.

use encompass_chaos::{run_schedule, run_seed, Schedule};
use encompass_sim::SimTime;

/// With every fault stripped from the timeline the oracles must hold
/// trivially — if this fails, the harness itself (not TMF) is broken.
#[test]
fn no_fault_baseline_converges() {
    let mut s = Schedule::generate(1);
    s.events.clear();
    s.heal_at = SimTime::from_micros(200_000);
    let r = run_schedule(&s);
    assert!(r.ok(), "violations: {:#?}", r.violations);
    assert!(r.commits > 0, "the workload actually ran");
}

/// Same seed, same hash: the property that turns a failing sweep entry
/// into a one-line repro.
#[test]
fn same_seed_replays_to_the_same_trace_hash() {
    let a = run_seed(3);
    let b = run_seed(3);
    assert_eq!(a.trace_hash, b.trace_hash, "seed 3 must be deterministic");
    assert!(a.ok(), "violations: {:#?}", a.violations);
}

/// Different seeds genuinely explore different schedules (shapes and
/// fault timelines differ, so the traces must too).
#[test]
fn different_seeds_produce_different_runs() {
    let a = run_seed(1);
    let b = run_seed(2);
    assert_ne!(a.trace_hash, b.trace_hash);
    assert_ne!(
        Schedule::generate(1).describe(),
        Schedule::generate(2).describe()
    );
}

/// A small sweep as a test (the CI smoke runs 25 via the binary; this
/// keeps `cargo test` self-contained). Every invariant must hold on
/// every schedule.
#[test]
fn smoke_sweep_holds_every_invariant() {
    for seed in 0..8 {
        let r = run_seed(seed);
        assert!(
            r.ok(),
            "seed {seed} violated invariants (repro: cargo run -p \
             encompass-chaos -- --seed {seed}):\n{:#?}\nschedule:\n{}",
            r.violations,
            r.schedule_desc
        );
    }
}
