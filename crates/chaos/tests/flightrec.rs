//! Flight-recorder properties over chaos schedules.
//!
//! The recorder is a pure side channel: it never touches the trace hash,
//! the RNG, the metrics, or the run queue, so a recorded run replays the
//! exact execution of an unrecorded one — that is what makes "re-run the
//! failing seed with the recorder on" a sound post-mortem workflow. The
//! first test pins that equivalence; the second checks the records are
//! complete enough to be worth reading.

use encompass_chaos::{run_schedule, run_schedule_with, Schedule};
use encompass_sim::FlightCause;

/// Recorder on vs off: bit-identical trace hashes over full chaos
/// schedules (faults, takeovers, backouts and all).
#[test]
fn recorder_is_trace_hash_neutral() {
    for seed in [5, 11] {
        let schedule = Schedule::generate(seed);
        let off = run_schedule(&schedule);
        let on = run_schedule_with(&schedule, true);
        assert_eq!(
            off.trace_hash, on.trace_hash,
            "seed {seed}: enabling the flight recorder changed the execution"
        );
        assert!(off.flight.is_none());
        let flight = on.flight.expect("recorded run exports flight data");
        assert!(
            !flight.timelines_by_txn.is_empty(),
            "seed {seed}: a full run must leave flight records"
        );
        assert!(flight.json.contains("\"transactions\""));
    }
}

/// Every transaction the Monitor Audit Trails record as committed has a
/// complete flight timeline: begin, then a lock grant, then the forced
/// monitor record (the commit point), then commit — in that order.
#[test]
fn committed_transactions_have_complete_timelines() {
    let schedule = Schedule::generate(4);
    let report = run_schedule_with(&schedule, true);
    assert!(report.ok(), "violations: {:#?}", report.violations);
    let flight = report.flight.expect("recorded run");
    assert!(!flight.committed.is_empty(), "the workload actually ran");
    for t in &flight.committed {
        let events = flight
            .timelines_by_txn
            .get(t)
            .unwrap_or_else(|| panic!("{t:?} committed but left no flight timeline"));
        let first = |pred: fn(FlightCause) -> bool, what: &str| -> usize {
            events
                .iter()
                .position(|e| pred(e.cause))
                .unwrap_or_else(|| panic!("{t:?}: no {what} event in its timeline"))
        };
        let begin = first(|c| matches!(c, FlightCause::Begin), "Begin");
        let lock = first(
            |c| matches!(c, FlightCause::LockGranted { .. } | FlightCause::LockQueued { .. }),
            "lock",
        );
        let force = first(|c| matches!(c, FlightCause::MonitorForced { .. }), "monitor force");
        let commit = first(|c| matches!(c, FlightCause::Committed), "Committed");
        assert!(
            begin < lock && lock < force && force < commit,
            "{t:?}: out-of-order timeline (begin {begin}, lock {lock}, \
             force {force}, commit {commit})"
        );
    }
}
