//! ONLINEDUMP properties over chaos schedules.
//!
//! Running a schedule with its online-dump plan enabled adds a whole
//! subsystem to the run — DUMPPROCESS copies, forced dump markers, the
//! TMP's trail-capacity purge pass — and the convergence oracle switches
//! to recovering from the *fuzzy* archive the dump produced. These tests
//! pin that (a) the flight recorder stays a pure side channel in dump
//! mode too, (b) the dump lifecycle actually leaves flight records, and
//! (c) the fuzzy-dump oracle holds: rollforward from the last registered
//! dump plus the surviving (possibly purged) trails reproduces the live
//! committed state.

use encompass_chaos::{run_schedule, run_schedule_with, Schedule};

fn dump_schedule(seed: u64) -> Schedule {
    let mut schedule = Schedule::generate(seed);
    schedule.dumps_enabled = true;
    schedule
}

/// Recorder on vs off with dumps and purging running: bit-identical
/// trace hashes, and the dump lifecycle shows up in the export.
#[test]
fn recorder_is_trace_hash_neutral_with_dumps() {
    for seed in [5, 11] {
        let schedule = dump_schedule(seed);
        let off = run_schedule(&schedule);
        let on = run_schedule_with(&schedule, true);
        assert_eq!(
            off.trace_hash, on.trace_hash,
            "seed {seed}: enabling the flight recorder changed a dump-mode run"
        );
        assert!(off.ok(), "seed {seed} violations: {:#?}", off.violations);
        let flight = on.flight.expect("recorded run exports flight data");
        assert!(
            flight.json.contains("\"dump_begin\"") && flight.json.contains("\"dump_end\""),
            "seed {seed}: dump lifecycle left no flight records"
        );
    }
}

/// The fuzzy-dump convergence oracle over a few full schedules: dumps
/// complete mid-chaos, and recovery from the registered archive (not the
/// pre-run generation-0 snapshot) reproduces the live volumes.
#[test]
fn fuzzy_dump_rollforward_converges() {
    let mut dumps_completed = 0;
    for seed in [0, 4, 7] {
        let report = run_schedule(&dump_schedule(seed));
        assert!(report.ok(), "seed {seed} violations: {:#?}", report.violations);
        dumps_completed += report.dumps_completed;
    }
    assert!(
        dumps_completed > 0,
        "no scheduled dump completed — the oracle never saw a fuzzy archive"
    );
}
