//! Deterministic chaos-sweep harness for the ENCOMPASS/TMF reproduction.
//!
//! The paper's central claim is not throughput but *survival*: "a
//! transaction is an all-or-nothing unit of work" under processor, bus,
//! link, and process failures. This crate turns that claim into a
//! mechanically checkable property over randomized fault timelines:
//!
//! * [`Schedule::generate`] expands a seed into a cluster shape, a bank
//!   workload, and a fault/heal timeline (CPU kills aimed at service
//!   primaries, bus failures, partitions around the commit point, process
//!   kills during backout);
//! * [`run_schedule`] plays the timeline against the full application,
//!   heals everything, quiesces, and then interrogates the system with
//!   the oracles described in [`runner`];
//! * the simulator is deterministic, so a failing seed is a one-line
//!   repro: `cargo run -p encompass-chaos -- --seed N`.
//!
//! The sweep binary (`src/main.rs`) runs many seeds and fails loudly on
//! the first invariant violation, printing the offending schedule.

pub mod oracles;
pub mod probe;
pub mod runner;
pub mod schedule;
pub mod soak;

pub use runner::{run_schedule, run_schedule_with, run_seed, FlightDump, RunReport};
pub use schedule::{ChaosAction, Schedule, ScheduledDump, ScheduledEvent, SoakEpoch, SoakPlan};
pub use soak::{run_soak_schedule, run_soak_schedule_with, run_soak_seed, SoakReport};
