//! Post-run introspection probes.
//!
//! After the heal-everything barrier and the quiesce window, the runner
//! spawns one [`TmpProbe`] per node to ask its `$TMP` for the transids
//! still in the transaction table (`TmpMsg::ListOpen`), and uses the
//! storage test kit to ask every DISCPROCESS for a lock audit
//! (`DiscRequest::LockAudit`). Both answers feed the leak oracles: after
//! quiesce + heal there must be no open transactions, no held locks, and
//! no parked lock waiters anywhere.

use encompass_sim::{Ctx, NodeId, Payload, Pid, Process, SimDuration, TimerId};
use encompass_storage::audit_api::{AuditMsg, AuditReply, AuditStateReport};
use encompass_storage::types::Transid;
use guardian::{Rpc, Target, TimerOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use tmf::tmp::{TmpMsg, TmpReply, TmpStateReport};

/// Shared result slot: `None` until the probe hears back.
pub type OpenTxns = Rc<RefCell<Option<Vec<Transid>>>>;

/// One-shot client that asks a node's `$TMP` for its open transactions.
pub struct TmpProbe {
    node: NodeId,
    rpc: Rpc<TmpMsg, TmpReply>,
    out: OpenTxns,
}

impl TmpProbe {
    pub fn spawn(world: &mut encompass_sim::World, node: NodeId) -> OpenTxns {
        let out: OpenTxns = Rc::new(RefCell::new(None));
        world.spawn(
            node,
            0,
            Box::new(TmpProbe {
                node,
                rpc: Rpc::new(11),
                out: out.clone(),
            }),
        );
        out
    }
}

impl Process for TmpProbe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // persistent: the TMP pair may still be mid-takeover right after
        // the heal; keep retrying until it answers
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.node, "$TMP".into()),
            TmpMsg::ListOpen,
            SimDuration::from_millis(100),
            0,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            if let TmpReply::Open { transids } = c.body {
                *self.out.borrow_mut() = Some(transids);
            }
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            ctx.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "chaos-probe"
    }
}

/// Shared result slot for a [`TmpStateProbe`].
pub type TmpState = Rc<RefCell<Option<TmpStateReport>>>;

/// One-shot client that asks a node's `$TMP` for its in-memory state
/// sizes (`TmpMsg::StateAudit`). Used by the soak tier's bounded-state
/// oracle at epoch boundaries.
pub struct TmpStateProbe {
    node: NodeId,
    rpc: Rpc<TmpMsg, TmpReply>,
    out: TmpState,
}

impl TmpStateProbe {
    pub fn spawn(world: &mut encompass_sim::World, node: NodeId) -> TmpState {
        let out: TmpState = Rc::new(RefCell::new(None));
        world.spawn(
            node,
            0,
            Box::new(TmpStateProbe {
                node,
                rpc: Rpc::new(12),
                out: out.clone(),
            }),
        );
        out
    }
}

impl Process for TmpStateProbe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.node, "$TMP".into()),
            TmpMsg::StateAudit,
            SimDuration::from_millis(100),
            0,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            if let TmpReply::State(report) = c.body {
                *self.out.borrow_mut() = Some(report);
            }
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            ctx.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "chaos-probe"
    }
}

/// Shared result slot for an [`AuditStateProbe`].
pub type AuditState = Rc<RefCell<Option<AuditStateReport>>>;

/// One-shot client that asks a node's AUDITPROCESS for its in-memory
/// state sizes (`AuditMsg::StateAudit`).
pub struct AuditStateProbe {
    node: NodeId,
    service: String,
    rpc: Rpc<AuditMsg, AuditReply>,
    out: AuditState,
}

impl AuditStateProbe {
    pub fn spawn(world: &mut encompass_sim::World, node: NodeId, service: &str) -> AuditState {
        let out: AuditState = Rc::new(RefCell::new(None));
        world.spawn(
            node,
            0,
            Box::new(AuditStateProbe {
                node,
                service: service.to_string(),
                rpc: Rpc::new(13),
                out: out.clone(),
            }),
        );
        out
    }
}

impl Process for AuditStateProbe {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.node, self.service.clone()),
            AuditMsg::StateAudit,
            SimDuration::from_millis(100),
            0,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            if let AuditReply::State(report) = c.body {
                *self.out.borrow_mut() = Some(report);
            }
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            ctx.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "chaos-probe"
    }
}
