//! The `--soak` tier: simulated hours per seed.
//!
//! A soak run stretches one seed over at least one simulated hour,
//! structured as repeating fault *epochs*. Each epoch delivers one
//! CPU-kill/takeover wave, one rolling ONLINEDUMP generation on a drawn
//! node, and a restore; throughout, long-lived writer transactions (held
//! open across epochs) and long-lived snapshot readers (fences pinned
//! across fault waves, restarted on `SnapshotTooOld`) run alongside the
//! normal bank terminals. A quarter of seeds additionally run one
//! full-disaster drill: both mirrored drives of one volume fail
//! mid-traffic, and the volume is recovered with ROLLFORWARD from its
//! latest fuzzy archive while the survivors keep serving.
//!
//! On top of the short-run oracles (atomicity, conservation, leak
//! freedom, convergence), the soak tier evaluates two families that only
//! make sense over a long horizon — see [`crate::oracles`]:
//!
//! * **liveness** — every begun transaction reaches a terminal state,
//!   monitor/audit boxcars and lock wait queues drain, purge floors
//!   advance, and every long-lived client finishes;
//! * **bounded state** — per-transid maps, snapshot-undo rings, reply
//!   caches, and stable-storage archive sets stay within their caps at
//!   every epoch boundary (a leak shows up as monotonic growth long
//!   before it hurts a short run).

use crate::oracles::{
    bounded_violations, liveness_violations, ClientStatus, LivenessObservation, PurgeFloorTrack,
    StateCaps, StateKind, StateObservation,
};
use crate::probe::{AuditStateProbe, TmpProbe, TmpStateProbe};
use crate::runner::{
    apply, check_atomicity, check_conservation, check_convergence, heal_everything,
    snapshot_archives, AuditFlushClient, DumpClient, FlightDump, RunReport, ACCOUNTS,
};
use crate::schedule::{ChaosAction, Schedule};
use bytes::Bytes;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass::workload::account_key;
use encompass_audit::rollforward::rollforward_volume;
use encompass_sim::{
    format_timeline, CpuId, Ctx, Fault, NodeId, Payload, Pid, Process, SimConfig, SimDuration,
    SimTime, TimerId, World,
};
use encompass_storage::discprocess::{DiscError, DiscReply, DiscRequest};
use encompass_storage::media::{
    archive_key, dump_registry_key, media_key, ArchiveImage, DumpRegistry, VolumeMedia,
};
use encompass_storage::types::{Transid, VolumeRef};
use encompass_storage::Catalog;
use guardian::{Rpc, Target};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use tmf::session::{DbOp, SessionEvent, SessionOptions, TmfSession};
use tmf::state::AbortReason;

/// Snapshot-undo ring capacity while soaking: small enough that a
/// long-lived reader's fence falls off the ring within an epoch or two,
/// exercising the `SnapshotTooOld` restart path.
const SOAK_SNAPSHOT_UNDO: usize = 64;
/// Archive generations retained per volume while soaking.
const SOAK_ARCHIVE_RETAIN: u64 = 2;

/// What one soak run produced: the short-run report plus soak-specific
/// tallies.
#[derive(Clone, Debug)]
pub struct SoakReport {
    pub run: RunReport,
    /// Soak epochs played.
    pub epochs: usize,
    /// Read-only transactions restarted on `SnapshotTooOld`.
    pub reader_restarts: u64,
    /// Long-hold writer commits / aborts.
    pub writer_commits: u64,
    pub writer_aborts: u64,
    /// Soak clients respawned after dying with their processor.
    pub client_respawns: u64,
    /// `Some(description)` when the full-disaster drill ran.
    pub drill: Option<String>,
}

impl SoakReport {
    pub fn ok(&self) -> bool {
        self.run.ok()
    }

    pub fn summary_line(&self) -> String {
        format!(
            "seed {:>6}  hash {:016x}  commits {:>5}  aborts {:>4}  t_end {:>8}ms  \
             epochs {}  restarts {:>2}  holds {:>3}  {}{}",
            self.run.seed,
            self.run.trace_hash,
            self.run.commits,
            self.run.aborts,
            self.run.end_ms,
            self.epochs,
            self.reader_restarts,
            self.writer_commits,
            if self.drill.is_some() { "drill " } else { "" },
            if self.ok() {
                "ok".to_string()
            } else {
                format!("FAIL ({})", self.run.violations.len())
            }
        )
    }
}

/// Generate the schedule for `seed` and soak it.
pub fn run_soak_seed(seed: u64) -> SoakReport {
    let mut schedule = Schedule::generate(seed);
    schedule.soak_enabled = true;
    run_soak_schedule(&schedule)
}

/// Run one soak schedule to completion and evaluate every oracle.
pub fn run_soak_schedule(schedule: &Schedule) -> SoakReport {
    run_soak_schedule_with(schedule, false)
}

/// [`run_soak_schedule`], optionally with the flight recorder on.
/// Recording is a pure side channel, so the trace hash is identical
/// either way and a failing seed replays the same execution recorded.
pub fn run_soak_schedule_with(schedule: &Schedule, flight_recorder: bool) -> SoakReport {
    let plan = &schedule.soak;
    let gap = plan.epoch_gap_us;
    let horizon = SimTime::from_micros(plan.epochs as u64 * gap);
    let tmf = tmf::facility::TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_micros(schedule.group_commit_window_us))
        .audit_partitions(schedule.audit_partitions.max(1))
        .trail_purge_interval(SimDuration::from_micros(plan.trail_purge_interval_us))
        .audit_rotate_every(schedule.audit_rotate_every)
        .archive_retain(SOAK_ARCHIVE_RETAIN)
        .snapshot_undo_capacity(SOAK_SNAPSHOT_UNDO)
        .build()
        .expect("soak schedule produced an invalid TMF config");
    let sim = if flight_recorder {
        SimConfig::default().flight_recording()
    } else {
        SimConfig::default()
    };
    // Terminals pace themselves over the horizon: cap the drawn think
    // time so each terminal's budget fits in ~60% of it, leaving the
    // run-out phase to absorb fault-induced restarts.
    let think_ms = plan
        .think_ms
        .min(horizon.as_millis() * 3 / 5 / plan.transactions_per_terminal.max(1));
    let mut app = launch_bank_app(BankAppParams {
        node_cpus: vec![schedule.cpus_per_node; schedule.nodes],
        volumes_per_node: schedule.volumes_per_node.max(1),
        accounts: ACCOUNTS,
        terminals_per_node: schedule.terminals_per_node,
        readonly_terminals_per_node: schedule.readonly_terminals_per_node,
        transactions_per_terminal: plan.transactions_per_terminal,
        think: SimDuration::from_millis(think_ms.max(1)),
        hot_fraction: schedule.hot_fraction,
        hot_set: 8,
        seed: schedule.seed,
        lock_wait: SimDuration::from_millis(300),
        sim,
        tmf,
        ..BankAppParams::default()
    });
    let volumes: Vec<VolumeRef> = app.catalog.all_volumes();
    snapshot_archives(&mut app.world, &volumes);

    // Partition-slot layout, mirroring the bank app: slot j covers
    // accounts [ACCOUNTS*j/slots, ...) on volume j%vpn of node j/vpn.
    let vpn = schedule.volumes_per_node.max(1);
    let slots: Vec<VolumeRef> = (0..schedule.nodes * vpn)
        .map(|j| {
            let name = if j % vpn == 0 {
                "$BANK".to_string()
            } else {
                format!("$BANK{}", j % vpn)
            };
            VolumeRef::new(NodeId((j / vpn) as u8), &name)
        })
        .collect();
    let drill: Option<(usize, usize)> = plan.disaster.map(|(e, s)| (e, s % slots.len()));
    let drill_slot = drill.map(|(_, s)| s);

    // Per-volume trail keys (a volume's images live on exactly one
    // partition of its node's trail) — needed by the drill rollforward
    // and the final convergence oracle.
    let trail_key_of: BTreeMap<(NodeId, String), String> = app
        .tmf
        .iter()
        .flat_map(|h| {
            let node = h.node;
            h.trail_key_of
                .iter()
                .map(move |(vol, key)| ((node, vol.clone()), key.clone()))
        })
        .collect();

    // ---- long-lived soak clients ------------------------------------
    // One long-hold writer and one long-lived snapshot reader per node.
    // Writers never touch the drill volume: a transaction spanning the
    // outage could have flushed-and-evicted images wiped by the drive
    // loss yet commit after the drill's rollforward, which live media
    // would then be missing — the end-of-run convergence oracle (which
    // rolls forward again, with the commit on the trail) covers that
    // data; the in-run drill intentionally only recovers what had
    // settled by its own rollforward point.
    let hold = SimDuration::from_micros(gap.saturating_mul(plan.writer_hold_epochs.max(1)));
    let mut clients: Vec<ClientHandle> = Vec::new();
    for (i, &node) in app.nodes.iter().enumerate() {
        let slot = writer_slot(i, vpn, slots.len(), drill_slot);
        clients.push(spawn_writer(
            &mut app.world,
            &app.catalog,
            node,
            slot,
            slots.len(),
            1,
            hold,
            horizon,
        ));
        clients.push(spawn_reader(
            &mut app.world,
            &app.catalog,
            node,
            1,
            SimDuration::from_millis(plan.reader_pause_ms),
            horizon,
        ));
    }

    // ---- the epoch loop ---------------------------------------------
    let mut bounded_obs: Vec<StateObservation> = Vec::new();
    let mut floors: BTreeMap<String, PurgeFloorTrack> = BTreeMap::new();
    let mut drill_desc: Option<String> = None;
    let mut respawns = 0u64;
    let max_generation = plan.epochs as u64 + 1;
    for e in 0..plan.epochs {
        let base = e as u64 * gap;
        let ep = &plan.plan[e];
        let drill_volume: Option<&VolumeRef> = drill
            .filter(|&(de, _)| de == e)
            .map(|(_, s)| &slots[s]);

        // kill wave at 15% — skipped when the drill owns this epoch's
        // node, so the lost volume's DISCPROCESS pair stays whole
        let kill_skipped = drill_volume.is_some_and(|v| v.node == ep.kill_node);
        if !kill_skipped {
            app.world
                .run_until(SimTime::from_micros(base + gap * 15 / 100));
            match &ep.kill_service {
                Some(svc) => apply(
                    &mut app.world,
                    &ChaosAction::KillServiceCpu {
                        node: ep.kill_node,
                        service: svc.clone(),
                    },
                ),
                None => {
                    if app.world.cpu_up(ep.kill_node, ep.kill_cpu) {
                        app.world.inject(Fault::KillCpu(ep.kill_node, ep.kill_cpu));
                    }
                }
            }
        }

        // disaster drill part 1 at 25%: both mirrored drives lost
        if let Some(v) = drill_volume {
            app.world
                .run_until(SimTime::from_micros(base + gap * 25 / 100));
            let key = media_key(v.node, &v.volume);
            if let Some(media) = app.world.stable_mut().get_mut::<VolumeMedia>(&key) {
                media.fail_drive(0);
                media.fail_drive(1);
            }
            app.world.metrics_mut().add("chaos.drill_losses", 1);
        }

        // rolling dump generation at 35% on the drawn node
        app.world
            .run_until(SimTime::from_micros(base + gap * 35 / 100));
        let cpu = (0..app.world.cpu_count(ep.dump_node))
            .find(|&c| app.world.cpu_up(ep.dump_node, CpuId(c)))
            .unwrap_or(0);
        for v in volumes.iter().filter(|v| v.node == ep.dump_node) {
            app.world.spawn(
                ep.dump_node,
                cpu,
                Box::new(DumpClient {
                    volume: v.clone(),
                    generation: e as u64 + 1,
                    rpc: Rpc::new(2),
                }),
            );
        }

        // restore wave at 55%
        if !kill_skipped {
            app.world
                .run_until(SimTime::from_micros(base + gap * 55 / 100));
            apply(
                &mut app.world,
                &ChaosAction::RestoreDownCpus { node: ep.kill_node },
            );
        }

        // disaster drill part 2 at 75%: revive the drives and recover
        // the volume with ROLLFORWARD from its registry archive while
        // the rest of the cluster keeps serving
        if let Some(v) = drill_volume {
            app.world
                .run_until(SimTime::from_micros(base + gap * 75 / 100));
            let key = media_key(v.node, &v.volume);
            if let Some(media) = app.world.stable_mut().get_mut::<VolumeMedia>(&key) {
                media.revive_drive(0);
                media.revive_drive(1);
            }
            let generation = app
                .world
                .stable()
                .get::<DumpRegistry>(&dump_registry_key(v))
                .map(|r| r.generation)
                .unwrap_or(0);
            let keys: Vec<String> = trail_key_of
                .get(&(v.node, v.volume.clone()))
                .map(|k| vec![k.clone()])
                .unwrap_or_default();
            let _ = rollforward_volume(&mut app.world, v, &keys, generation);
            app.world.metrics_mut().add("chaos.drill_recoveries", 1);
            drill_desc = Some(format!(
                "epoch {e}: {}.{} lost both drives mid-traffic, rolled forward from \
                 archive generation {generation}",
                v.node, v.volume
            ));
        }

        // epoch-boundary state probes (everything is healed by now)
        app.world
            .run_until(SimTime::from_micros(base + gap - 4_000_000));
        let probes = spawn_state_probes(&mut app.world, &app.nodes, &volumes);
        app.world
            .run_until(SimTime::from_micros(base + gap - 1_000_000));
        collect_state_probes(&probes, e, &mut bounded_obs);
        observe_stable_state(&app.world, &volumes, e, max_generation, &mut bounded_obs);
        track_purge_floors(&app.world, &volumes, &mut floors);

        app.world.run_until(SimTime::from_micros(base + gap));
        // respawn soak clients that died with their processor (a plain
        // process does not survive a CPU kill); the replacement gets a
        // fresh key generation so its inserts never collide
        for idx in 0..clients.len() {
            let c = &clients[idx];
            if c.finished.borrow().is_none() && !app.world.is_alive(c.pid) {
                *c.finished.borrow_mut() =
                    Some("died with its processor; respawned".to_string());
                respawns += 1;
                app.world.metrics_mut().add("chaos.soak_respawns", 1);
                let replacement = match c.kind {
                    ClientKind::Writer { slot } => spawn_writer(
                        &mut app.world,
                        &app.catalog,
                        c.node,
                        slot,
                        slots.len(),
                        c.generation + 1,
                        hold,
                        horizon,
                    ),
                    ClientKind::Reader => spawn_reader(
                        &mut app.world,
                        &app.catalog,
                        c.node,
                        c.generation + 1,
                        SimDuration::from_millis(plan.reader_pause_ms),
                        horizon,
                    ),
                };
                clients.push(replacement);
            }
        }
    }

    // ---- run out the workload, then drain ---------------------------
    heal_everything(&mut app.world, schedule);
    let mut violations = Vec::new();
    let total_terminals = (schedule.nodes
        * (schedule.terminals_per_node + schedule.readonly_terminals_per_node))
        as u64;
    let stall_deadline = horizon + SimDuration::from_secs(900);
    loop {
        let terminals_done =
            app.world.metrics().get("tcp.terminals_finished") >= total_terminals;
        let clients_done = clients
            .iter()
            .all(|c| c.finished.borrow().is_some() || !app.world.is_alive(c.pid));
        if (terminals_done && clients_done) || app.world.now() >= stall_deadline {
            break;
        }
        app.world.run_for(SimDuration::from_secs(2));
    }
    if app.world.metrics().get("tcp.terminals_finished") < total_terminals {
        violations.push(format!(
            "workload stalled: {}/{} terminals finished by t={}ms",
            app.world.metrics().get("tcp.terminals_finished"),
            total_terminals,
            app.world.now().as_millis()
        ));
    }
    // a client that died inside the final epoch has no boundary left to
    // respawn it; excuse it (its transactions are still covered by the
    // leak and atomicity oracles)
    for c in &clients {
        if c.finished.borrow().is_none() && !app.world.is_alive(c.pid) {
            *c.finished.borrow_mut() = Some("died in the final epoch".to_string());
        }
    }
    // safe-delivery tail: phase 2, abort notifications, backouts
    app.world.run_for(SimDuration::from_secs(5));
    // flush every AUDITPROCESS buffer to the trail media before the
    // convergence oracle (and the liveness probes) read it
    for &node in &app.nodes {
        app.world
            .spawn(node, 0, Box::new(AuditFlushClient::new(node)));
    }
    app.world.run_for(SimDuration::from_secs(2));

    // ---- final probes -----------------------------------------------
    let open_probes: Vec<_> = app
        .nodes
        .iter()
        .map(|&n| (n, TmpProbe::spawn(&mut app.world, n)))
        .collect();
    let final_probes = spawn_state_probes(&mut app.world, &app.nodes, &volumes);
    let lock_probes: Vec<_> = volumes
        .iter()
        .map(|v| {
            let replies = encompass_storage::testkit::run_script(
                &mut app.world,
                v.node,
                0,
                Target::Named(v.node, v.volume.clone()),
                vec![DiscRequest::LockAudit],
            );
            (v.clone(), replies)
        })
        .collect();
    app.world.run_for(SimDuration::from_secs(3));
    collect_state_probes(&final_probes, usize::MAX, &mut bounded_obs);
    observe_stable_state(
        &app.world,
        &volumes,
        usize::MAX,
        max_generation,
        &mut bounded_obs,
    );
    track_purge_floors(&app.world, &volumes, &mut floors);

    let trace_hash = app.world.trace_hash();
    let commits = app.world.metrics().get("tmf.commits");
    let aborts = app.world.metrics().get("tmf.aborts");
    let takeover_commit_completions =
        app.world.metrics().get("tmf.takeover_commit_completions");
    let dumps_completed = app.world.metrics().get("dump.completed");
    let purged_trail_files = app.world.metrics().get("tmf.purged_trail_files");
    let end_ms = app.world.now().as_millis();

    // ---- oracles ----------------------------------------------------
    let mut implicated: Vec<Transid> = Vec::new();
    check_atomicity(&mut app.world, &app.nodes, &mut violations, &mut implicated);
    check_conservation(&mut app.world, &app.catalog, &app.nodes, &mut violations);

    // liveness observations from the final probes
    let mut live_obs: Vec<LivenessObservation> = Vec::new();
    for (node, slot) in &open_probes {
        let mut o = LivenessObservation {
            process: format!("$TMP@{node}"),
            ..Default::default()
        };
        match &*slot.borrow() {
            None => o.unreachable = true,
            Some(open) => {
                implicated.extend(open.iter().copied());
                o.open_transids = open.iter().map(|t| t.to_string()).collect();
            }
        }
        if let Some(r) = &*final_probes.tmp[node.0 as usize].1.borrow() {
            o.monitor_boxcar = r.monitor_boxcar;
            o.monitor_inflight = r.monitor_inflight;
            o.outstanding_rpcs = r.deliveries
                + r.early_releases
                + r.backouts
                + r.phase1_disc
                + r.phase1_tmp
                + r.remote_begins
                + r.janitor_rpcs
                + r.purge_rpcs;
        }
        live_obs.push(o);
    }
    for (node, slot) in &final_probes.audit {
        let mut o = LivenessObservation {
            process: format!("$AUDIT@{node}"),
            ..Default::default()
        };
        match &*slot.borrow() {
            None => o.unreachable = true,
            Some(r) => {
                o.audit_buffered = r.buffered;
                o.audit_waiters = r.waiters;
            }
        }
        live_obs.push(o);
    }
    for (vol, replies) in &lock_probes {
        let mut o = LivenessObservation {
            process: format!("{}@{}", vol.volume, vol.node),
            ..Default::default()
        };
        match replies.borrow().first() {
            Some(DiscReply::LockAudit { held, waiting }) => {
                o.locks_held = *held;
                o.lock_waiters = *waiting;
            }
            _ => o.unreachable = true,
        }
        live_obs.push(o);
    }
    implicated.sort();
    implicated.dedup();

    let client_statuses: Vec<ClientStatus> = clients
        .iter()
        .map(|c| ClientStatus {
            name: c.name.clone(),
            finished: c.finished.borrow().clone(),
            last_state: c.last_state.borrow().clone(),
        })
        .collect();
    let floor_tracks: Vec<PurgeFloorTrack> = floors.into_values().collect();
    violations.extend(liveness_violations(&live_obs, &client_statuses, &floor_tracks));
    violations.extend(bounded_violations(
        &bounded_obs,
        &StateCaps::soak(SOAK_SNAPSHOT_UNDO, SOAK_ARCHIVE_RETAIN as usize),
    ));
    check_convergence(&mut app.world, &volumes, &trail_key_of, &mut violations);

    let flight = if flight_recorder {
        let by_txn = app.world.flightrec().timelines();
        let empty = Vec::new();
        let timelines = implicated
            .iter()
            .map(|t| {
                let ft = t.flight_id();
                format_timeline(ft, by_txn.get(&ft).unwrap_or(&empty))
            })
            .collect();
        Some(FlightDump {
            json: app.world.flightrec().to_json(),
            timelines,
            timelines_by_txn: by_txn,
            committed: crate::runner::committed_transids(&app.world, &app.nodes),
        })
    } else {
        None
    };

    let mut schedule_desc = schedule.clone();
    schedule_desc.soak_enabled = true;
    SoakReport {
        run: RunReport {
            seed: schedule.seed,
            trace_hash,
            commits,
            aborts,
            takeover_commit_completions,
            dumps_completed,
            purged_trail_files,
            end_ms,
            violations,
            schedule_desc: schedule_desc.describe(),
            implicated: implicated.iter().map(|t| t.to_string()).collect(),
            flight,
        },
        epochs: plan.epochs,
        reader_restarts: app.world.metrics().get("chaos.reader_restarts"),
        writer_commits: app.world.metrics().get("chaos.soak_writer_commits"),
        writer_aborts: app.world.metrics().get("chaos.soak_writer_aborts"),
        client_respawns: respawns,
        drill: drill_desc,
    }
}

/// Pick the partition slot a node's long-hold writer works, preferring a
/// slot local to the node and never the drill volume's.
fn writer_slot(node_idx: usize, vpn: usize, slots: usize, drill: Option<usize>) -> usize {
    for j in node_idx * vpn..(node_idx + 1) * vpn {
        if Some(j) != drill {
            return j;
        }
    }
    (0..slots).find(|&j| Some(j) != drill).unwrap_or(0)
}

// ---------------------------------------------------------------------
// epoch-boundary probes

struct StateProbes {
    tmp: Vec<(NodeId, crate::probe::TmpState)>,
    audit: Vec<(NodeId, crate::probe::AuditState)>,
    disc: Vec<(VolumeRef, encompass_storage::testkit::Replies)>,
}

fn spawn_state_probes(world: &mut World, nodes: &[NodeId], volumes: &[VolumeRef]) -> StateProbes {
    let tmp = nodes
        .iter()
        .map(|&n| (n, TmpStateProbe::spawn(world, n)))
        .collect();
    let audit = nodes
        .iter()
        .map(|&n| (n, AuditStateProbe::spawn(world, n, "$AUDIT")))
        .collect();
    let disc = volumes
        .iter()
        .map(|v| {
            let replies = encompass_storage::testkit::run_script(
                world,
                v.node,
                0,
                Target::Named(v.node, v.volume.clone()),
                vec![DiscRequest::StateAudit],
            );
            (v.clone(), replies)
        })
        .collect();
    StateProbes { tmp, audit, disc }
}

/// Fold whatever the probes answered into bounded-state observations.
/// A probe that never heard back mid-run is skipped (the *final* probes
/// feed the liveness oracle, which does flag unreachability).
fn collect_state_probes(probes: &StateProbes, epoch: usize, out: &mut Vec<StateObservation>) {
    for (node, slot) in &probes.tmp {
        if let Some(r) = &*slot.borrow() {
            out.push(StateObservation {
                process: format!("$TMP@{node}"),
                epoch,
                kind: StateKind::Tmp(*r),
            });
        }
    }
    for (node, slot) in &probes.audit {
        if let Some(r) = &*slot.borrow() {
            out.push(StateObservation {
                process: format!("$AUDIT@{node}"),
                epoch,
                kind: StateKind::Audit(*r),
            });
        }
    }
    for (vol, replies) in &probes.disc {
        if let Some(DiscReply::State(r)) = replies.borrow().first() {
            out.push(StateObservation {
                process: format!("{}@{}", vol.volume, vol.node),
                epoch,
                kind: StateKind::Disc(*r),
            });
        }
    }
}

/// Count the `archive:` keys each volume retains on stable storage —
/// the bounded-state check for satellite retention: rolling dump
/// generations must delete superseded archives.
fn observe_stable_state(
    world: &World,
    volumes: &[VolumeRef],
    epoch: usize,
    max_generation: u64,
    out: &mut Vec<StateObservation>,
) {
    for v in volumes {
        let count = (0..=max_generation)
            .filter(|&g| world.stable().get::<ArchiveImage>(&archive_key(v, g)).is_some())
            .count();
        out.push(StateObservation {
            process: "stable-storage".to_string(),
            epoch,
            kind: StateKind::ArchiveKeys {
                volume: format!("{}.{}", v.node, v.volume),
                count,
            },
        });
    }
}

/// Record each volume's dump-registry progress (generation and proven
/// purge floor) for the liveness oracle's floor-advance check.
fn track_purge_floors(
    world: &World,
    volumes: &[VolumeRef],
    floors: &mut BTreeMap<String, PurgeFloorTrack>,
) {
    for v in volumes {
        let Some(reg) = world.stable().get::<DumpRegistry>(&dump_registry_key(v)) else {
            continue;
        };
        let name = format!("{}.{}", v.node, v.volume);
        floors
            .entry(name.clone())
            .and_modify(|t| {
                t.last_generation = reg.generation;
                t.last_floor = reg.purge_floor;
            })
            .or_insert(PurgeFloorTrack {
                volume: name,
                first_generation: reg.generation,
                last_generation: reg.generation,
                first_floor: reg.purge_floor,
                last_floor: reg.purge_floor,
            });
    }
}

// ---------------------------------------------------------------------
// long-lived soak clients

#[derive(Clone, Copy)]
enum ClientKind {
    Writer { slot: usize },
    Reader,
}

struct ClientHandle {
    name: String,
    pid: Pid,
    node: NodeId,
    generation: u32,
    kind: ClientKind,
    finished: Rc<RefCell<Option<String>>>,
    last_state: Rc<RefCell<String>>,
}

fn live_cpu(world: &World, node: NodeId) -> u8 {
    (0..world.cpu_count(node))
        .find(|&c| world.cpu_up(node, CpuId(c)))
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn spawn_writer(
    world: &mut World,
    catalog: &Catalog,
    node: NodeId,
    slot: usize,
    n_slots: usize,
    generation: u32,
    hold: SimDuration,
    deadline: SimTime,
) -> ClientHandle {
    let low = ACCOUNTS * slot as u64 / n_slots as u64;
    let name = format!("soak-writer[{node} slot {slot} g{generation}]");
    let finished: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));
    let last_state = Rc::new(RefCell::new("spawned".to_string()));
    let cpu = live_cpu(world, node);
    let pid = world.spawn(
        node,
        cpu,
        Box::new(SoakWriter {
            session: TmfSession::new(catalog.clone(), 7),
            key_prefix: format!(
                "{}:w{}g{}",
                String::from_utf8_lossy(&account_key(low)),
                node.0,
                generation
            ),
            attempt: 0,
            hold,
            deadline,
            state: WriterState::Idle,
            commits: 0,
            aborts: 0,
            finished: finished.clone(),
            last_state: last_state.clone(),
        }),
    );
    ClientHandle {
        name,
        pid,
        node,
        generation,
        kind: ClientKind::Writer { slot },
        finished,
        last_state,
    }
}

fn spawn_reader(
    world: &mut World,
    catalog: &Catalog,
    node: NodeId,
    generation: u32,
    pause: SimDuration,
    deadline: SimTime,
) -> ClientHandle {
    let name = format!("soak-reader[{node} g{generation}]");
    let finished: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));
    let last_state = Rc::new(RefCell::new("spawned".to_string()));
    let cpu = live_cpu(world, node);
    let pid = world.spawn(
        node,
        cpu,
        Box::new(SoakReader {
            session: TmfSession::new(catalog.clone(), 8),
            pause,
            deadline,
            step: node.0 as u64,
            reads: 0,
            restarts: 0,
            state: ReaderState::Idle,
            finished: finished.clone(),
            last_state: last_state.clone(),
        }),
    );
    ClientHandle {
        name,
        pid,
        node,
        generation,
        kind: ClientKind::Reader,
        finished,
        last_state,
    }
}

const TAG_HOLD: u64 = 1;
const TAG_RETRY: u64 = 2;
const TAG_PAUSE: u64 = 3;

#[derive(Clone, Copy, PartialEq)]
enum WriterState {
    Idle,
    WaitBegin,
    WaitInsert1,
    WaitInsert2,
    Holding,
    WaitEnd,
    WaitAbort,
    Done,
}

/// A long-hold writer: begins a transaction, inserts a balanced pair of
/// records (+7 / −7, so conservation is untouched) into its partition
/// slot, then sits on its locks for [`crate::schedule::SoakPlan::writer_hold_epochs`]
/// epochs before committing — a transaction that spans fault epochs,
/// pins purge floors, and exercises multi-epoch lock retention. On any
/// failure it aborts, halves its hold, and retries with fresh keys.
struct SoakWriter {
    session: TmfSession,
    key_prefix: String,
    attempt: u64,
    hold: SimDuration,
    deadline: SimTime,
    state: WriterState,
    commits: u64,
    aborts: u64,
    finished: Rc<RefCell<Option<String>>>,
    last_state: Rc<RefCell<String>>,
}

impl SoakWriter {
    fn note(&self, s: String) {
        *self.last_state.borrow_mut() = s;
    }

    fn key(&self, leg: char) -> Bytes {
        Bytes::from(format!("{}.{}.{}", self.key_prefix, self.attempt, leg))
    }

    fn start_attempt(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.now() + SimDuration::from_secs(30) >= self.deadline {
            self.state = WriterState::Done;
            *self.finished.borrow_mut() =
                Some(format!("commits={} aborts={}", self.commits, self.aborts));
            self.note("done".to_string());
            ctx.exit();
            return;
        }
        self.attempt += 1;
        self.state = WriterState::WaitBegin;
        self.note(format!("beginning attempt {}", self.attempt));
        self.session.begin(ctx, SessionOptions::default(), 0);
    }

    /// Abort if a transaction is open, otherwise back off and retry.
    fn recover(&mut self, ctx: &mut Ctx<'_>) {
        if self.session.transid().is_some() && !self.session.busy() {
            self.state = WriterState::WaitAbort;
            self.note("aborting".to_string());
            self.session.abort(ctx, AbortReason::Voluntary, 0);
        } else {
            self.state = WriterState::Idle;
            ctx.set_timer(SimDuration::from_secs(5), TAG_RETRY);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        match (self.state, ev) {
            (WriterState::WaitBegin, SessionEvent::Began { transid, .. }) => {
                self.state = WriterState::WaitInsert1;
                self.note(format!("in {transid}, inserting"));
                let refused = self.session.op(
                    ctx,
                    DbOp::Insert {
                        file: "accounts".to_string(),
                        key: self.key('a'),
                        value: Bytes::from_static(b"7"),
                    },
                    0,
                );
                debug_assert!(refused.is_none());
            }
            (WriterState::WaitInsert1, SessionEvent::OpDone { reply: DiscReply::Ok, .. }) => {
                self.state = WriterState::WaitInsert2;
                let refused = self.session.op(
                    ctx,
                    DbOp::Insert {
                        file: "accounts".to_string(),
                        key: self.key('b'),
                        value: Bytes::from_static(b"-7"),
                    },
                    0,
                );
                debug_assert!(refused.is_none());
            }
            (WriterState::WaitInsert2, SessionEvent::OpDone { reply: DiscReply::Ok, .. }) => {
                self.state = WriterState::Holding;
                let remaining = self.deadline.since(ctx.now()) - SimDuration::from_secs(25);
                let hold = self.hold.min(remaining).max(SimDuration::from_secs(1));
                self.note(format!(
                    "holding {} for {}s",
                    self.session
                        .transid()
                        .map(|t| t.to_string())
                        .unwrap_or_default(),
                    hold.as_millis() / 1000
                ));
                ctx.set_timer(hold, TAG_HOLD);
            }
            (_, SessionEvent::OpDone { .. }) => self.recover(ctx),
            (WriterState::WaitEnd, SessionEvent::Committed { .. }) => {
                self.commits += 1;
                ctx.count("chaos.soak_writer_commits", 1);
                self.start_attempt(ctx);
            }
            (_, SessionEvent::Aborted { .. }) => {
                self.aborts += 1;
                ctx.count("chaos.soak_writer_aborts", 1);
                // halve the hold so a fault-prone epoch converges on a
                // hold short enough to commit between waves
                self.hold = self
                    .hold
                    .min(SimDuration::from_micros(self.hold.as_micros() / 2))
                    .max(SimDuration::from_secs(10));
                self.state = WriterState::Idle;
                ctx.set_timer(SimDuration::from_secs(5), TAG_RETRY);
            }
            (_, SessionEvent::Failed { .. }) => self.recover(ctx),
            (_, SessionEvent::Began { .. }) | (_, SessionEvent::Committed { .. }) => {
                // stale event for a state we already left; ignore
            }
        }
    }
}

impl Process for SoakWriter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.start_attempt(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
            self.on_event(ctx, ev);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        match tag {
            TAG_HOLD => {
                if self.state == WriterState::Holding {
                    self.state = WriterState::WaitEnd;
                    self.note("ending".to_string());
                    self.session.end(ctx, 0);
                }
            }
            TAG_RETRY => {
                if self.state != WriterState::Idle {
                    return;
                }
                if self.session.transid().is_some() {
                    self.recover(ctx);
                } else {
                    self.start_attempt(ctx);
                }
            }
            _ => {
                if let Some(ev) = self.session.on_timer(ctx, tag) {
                    self.on_event(ctx, ev);
                }
            }
        }
    }

    fn kind(&self) -> &'static str {
        "soak-writer"
    }
}

#[derive(Clone, Copy, PartialEq)]
enum ReaderState {
    Idle,
    WaitBegin,
    WaitRead,
    Pausing,
    WaitRestartAbort,
    WaitEnd,
    Done,
}

/// A long-lived snapshot reader: one read-only transaction held open
/// across fault epochs, snapshot-reading a rotating account every
/// [`crate::schedule::SoakPlan::reader_pause_ms`]. The small soak
/// snapshot-undo ring guarantees its pinned fences eventually fall off;
/// the reader then restarts the read-only transaction with a fresh
/// fence, counted as `chaos.reader_restarts`.
struct SoakReader {
    session: TmfSession,
    pause: SimDuration,
    deadline: SimTime,
    step: u64,
    reads: u64,
    restarts: u64,
    state: ReaderState,
    finished: Rc<RefCell<Option<String>>>,
    last_state: Rc<RefCell<String>>,
}

impl SoakReader {
    fn note(&self, s: String) {
        *self.last_state.borrow_mut() = s;
    }

    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        self.state = ReaderState::WaitBegin;
        self.note("beginning read-only transaction".to_string());
        self.session
            .begin(ctx, SessionOptions::new().read_only(), 0);
    }

    fn finish_or_pause(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.now() + SimDuration::from_secs(10) >= self.deadline {
            if self.session.transid().is_some() && !self.session.busy() {
                self.state = ReaderState::WaitEnd;
                self.note("ending".to_string());
                self.session.end(ctx, 0);
            } else {
                self.done(ctx);
            }
        } else {
            self.state = ReaderState::Pausing;
            ctx.set_timer(self.pause, TAG_PAUSE);
        }
    }

    fn done(&mut self, ctx: &mut Ctx<'_>) {
        self.state = ReaderState::Done;
        *self.finished.borrow_mut() = Some(format!(
            "reads={} restarts={}",
            self.reads, self.restarts
        ));
        self.note("done".to_string());
        ctx.exit();
    }

    fn read_next(&mut self, ctx: &mut Ctx<'_>) {
        self.state = ReaderState::WaitRead;
        let idx = (self.step * 37) % ACCOUNTS;
        self.step += 1;
        self.note(format!("snapshot-reading acct{idx:08}"));
        let refused = self.session.op(
            ctx,
            DbOp::Read {
                file: "accounts".to_string(),
                key: account_key(idx),
            },
            0,
        );
        debug_assert!(refused.is_none());
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        match (self.state, ev) {
            (ReaderState::WaitBegin, SessionEvent::Began { .. }) => self.read_next(ctx),
            (ReaderState::WaitRead, SessionEvent::OpDone { reply, .. }) => match reply {
                DiscReply::Err(DiscError::SnapshotTooOld) => {
                    // the pinned fence fell off the snapshot-undo ring:
                    // restart the read-only transaction for a fresh one
                    self.restarts += 1;
                    ctx.count("chaos.reader_restarts", 1);
                    self.state = ReaderState::WaitRestartAbort;
                    self.note("restarting on SnapshotTooOld".to_string());
                    self.session.abort(ctx, AbortReason::Voluntary, 0);
                }
                _ => {
                    // values (and transient VolumeDown during a fault
                    // wave) are all fine — snapshot reads assert nothing
                    self.reads += 1;
                    self.finish_or_pause(ctx);
                }
            },
            (ReaderState::WaitRestartAbort, SessionEvent::Aborted { .. }) => self.begin(ctx),
            (ReaderState::WaitEnd, SessionEvent::Committed { .. })
            | (ReaderState::WaitEnd, SessionEvent::Aborted { .. }) => self.done(ctx),
            (_, SessionEvent::Aborted { .. }) => {
                // aborted from outside (e.g. the TMP died with our
                // processor's transactions): begin anew or wind down
                if ctx.now() + SimDuration::from_secs(10) >= self.deadline {
                    self.done(ctx);
                } else {
                    self.begin(ctx);
                }
            }
            (_, SessionEvent::Failed { .. }) => {
                if self.session.transid().is_some() && !self.session.busy() {
                    self.state = ReaderState::WaitRestartAbort;
                    self.session.abort(ctx, AbortReason::Voluntary, 0);
                } else {
                    self.state = ReaderState::Idle;
                    ctx.set_timer(SimDuration::from_secs(5), TAG_RETRY);
                }
            }
            _ => {}
        }
    }
}

impl Process for SoakReader {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.begin(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
            self.on_event(ctx, ev);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        match tag {
            TAG_PAUSE => {
                if self.state == ReaderState::Pausing {
                    if self.session.transid().is_some() {
                        self.read_next(ctx);
                    } else {
                        self.begin(ctx);
                    }
                }
            }
            TAG_RETRY => {
                if self.state == ReaderState::Idle {
                    if ctx.now() + SimDuration::from_secs(10) >= self.deadline {
                        self.done(ctx);
                    } else if self.session.transid().is_none() {
                        self.begin(ctx);
                    }
                }
            }
            _ => {
                if let Some(ev) = self.session.on_timer(ctx, tag) {
                    self.on_event(ctx, ev);
                }
            }
        }
    }

    fn kind(&self) -> &'static str {
        "soak-reader"
    }
}
