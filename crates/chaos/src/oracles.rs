//! Soak-tier oracle families: **liveness** and **bounded state**.
//!
//! Both are pure functions over observation structs so that unit tests
//! can feed synthetic stuck schedules (a transaction that never
//! resolves, a monitor boxcar that never flushes, a purge floor that
//! never advances) and assert that each oracle fires with a message
//! naming the implicated transid or process. The soak runner collects
//! the observations from live probes ([`crate::probe::TmpStateProbe`],
//! [`crate::probe::AuditStateProbe`], `DiscRequest::StateAudit`,
//! `TmpMsg::ListOpen`, `DiscRequest::LockAudit`) and from the stable
//! storage (dump registries, archive keys), then hands them here.

use encompass_storage::audit_api::AuditStateReport;
use encompass_storage::discprocess::DiscStateReport;
use tmf::tmp::TmpStateReport;

/// One process's answer to a state probe, tagged with who answered and
/// when (soak epoch index; `usize::MAX` = the final post-heal probe).
#[derive(Clone, Debug)]
pub struct StateObservation {
    /// Display name of the probed process, e.g. `"$TMP@\\N0"` or
    /// `"$BANK1@\\N2"`.
    pub process: String,
    /// Soak epoch at whose boundary the probe ran.
    pub epoch: usize,
    pub kind: StateKind,
}

/// The probed process's report.
#[derive(Clone, Debug)]
pub enum StateKind {
    Disc(DiscStateReport),
    Tmp(TmpStateReport),
    Audit(AuditStateReport),
    /// Count of `archive:<volume>:<gen>` keys present on stable storage
    /// for one volume.
    ArchiveKeys { volume: String, count: usize },
}

/// Caps for the bounded-state oracle. Everything the servers keep per
/// transid or per request must stay below these across the whole soak
/// horizon; a monotonically growing structure is a leak even when the
/// run is otherwise green.
#[derive(Clone, Copy, Debug)]
pub struct StateCaps {
    /// `DiscConfig::snapshot_undo_capacity` in effect for the run.
    pub snapshot_undo: usize,
    /// Live (unsettled) fenced transactions on one volume.
    pub fenced_live: usize,
    /// `DiscConfig::settled_fence_capacity` in effect for the run.
    pub settled_fences: usize,
    /// Counted-but-uncompleted lock waits on one volume.
    pub counted_waits: usize,
    /// Live transactions with retained (unforced) images on one volume.
    pub unforced_txns: usize,
    /// Transaction-table entries at one TMP.
    pub tmp_txns: usize,
    /// Reply-cache occupancy (each cache is bounded by construction;
    /// this is the largest capacity in the system).
    pub reply_cache: usize,
    /// Records buffered at one AUDITPROCESS awaiting a force.
    pub audit_buffered: usize,
    /// `archive:` keys retained per volume: `archive_retain` plus one
    /// in-flight generation.
    pub archive_keys: usize,
}

impl StateCaps {
    /// Caps used by the soak runner (matched to the facility knobs it
    /// configures).
    pub fn soak(snapshot_undo_capacity: usize, archive_retain: usize) -> StateCaps {
        StateCaps {
            snapshot_undo: snapshot_undo_capacity,
            fenced_live: 256,
            settled_fences: 4096,
            counted_waits: 512,
            unforced_txns: 64,
            tmp_txns: 256,
            reply_cache: 16384,
            audit_buffered: 4096,
            archive_keys: archive_retain + 1,
        }
    }
}

/// Bounded-state oracle: every per-transid / per-request structure a
/// server keeps must stay within its cap at every observation point.
/// Returns one violation string per breach, naming the process, the
/// field, the observed size, and the cap.
pub fn bounded_violations(obs: &[StateObservation], caps: &StateCaps) -> Vec<String> {
    let mut v = Vec::new();
    let mut breach = |process: &str, epoch: usize, field: &str, size: usize, cap: usize| {
        if size > cap {
            v.push(format!(
                "bounded-state: {process} {field}={size} exceeds cap {cap} at epoch {epoch}"
            ));
        }
    };
    for o in obs {
        let p = o.process.as_str();
        match &o.kind {
            StateKind::Disc(r) => {
                breach(p, o.epoch, "snapshot_undo", r.snapshot_undo, caps.snapshot_undo);
                breach(p, o.epoch, "fenced_live", r.fenced_live, caps.fenced_live);
                breach(p, o.epoch, "settled_fences", r.settled_fences, caps.settled_fences);
                breach(p, o.epoch, "counted_waits", r.counted_waits, caps.counted_waits);
                breach(p, o.epoch, "unforced_txns", r.unforced_txns, caps.unforced_txns);
                breach(p, o.epoch, "reply_cache", r.reply_cache, caps.reply_cache);
                // images/low-seq pins exist only for live fenced txns
                breach(p, o.epoch, "txn_images", r.txn_images, caps.fenced_live);
                breach(p, o.epoch, "txn_low_seq", r.txn_low_seq, caps.fenced_live);
            }
            StateKind::Tmp(r) => {
                breach(p, o.epoch, "txns", r.txns, caps.tmp_txns);
                breach(p, o.epoch, "reply_cache", r.reply_cache, caps.reply_cache);
            }
            StateKind::Audit(r) => {
                breach(p, o.epoch, "buffered", r.buffered, caps.audit_buffered);
                breach(p, o.epoch, "reply_cache", r.reply_cache, caps.reply_cache);
            }
            StateKind::ArchiveKeys { volume, count } => {
                breach(
                    &format!("{p} archive set for {volume}"),
                    o.epoch,
                    "archive_keys",
                    *count,
                    caps.archive_keys,
                );
            }
        }
    }
    v
}

/// One process's answer to the *final* (post-heal, post-quiesce)
/// liveness probes. Everything in here must be fully drained: the
/// workload is over, every fault is healed, and the system has had a
/// generous quiesce window.
#[derive(Clone, Debug, Default)]
pub struct LivenessObservation {
    /// Display name, e.g. `"$TMP@\\N1"`.
    pub process: String,
    /// Transids still in the transaction table (`TmpMsg::ListOpen`).
    pub open_transids: Vec<String>,
    /// Completion records still parked in the monitor boxcar.
    pub monitor_boxcar: usize,
    /// Completion records still in a monitor force in flight.
    pub monitor_inflight: usize,
    /// Safe-delivery / backout / phase-one rpcs still outstanding.
    pub outstanding_rpcs: usize,
    /// Records still buffered (unforced) at an AUDITPROCESS.
    pub audit_buffered: usize,
    /// Force waiters still parked at an AUDITPROCESS.
    pub audit_waiters: usize,
    /// Lock waiters still parked at a DISCPROCESS.
    pub lock_waiters: usize,
    /// Locks still held at a DISCPROCESS.
    pub locks_held: usize,
    /// The probe never heard back (process unreachable after heal).
    pub unreachable: bool,
}

/// Purge-floor progress for one volume across the soak horizon.
#[derive(Clone, Debug)]
pub struct PurgeFloorTrack {
    pub volume: String,
    /// Registry generation at the first epoch boundary where the volume
    /// had a completed dump.
    pub first_generation: u64,
    /// Registry generation at the end of the run.
    pub last_generation: u64,
    /// Purge floor at the first observation.
    pub first_floor: u64,
    /// Purge floor at the end of the run.
    pub last_floor: u64,
}

/// A long-lived soak client's terminal status: `None` means it never
/// reported finishing.
#[derive(Clone, Debug)]
pub struct ClientStatus {
    /// Display name, e.g. `"soak-writer[\\N0:$BANK1]"`.
    pub name: String,
    /// `Some(summary)` once the client reached its terminal state.
    pub finished: Option<String>,
    /// Last state-machine transition the client recorded, for
    /// diagnosing where it wedged.
    pub last_state: String,
}

/// Liveness oracle: after the heal barrier and quiesce window, every
/// begun transaction has reached a terminal state, every boxcar and
/// waiter queue has drained, every long-lived client has finished, and
/// purge floors moved forward on volumes that completed dumps. Returns
/// one violation per breach, naming the implicated transid, process, or
/// volume.
pub fn liveness_violations(
    obs: &[LivenessObservation],
    clients: &[ClientStatus],
    floors: &[PurgeFloorTrack],
) -> Vec<String> {
    let mut v = Vec::new();
    for o in obs {
        let p = o.process.as_str();
        if o.unreachable {
            v.push(format!("liveness: {p} unreachable after heal"));
            continue;
        }
        for t in &o.open_transids {
            v.push(format!(
                "liveness: transaction {t} never reached a terminal state (still open at {p})"
            ));
        }
        if o.monitor_boxcar > 0 {
            v.push(format!(
                "liveness: monitor boxcar at {p} never flushed ({} completion records parked)",
                o.monitor_boxcar
            ));
        }
        if o.monitor_inflight > 0 {
            v.push(format!(
                "liveness: monitor force at {p} never completed ({} records in flight)",
                o.monitor_inflight
            ));
        }
        if o.outstanding_rpcs > 0 {
            v.push(format!(
                "liveness: {} rpcs still outstanding at {p} after quiesce",
                o.outstanding_rpcs
            ));
        }
        if o.audit_buffered > 0 {
            v.push(format!(
                "liveness: {} audit records never forced at {p}",
                o.audit_buffered
            ));
        }
        if o.audit_waiters > 0 {
            v.push(format!(
                "liveness: {} force waiters still parked at {p}",
                o.audit_waiters
            ));
        }
        if o.lock_waiters > 0 {
            v.push(format!(
                "liveness: {} lock waiters still parked at {p}",
                o.lock_waiters
            ));
        }
        if o.locks_held > 0 {
            v.push(format!("liveness: {} locks still held at {p}", o.locks_held));
        }
    }
    for c in clients {
        if c.finished.is_none() {
            v.push(format!(
                "liveness: soak client {} never reached a terminal state (last: {})",
                c.name, c.last_state
            ));
        }
    }
    for f in floors {
        // Two completed dump generations bracket at least one full
        // epoch of settle traffic, so the floor proven by the later
        // dump must exceed the floor proven by the earlier one.
        if f.last_generation >= f.first_generation + 2 && f.last_floor <= f.first_floor {
            v.push(format!(
                "liveness: purge floor of {} never advanced ({} at generation {}, still {} at generation {})",
                f.volume, f.first_floor, f.first_generation, f.last_floor, f.last_generation
            ));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> StateCaps {
        StateCaps::soak(64, 2)
    }

    #[test]
    fn clean_observations_raise_nothing() {
        let obs = vec![
            StateObservation {
                process: "$BANK@\\N0".into(),
                epoch: 3,
                kind: StateKind::Disc(DiscStateReport::default()),
            },
            StateObservation {
                process: "$TMP@\\N0".into(),
                epoch: 3,
                kind: StateKind::Tmp(TmpStateReport::default()),
            },
            StateObservation {
                process: "$AUDIT@\\N0".into(),
                epoch: 3,
                kind: StateKind::Audit(AuditStateReport::default()),
            },
        ];
        assert!(bounded_violations(&obs, &caps()).is_empty());
        let live = vec![LivenessObservation {
            process: "$TMP@\\N0".into(),
            ..Default::default()
        }];
        let clients = vec![ClientStatus {
            name: "soak-writer[\\N0:$BANK]".into(),
            finished: Some("commits=12".into()),
            last_state: "done".into(),
        }];
        let floors = vec![PurgeFloorTrack {
            volume: "\\N0:$BANK".into(),
            first_generation: 1,
            last_generation: 5,
            first_floor: 40,
            last_floor: 900,
        }];
        assert!(liveness_violations(&live, &clients, &floors).is_empty());
    }

    #[test]
    fn stuck_transaction_names_the_transid() {
        // synthetic stuck schedule: a transaction begun in epoch 2
        // never resolves and is still in \N1's table after the heal
        let live = vec![LivenessObservation {
            process: "$TMP@\\N1".into(),
            open_transids: vec!["\\N1:2:417".into()],
            ..Default::default()
        }];
        let v = liveness_violations(&live, &[], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("\\N1:2:417"), "{}", v[0]);
        assert!(v[0].contains("$TMP@\\N1"), "{}", v[0]);
        assert!(v[0].contains("never reached a terminal state"), "{}", v[0]);
    }

    #[test]
    fn stuck_boxcar_names_the_monitor() {
        // synthetic stuck schedule: the monitor boxcar holds three
        // completion records and no force ever fires
        let live = vec![LivenessObservation {
            process: "$TMP@\\N0".into(),
            monitor_boxcar: 3,
            ..Default::default()
        }];
        let v = liveness_violations(&live, &[], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("monitor boxcar at $TMP@\\N0 never flushed"), "{}", v[0]);
    }

    #[test]
    fn stuck_purge_floor_names_the_volume() {
        // synthetic stuck schedule: four dump generations complete but
        // the proven floor never moves
        let floors = vec![PurgeFloorTrack {
            volume: "\\N2:$BANK1".into(),
            first_generation: 1,
            last_generation: 5,
            first_floor: 12,
            last_floor: 12,
        }];
        let v = liveness_violations(&[], &[], &floors);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("purge floor of \\N2:$BANK1 never advanced"), "{}", v[0]);
    }

    #[test]
    fn floor_not_required_to_advance_without_two_dumps() {
        let floors = vec![PurgeFloorTrack {
            volume: "\\N0:$BANK".into(),
            first_generation: 2,
            last_generation: 3,
            first_floor: 7,
            last_floor: 7,
        }];
        assert!(liveness_violations(&[], &[], &floors).is_empty());
    }

    #[test]
    fn stuck_client_names_the_client_and_its_last_state() {
        let clients = vec![ClientStatus {
            name: "soak-writer[\\N0:$BANK1]".into(),
            finished: None,
            last_state: "holding \\N0:1:93".into(),
        }];
        let v = liveness_violations(&[], &clients, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("soak-writer[\\N0:$BANK1]"), "{}", v[0]);
        assert!(v[0].contains("\\N0:1:93"), "{}", v[0]);
    }

    #[test]
    fn parked_waiters_and_held_locks_fire() {
        let live = vec![LivenessObservation {
            process: "$BANK@\\N0".into(),
            lock_waiters: 2,
            locks_held: 5,
            audit_buffered: 0,
            ..Default::default()
        }];
        let v = liveness_violations(&live, &[], &[]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|s| s.contains("2 lock waiters still parked")));
        assert!(v.iter().any(|s| s.contains("5 locks still held")));
    }

    #[test]
    fn snapshot_undo_over_cap_names_the_volume_process() {
        let obs = vec![StateObservation {
            process: "$BANK1@\\N1".into(),
            epoch: 4,
            kind: StateKind::Disc(DiscStateReport {
                snapshot_undo: 65,
                ..Default::default()
            }),
        }];
        let v = bounded_violations(&obs, &caps());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("$BANK1@\\N1"), "{}", v[0]);
        assert!(v[0].contains("snapshot_undo=65"), "{}", v[0]);
        assert!(v[0].contains("cap 64"), "{}", v[0]);
        assert!(v[0].contains("epoch 4"), "{}", v[0]);
    }

    #[test]
    fn leaked_per_transid_maps_fire() {
        // post-settlement leak: counted_waits / unforced images growing
        // past any plausible live population
        let obs = vec![StateObservation {
            process: "$BANK@\\N0".into(),
            epoch: 7,
            kind: StateKind::Disc(DiscStateReport {
                counted_waits: 513,
                unforced_txns: 65,
                ..Default::default()
            }),
        }];
        let v = bounded_violations(&obs, &caps());
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|s| s.contains("counted_waits=513")));
        assert!(v.iter().any(|s| s.contains("unforced_txns=65")));
    }

    #[test]
    fn archive_retention_over_cap_fires() {
        let obs = vec![StateObservation {
            process: "stable".into(),
            epoch: 6,
            kind: StateKind::ArchiveKeys {
                volume: "\\N0:$BANK".into(),
                count: 4,
            },
        }];
        let v = bounded_violations(&obs, &caps());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("\\N0:$BANK"), "{}", v[0]);
        assert!(v[0].contains("archive_keys=4"), "{}", v[0]);
    }
}
