//! Run one schedule end-to-end and check every TMF invariant.
//!
//! The run proceeds in deterministic phases:
//!
//! 1. build the bank application for the schedule's cluster shape and
//!    snapshot a generation-0 archive of every volume (the preload writes
//!    the account records straight to the media, bypassing TMF, so the
//!    audit trail alone cannot reproduce them — exactly like a real
//!    pre-TMF bulk load followed by an online dump);
//! 2. play the fault timeline, resolving name-addressed actions against
//!    the live world;
//! 3. heal everything, run the workload to completion, and let the
//!    safe-delivery tail (phase 2, abort notifications, backouts) drain;
//! 4. probe every TMP and DISCPROCESS for leaked state;
//! 5. evaluate the oracles.
//!
//! The oracles are the paper's own guarantees:
//!
//! * **atomicity** — a transid's outcome must agree across every node's
//!   Monitor Audit Trail (committed everywhere or aborted everywhere);
//! * **conservation** — debits move money, so
//!   `initial_total - sum(history amounts) == final_total`, which only
//!   holds if backout undid the history appends of every aborted
//!   transaction and phase 2 landed every committed one;
//! * **no leaks** — after quiesce + heal, every TMP transaction table is
//!   empty and every lock manager holds nothing and queues nobody;
//! * **durability / convergence** — ROLLFORWARD from the generation-0
//!   archive plus the audit trails rebuilds media byte-identical to the
//!   live volumes, i.e. every committed transaction survives recovery
//!   from total node failure and nothing uncommitted does.

use crate::probe::TmpProbe;
use crate::schedule::{ChaosAction, Schedule, ScheduledDump};
use bytes::Bytes;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass::workload::total_balance;
use encompass_audit::dump::{DumpMsg, DumpReply};
use encompass_audit::monitor::{monitor_key, MonitorTrail};
use encompass_audit::rollforward::rollforward_volume;
use encompass_sim::{
    format_timeline, CpuId, Ctx, Fault, FlightEvent, FlightTransid, NodeId, Payload, Pid,
    SimConfig, SimDuration, SimTime, TimerId, World,
};
use encompass_storage::audit_api::{AuditMsg, AuditReply};
use encompass_storage::discprocess::{DiscReply, DiscRequest};
use encompass_storage::media::{archive_key, ArchiveImage, VolumeMedia};
use encompass_storage::media::{dump_registry_key, media_key, DumpRegistry};
use encompass_storage::types::{Transid, VolumeRef};
use guardian::{Rpc, Target, TimerOutcome};
use std::collections::{BTreeMap, HashMap};

/// Accounts preloaded per run (balance 1000 each).
pub(crate) const ACCOUNTS: u64 = 120;

/// What one chaos run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub seed: u64,
    /// The determinism hash: same seed ⇒ same hash, always.
    pub trace_hash: u64,
    pub commits: u64,
    pub aborts: u64,
    pub takeover_commit_completions: u64,
    /// Online dumps that completed (archive + registry durable).
    pub dumps_completed: u64,
    /// Trail files dropped by the TMP's capacity-purge pass.
    pub purged_trail_files: u64,
    pub end_ms: u64,
    pub violations: Vec<String>,
    /// The fault timeline, for one-line repro reports.
    pub schedule_desc: String,
    /// Transids implicated in oracle failures (atomicity disagreements
    /// and transactions leaked in a TMP table), as display strings.
    pub implicated: Vec<String>,
    /// Flight-recorder artifacts; `Some` only on recorder-enabled runs.
    pub flight: Option<FlightDump>,
}

/// What a recorder-enabled run exports for post-mortems.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// The full recorder export — the `flightrec.json` payload.
    pub json: String,
    /// Rendered per-transaction timelines of the implicated transids.
    pub timelines: Vec<String>,
    /// Merged per-transaction event timelines, every transaction.
    pub timelines_by_txn: BTreeMap<FlightTransid, Vec<FlightEvent>>,
    /// Transids the Monitor Audit Trails record as committed.
    pub committed: Vec<FlightTransid>,
}

impl RunReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn summary_line(&self) -> String {
        format!(
            "seed {:>6}  hash {:016x}  commits {:>4}  aborts {:>3}  t_end {:>6}ms  {}",
            self.seed,
            self.trace_hash,
            self.commits,
            self.aborts,
            self.end_ms,
            if self.ok() {
                "ok".to_string()
            } else {
                format!("FAIL ({})", self.violations.len())
            }
        )
    }
}

/// Generate the schedule for `seed` and run it.
pub fn run_seed(seed: u64) -> RunReport {
    run_schedule(&Schedule::generate(seed))
}

/// Run one schedule to completion and evaluate every oracle.
pub fn run_schedule(schedule: &Schedule) -> RunReport {
    run_schedule_with(schedule, false)
}

/// [`run_schedule`], optionally with the flight recorder on. Recording is
/// a pure side channel, so the trace hash is identical either way — a
/// failing seed can be re-run recorded and the same execution replays.
pub fn run_schedule_with(schedule: &Schedule, flight_recorder: bool) -> RunReport {
    let mut builder = tmf::facility::TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_micros(schedule.group_commit_window_us))
        .audit_partitions(schedule.audit_partitions.max(1));
    if schedule.dumps_enabled {
        builder = builder
            .trail_purge_interval(SimDuration::from_micros(schedule.trail_purge_interval_us))
            .audit_rotate_every(schedule.audit_rotate_every);
    }
    let tmf = builder
        .build()
        .expect("schedule produced an invalid TMF config");
    let sim = if flight_recorder {
        SimConfig::default().flight_recording()
    } else {
        SimConfig::default()
    };
    let mut app = launch_bank_app(BankAppParams {
        node_cpus: vec![schedule.cpus_per_node; schedule.nodes],
        volumes_per_node: schedule.volumes_per_node.max(1),
        accounts: ACCOUNTS,
        terminals_per_node: schedule.terminals_per_node,
        readonly_terminals_per_node: schedule.readonly_terminals_per_node,
        transactions_per_terminal: schedule.transactions_per_terminal,
        think: SimDuration::from_millis(5),
        hot_fraction: schedule.hot_fraction,
        hot_set: 8,
        seed: schedule.seed,
        lock_wait: SimDuration::from_millis(300),
        sim,
        tmf,
        ..BankAppParams::default()
    });
    let volumes: Vec<VolumeRef> = app.catalog.all_volumes();
    snapshot_archives(&mut app.world, &volumes);

    // ---- phase 2: the fault timeline (+ online dumps, if enabled) ---
    let dumps: &[ScheduledDump] = if schedule.dumps_enabled {
        &schedule.dumps
    } else {
        &[]
    };
    let mut next_dump = 0usize;
    for ev in &schedule.events {
        start_due_dumps(&mut app.world, &volumes, dumps, &mut next_dump, ev.at);
        app.world.run_until(ev.at);
        apply(&mut app.world, &ev.action);
    }
    start_due_dumps(
        &mut app.world,
        &volumes,
        dumps,
        &mut next_dump,
        schedule.heal_at,
    );
    app.world.run_until(schedule.heal_at);
    heal_everything(&mut app.world, schedule);

    // ---- phase 3: run the workload out, then drain ------------------
    let mut violations = Vec::new();
    let total_terminals = (schedule.nodes
        * (schedule.terminals_per_node + schedule.readonly_terminals_per_node))
        as u64;
    let stall_deadline = schedule.heal_at + SimDuration::from_secs(120);
    while app.world.metrics().get("tcp.terminals_finished") < total_terminals
        && app.world.now() < stall_deadline
    {
        app.world.run_for(SimDuration::from_millis(500));
    }
    if app.world.metrics().get("tcp.terminals_finished") < total_terminals {
        violations.push(format!(
            "workload stalled: {}/{} terminals finished by t={}ms",
            app.world.metrics().get("tcp.terminals_finished"),
            total_terminals,
            app.world.now().as_millis()
        ));
    }
    // safe-delivery tail: phase 2, abort notifications, backouts
    app.world.run_for(SimDuration::from_secs(5));

    // When dumps ran, drain every AUDITPROCESS buffer to the trail media
    // before the convergence oracle reads the trails: a fuzzy archive may
    // have caught a dirty value whose undo image is still sitting in a
    // buffer (an empty forced append is the AUDITPROCESS flush barrier).
    if schedule.dumps_enabled {
        for &node in &app.nodes {
            app.world
                .spawn(node, 0, Box::new(AuditFlushClient::new(node)));
        }
    }

    // ---- phase 4: leak probes ---------------------------------------
    let open_probes: Vec<_> = app
        .nodes
        .iter()
        .map(|&n| (n, TmpProbe::spawn(&mut app.world, n)))
        .collect();
    let lock_probes: Vec<_> = volumes
        .iter()
        .map(|v| {
            let replies = encompass_storage::testkit::run_script(
                &mut app.world,
                v.node,
                0,
                Target::Named(v.node, v.volume.clone()),
                vec![DiscRequest::LockAudit],
            );
            (v.clone(), replies)
        })
        .collect();
    app.world.run_for(SimDuration::from_secs(3));

    let trace_hash = app.world.trace_hash();
    let commits = app.world.metrics().get("tmf.commits");
    let aborts = app.world.metrics().get("tmf.aborts");
    let takeover_commit_completions = app
        .world
        .metrics()
        .get("tmf.takeover_commit_completions");
    let dumps_completed = app.world.metrics().get("dump.completed");
    let purged_trail_files = app.world.metrics().get("tmf.purged_trail_files");
    let end_ms = app.world.now().as_millis();

    // ---- phase 5: oracles -------------------------------------------
    let mut implicated: Vec<Transid> = Vec::new();
    check_atomicity(&mut app.world, &app.nodes, &mut violations, &mut implicated);
    check_conservation(&mut app.world, &app.catalog, &app.nodes, &mut violations);
    for (node, slot) in &open_probes {
        match &*slot.borrow() {
            None => violations.push(format!("{node}: $TMP unreachable after heal")),
            Some(open) if !open.is_empty() => {
                implicated.extend(open.iter().copied());
                violations.push(format!(
                    "{node}: {} transaction(s) leaked in the TMP table: {open:?}",
                    open.len()
                ));
            }
            Some(_) => {}
        }
    }
    implicated.sort();
    implicated.dedup();
    for (vol, replies) in &lock_probes {
        match replies.borrow().first() {
            Some(DiscReply::LockAudit { held: 0, waiting: 0 }) => {}
            Some(DiscReply::LockAudit { held, waiting }) => violations.push(format!(
                "{}.{}: {held} lock(s) still held, {waiting} waiter(s) parked after quiesce",
                vol.node, vol.volume
            )),
            other => violations.push(format!(
                "{}.{}: lock audit failed: {other:?}",
                vol.node, vol.volume
            )),
        }
    }
    // Per-volume trail keys: with partitioned trails a volume's images
    // live on exactly one partition, and a *sibling* partition may have
    // purged past this volume's floor — scanning every trail of the
    // service would trip ROLLFORWARD's purge-floor check spuriously.
    let trail_key_of: BTreeMap<(NodeId, String), String> = app
        .tmf
        .iter()
        .flat_map(|h| {
            let node = h.node;
            h.trail_key_of
                .iter()
                .map(move |(vol, key)| ((node, vol.clone()), key.clone()))
        })
        .collect();
    check_convergence(&mut app.world, &volumes, &trail_key_of, &mut violations);

    let flight = if flight_recorder {
        let by_txn = app.world.flightrec().timelines();
        let empty = Vec::new();
        let timelines = implicated
            .iter()
            .map(|t| {
                let ft = t.flight_id();
                format_timeline(ft, by_txn.get(&ft).unwrap_or(&empty))
            })
            .collect();
        Some(FlightDump {
            json: app.world.flightrec().to_json(),
            timelines,
            timelines_by_txn: by_txn,
            committed: committed_transids(&app.world, &app.nodes),
        })
    } else {
        None
    };

    RunReport {
        seed: schedule.seed,
        trace_hash,
        commits,
        aborts,
        takeover_commit_completions,
        dumps_completed,
        purged_trail_files,
        end_ms,
        violations,
        schedule_desc: schedule.describe(),
        implicated: implicated.iter().map(|t| t.to_string()).collect(),
        flight,
    }
}

/// Snapshot a generation-0 archive of every volume, straight from the
/// (preloaded) media — the online-dump the paper's ROLLFORWARD starts
/// from.
pub(crate) fn snapshot_archives(world: &mut World, volumes: &[VolumeRef]) {
    for v in volumes {
        let files = world
            .stable()
            .get::<VolumeMedia>(&media_key(v.node, &v.volume))
            .map(|m| m.files.clone())
            .unwrap_or_default();
        let key = archive_key(v, 0);
        let vol = v.clone();
        world.stable_mut().get_or_create::<ArchiveImage, _>(&key, move || ArchiveImage {
            volume: vol,
            files,
            audit_watermark: 0,
            purge_floor: 1,
            generation: 0,
        });
    }
}

/// Start every scheduled dump due at or before `upto`: one [`DumpClient`]
/// per volume of the dump's node, spawned at the dump's own time.
pub(crate) fn start_due_dumps(
    world: &mut World,
    volumes: &[VolumeRef],
    dumps: &[ScheduledDump],
    next: &mut usize,
    upto: SimTime,
) {
    while *next < dumps.len() && dumps[*next].at <= upto {
        let d = dumps[*next].clone();
        world.run_until(d.at);
        // the dump may be scheduled while a processor of the node is
        // down; host the client on any live one
        let cpu = (0..world.cpu_count(d.node))
            .find(|&c| world.cpu_up(d.node, CpuId(c)))
            .unwrap_or(0);
        for v in volumes.iter().filter(|v| v.node == d.node) {
            world.spawn(
                d.node,
                cpu,
                Box::new(DumpClient {
                    volume: v.clone(),
                    generation: d.generation,
                    rpc: Rpc::new(2),
                }),
            );
        }
        *next += 1;
    }
}

/// One-shot client asking a node's `$DUMP` pair for one online dump. The
/// request retries persistently — a CPU fault mid-copy forces a takeover
/// that drops the dump, and the retry is what restarts it after the heal.
pub(crate) struct DumpClient {
    pub(crate) volume: VolumeRef,
    pub(crate) generation: u64,
    pub(crate) rpc: Rpc<DumpMsg, DumpReply>,
}

impl encompass_sim::Process for DumpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.volume.node, "$DUMP".into()),
            DumpMsg::DumpVolume {
                volume: self.volume.clone(),
                generation: self.generation,
            },
            SimDuration::from_millis(100),
            0,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if self.rpc.accept(ctx, payload).is_ok() {
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            ctx.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "dump-client"
    }
}

/// One-shot client that sends a node's `$AUDIT` an empty forced append —
/// the flush barrier that pushes every buffered image onto the trail.
pub(crate) struct AuditFlushClient {
    node: NodeId,
    rpc: Rpc<AuditMsg, AuditReply>,
}

impl AuditFlushClient {
    pub(crate) fn new(node: NodeId) -> AuditFlushClient {
        AuditFlushClient {
            node,
            rpc: Rpc::new(3),
        }
    }
}

impl encompass_sim::Process for AuditFlushClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.node, "$AUDIT".into()),
            AuditMsg::Append {
                records: Vec::new(),
                force: true,
            },
            SimDuration::from_millis(100),
            0,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if self.rpc.accept(ctx, payload).is_ok() {
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            ctx.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "audit-flush-client"
    }
}

pub(crate) fn apply(world: &mut World, action: &ChaosAction) {
    match action {
        ChaosAction::Fault(f) => world.inject(f.clone()),
        ChaosAction::KillServiceCpu { node, service } => {
            if let Some(pid) = world.lookup_name(*node, service) {
                if world.cpu_up(*node, pid.cpu) {
                    world.inject(Fault::KillCpu(*node, pid.cpu));
                }
            }
        }
        ChaosAction::RestoreDownCpus { node } => {
            for c in 0..world.cpu_count(*node) {
                if !world.cpu_up(*node, CpuId(c)) {
                    world.inject(Fault::RestoreCpu(*node, CpuId(c)));
                }
            }
        }
        ChaosAction::KillServerProcess { node, nth } => {
            let mut servers = Vec::new();
            for c in 0..world.cpu_count(*node) {
                for pid in world.procs_on_cpu(*node, CpuId(c)) {
                    if world.process_kind(pid) == Some("server") && world.is_alive(pid) {
                        servers.push(pid);
                    }
                }
            }
            if !servers.is_empty() {
                world.inject(Fault::KillProcess(servers[nth % servers.len()]));
            }
        }
    }
}

pub(crate) fn heal_everything(world: &mut World, schedule: &Schedule) {
    world.inject(Fault::HealAllLinks);
    for n in 0..schedule.nodes as u8 {
        let node = NodeId(n);
        world.inject(Fault::HealBus(node, 0));
        world.inject(Fault::HealBus(node, 1));
        for c in 0..world.cpu_count(node) {
            if !world.cpu_up(node, CpuId(c)) {
                world.inject(Fault::RestoreCpu(node, CpuId(c)));
            }
        }
    }
}

/// Every transid any node's Monitor Audit Trail records as committed,
/// sorted and deduplicated — the ground truth the timeline-completeness
/// test checks flight records against.
pub(crate) fn committed_transids(world: &World, nodes: &[NodeId]) -> Vec<FlightTransid> {
    let mut out: Vec<FlightTransid> = Vec::new();
    for &node in nodes {
        let Some(trail) = world.stable().get::<MonitorTrail>(&monitor_key(node)) else {
            continue;
        };
        out.extend(
            trail
                .records
                .iter()
                .filter(|r| r.committed)
                .map(|r| r.transid.flight_id()),
        );
    }
    out.sort();
    out.dedup();
    out
}

/// Oracle: a transid is committed everywhere or aborted everywhere, as
/// judged by each node's Monitor Audit Trail.
pub(crate) fn check_atomicity(
    world: &mut World,
    nodes: &[NodeId],
    violations: &mut Vec<String>,
    implicated: &mut Vec<Transid>,
) {
    let mut first_seen: HashMap<Transid, (bool, NodeId)> = HashMap::new();
    for &node in nodes {
        let Some(trail) = world.stable().get::<MonitorTrail>(&monitor_key(node)) else {
            continue;
        };
        for rec in &trail.records {
            match first_seen.get(&rec.transid) {
                None => {
                    first_seen.insert(rec.transid, (rec.committed, node));
                }
                Some(&(committed, first_node)) if committed != rec.committed => {
                    implicated.push(rec.transid);
                    violations.push(format!(
                        "atomicity: {:?} is {} on {first_node} but {} on {node}",
                        rec.transid,
                        outcome(committed),
                        outcome(rec.committed),
                    ));
                }
                Some(_) => {}
            }
        }
    }
}

fn outcome(committed: bool) -> &'static str {
    if committed {
        "committed"
    } else {
        "aborted"
    }
}

/// Oracle: money is conserved. Every committed debit appended exactly one
/// history record (`account:amount`), and backout removed the records of
/// every aborted transaction, so the history file's sum must equal the
/// total drained from the account balances.
pub(crate) fn check_conservation(
    world: &mut World,
    catalog: &encompass_storage::Catalog,
    nodes: &[NodeId],
    violations: &mut Vec<String>,
) {
    let initial_total = ACCOUNTS as i64 * 1000;
    let final_total = total_balance(world, catalog, "accounts");
    let mut history_sum: i64 = 0;
    let mut history_records = 0usize;
    if let Some(media) = world
        .stable()
        .get::<VolumeMedia>(&media_key(nodes[0], "$BANK"))
    {
        if let Some(img) = media.file("history") {
            for (_, v) in img.scan(&[], None, usize::MAX) {
                history_records += 1;
                match parse_history_amount(&v) {
                    Some(a) => history_sum += a,
                    None => violations.push(format!(
                        "conservation: unparseable history record {:?}",
                        String::from_utf8_lossy(&v)
                    )),
                }
            }
        }
    }
    if initial_total - history_sum != final_total {
        violations.push(format!(
            "conservation: initial {initial_total} - {history_records} debits summing \
             {history_sum} != final {final_total} (off by {})",
            initial_total - history_sum - final_total
        ));
    }
}

fn parse_history_amount(v: &Bytes) -> Option<i64> {
    let s = std::str::from_utf8(v).ok()?;
    s.rsplit(':').next()?.parse().ok()
}

/// Oracle: ROLLFORWARD from the latest completed dump (the fuzzy online
/// archive, when one registered; the generation-0 snapshot otherwise)
/// plus every surviving audit trail reproduces the live media exactly.
pub(crate) fn check_convergence(
    world: &mut World,
    volumes: &[VolumeRef],
    trail_key_of: &BTreeMap<(NodeId, String), String>,
    violations: &mut Vec<String>,
) {
    for v in volumes {
        let generation = world
            .stable()
            .get::<DumpRegistry>(&dump_registry_key(v))
            .map(|r| r.generation)
            .unwrap_or(0);
        let keys: Vec<String> = trail_key_of
            .get(&(v.node, v.volume.clone()))
            .map(|k| vec![k.clone()])
            .unwrap_or_default();
        let live = snapshot_volume(world, v);
        let _ = rollforward_volume(world, v, &keys, generation);
        let rebuilt = snapshot_volume(world, v);
        if live != rebuilt {
            let detail = diff_summary(&live, &rebuilt);
            violations.push(format!(
                "durability: rollforward of {}.{} diverges from the live volume: {detail}",
                v.node, v.volume
            ));
        }
    }
}

type VolumeSnapshot = BTreeMap<String, Vec<(Bytes, Bytes)>>;

fn snapshot_volume(world: &World, v: &VolumeRef) -> VolumeSnapshot {
    let mut out = BTreeMap::new();
    if let Some(media) = world.stable().get::<VolumeMedia>(&media_key(v.node, &v.volume)) {
        for (name, img) in &media.files {
            out.insert(name.clone(), img.scan(&[], None, usize::MAX));
        }
    }
    out
}

fn diff_summary(live: &VolumeSnapshot, rebuilt: &VolumeSnapshot) -> String {
    for (name, records) in live {
        match rebuilt.get(name) {
            None => return format!("file {name} missing after recovery"),
            Some(r) if r != records => {
                let mismatches: Vec<String> = records
                    .iter()
                    .filter(|(k, v)| {
                        r.iter().find(|(k2, _)| k2 == k).map(|(_, v2)| v2) != Some(v)
                    })
                    .map(|(k, v)| {
                        let recovered = r
                            .iter()
                            .find(|(k2, _)| k2 == k)
                            .map(|(_, v2)| String::from_utf8_lossy(v2).into_owned());
                        format!(
                            "{}: live {:?} recovered {recovered:?}",
                            String::from_utf8_lossy(k),
                            String::from_utf8_lossy(v)
                        )
                    })
                    .take(5)
                    .collect();
                return format!(
                    "file {name}: {} live vs {} recovered records [{}]",
                    records.len(),
                    r.len(),
                    mismatches.join("; ")
                );
            }
            Some(_) => {}
        }
    }
    for name in rebuilt.keys() {
        if !live.contains_key(name) {
            return format!("file {name} appeared only after recovery");
        }
    }
    "no textual diff (ordering?)".to_string()
}
