//! Seeded fault-schedule generation.
//!
//! A schedule is a complete description of one chaos run: the cluster
//! shape, the workload knobs, and a timeline of fault/heal actions aimed
//! at the protocol's interesting windows (processor failures mid-phase-1,
//! partitions around the commit point, process kills during backout).
//! Everything is drawn from one seeded RNG, so the same seed always
//! produces the same schedule — and, because the simulator itself is
//! deterministic, the same run.
//!
//! Generation respects the repairability rules of the simulated hardware:
//!
//! * at most one processor of a node is down at a time (process-pairs are
//!   spread over adjacent CPUs, so two concurrent kills could take out
//!   both halves of a pair — a total failure, which is ROLLFORWARD's
//!   domain, not online recovery's);
//! * at most one interprocessor bus of a node is down at a time (the
//!   paper's dual-bus design tolerates any single bus failure);
//! * every destructive action is paired with a heal, and a final
//!   heal-everything barrier precedes the quiesce phase.

use encompass_sim::{CpuId, Fault, LinkId, NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One action on the chaos timeline. `Fault` variants are injected
/// verbatim; the other variants need the live world to resolve (a service
/// name to its current primary, the set of processors currently down),
/// which the runner does at injection time — still deterministically,
/// since the world itself is deterministic.
#[derive(Clone, Debug)]
pub enum ChaosAction {
    /// Inject a raw simulator fault.
    Fault(Fault),
    /// Kill the processor currently hosting the named service's primary
    /// (e.g. `$TMP` — the satellite window: the primary dying between the
    /// commit record and the drop-checkpoint).
    KillServiceCpu { node: NodeId, service: String },
    /// Restore every processor of `node` that is currently down.
    RestoreDownCpus { node: NodeId },
    /// Kill one application server process on `node` (the `nth` of the
    /// node's live `server`-kind processes, wrapping). Models an
    /// application failure as distinct from a CPU failure; the server
    /// class monitor respawns it.
    KillServerProcess { node: NodeId, nth: usize },
}

/// A timestamped action.
#[derive(Clone, Debug)]
pub struct ScheduledEvent {
    pub at: SimTime,
    pub action: ChaosAction,
}

/// One planned ONLINEDUMP: at `at`, dump every volume of `node` as
/// archive `generation`. Dumps are anchored shortly before a scheduled
/// CPU kill when the timeline has one, so the sweep routinely exercises
/// faults landing mid-copy.
#[derive(Clone, Debug)]
pub struct ScheduledDump {
    pub at: SimTime,
    pub node: NodeId,
    pub generation: u64,
}

/// A complete chaos run description.
#[derive(Clone, Debug)]
pub struct Schedule {
    pub seed: u64,
    pub nodes: usize,
    pub cpus_per_node: u8,
    pub terminals_per_node: usize,
    pub transactions_per_terminal: u64,
    pub hot_fraction: f64,
    /// Group-commit window, in microseconds (0 = immediate forces, the
    /// pre-boxcarring behavior). Most schedules draw a nonzero window so
    /// the sweep exercises boxcar takeovers.
    pub group_commit_window_us: u64,
    pub events: Vec<ScheduledEvent>,
    /// When the final heal-everything barrier runs.
    pub heal_at: SimTime,
    /// Run the ONLINEDUMP plan below and the TMP's trail purge pass.
    /// Off by default (`--dumps` turns it on) so legacy schedules replay
    /// their historical traces unchanged; the plan itself is drawn for
    /// every seed, after all other draws, so enabling it never shifts
    /// the fault timeline.
    pub dumps_enabled: bool,
    pub dumps: Vec<ScheduledDump>,
    /// TMP trail-capacity purge interval (µs), used when dumps run.
    pub trail_purge_interval_us: u64,
    /// Audit-trail rotation size when dumps run (small, so capacity
    /// purging has whole files to drop within a short run).
    pub audit_rotate_every: usize,
    /// Audited volumes per node the bank app spreads its accounts over
    /// (`$BANK`, `$BANK1`, …).
    pub volumes_per_node: usize,
    /// Audit-trail partitions per AUDITPROCESS.
    pub audit_partitions: usize,
    /// Read-only (snapshot) terminals per node, appended after the
    /// read-write terminals so a zero here reproduces historical runs
    /// byte-for-byte.
    pub readonly_terminals_per_node: usize,
    /// Run the soak plan below instead of the short timeline above.
    /// Off by default (`--soak` turns it on); the plan is drawn for
    /// every seed, after all other draws, so enabling it never shifts
    /// the short-run fault timeline and the non-soak corpus replays
    /// byte-identical traces.
    pub soak_enabled: bool,
    pub soak: SoakPlan,
}

/// One soak epoch's fault-and-dump plan.
#[derive(Clone, Debug)]
pub struct SoakEpoch {
    /// Node whose processor dies this epoch.
    pub kill_node: NodeId,
    /// Processor killed when `kill_service` is `None`.
    pub kill_cpu: CpuId,
    /// When `Some`, kill the processor hosting this service's primary
    /// instead of `kill_cpu` — the takeover window aimed at a specific
    /// process pair.
    pub kill_service: Option<String>,
    /// Node whose volumes ONLINEDUMP this epoch (one rolling dump
    /// generation per volume of the node).
    pub dump_node: NodeId,
}

/// The `--soak` tier's plan: simulated hours per seed, structured as
/// repeating epochs of kill → dump → restore waves with long-lived
/// writer and snapshot-reader transactions spanning the epochs, plus an
/// optional full-disaster drill (both mirrored drives of one volume
/// lost mid-traffic, ROLLFORWARD from the latest fuzzy archive while
/// the survivors keep serving).
#[derive(Clone, Debug)]
pub struct SoakPlan {
    /// Number of fault epochs.
    pub epochs: usize,
    /// Epoch length in microseconds; the horizon is `epochs * gap` plus
    /// the run-out, at least one simulated hour.
    pub epoch_gap_us: u64,
    /// Per-epoch draws, one entry per epoch.
    pub plan: Vec<SoakEpoch>,
    /// `Some((epoch, slot))`: during that epoch, fail both mirrored
    /// drives of the volume at `slot` (modulo the actual slot count),
    /// then recover it with ROLLFORWARD from the registry archive while
    /// traffic continues elsewhere.
    pub disaster: Option<(usize, usize)>,
    /// Terminal think time (ms) — soak terminals pace themselves over
    /// the horizon instead of burning through their budget up front.
    pub think_ms: u64,
    /// Transactions per terminal over the whole horizon.
    pub transactions_per_terminal: u64,
    /// Pause between a soak reader's snapshot reads (ms) — long enough
    /// that the small snapshot-undo ring overflows under it and the
    /// reader exercises the `SnapshotTooOld` restart path.
    pub reader_pause_ms: u64,
    /// How many epochs a soak writer holds its transaction open.
    pub writer_hold_epochs: u64,
    /// TMP trail purge interval (µs) while soaking — seconds, not the
    /// aggressive short-run value.
    pub trail_purge_interval_us: u64,
}

impl Schedule {
    /// Generate the schedule for `seed`.
    pub fn generate(seed: u64) -> Schedule {
        // decouple the schedule stream from the workload stream (the app
        // seeds its own RNGs from the same seed)
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5CED);
        let nodes = rng.random_range(2..=3usize);
        let cpus_per_node: u8 = 4;
        let terminals_per_node = rng.random_range(2..=3usize);
        let transactions_per_terminal = rng.random_range(4..=8u64);
        let hot_fraction = if rng.random_bool(0.3) { 0.25 } else { 0.0 };
        let group_commit_window_us = match rng.random_range(0..5u8) {
            0 | 1 => 0,
            2 => 1_000,
            3 => 2_000,
            _ => 5_000,
        };

        let n_links = (nodes * (nodes - 1) / 2) as u32;
        let services = ["$TMP", "$TMP", "$BANK", "$BACKOUT", "$AUDIT"];

        let mut events: Vec<ScheduledEvent> = Vec::new();
        // per-node time (µs) before which no new CPU kill may start
        let mut cpu_free_at = vec![0u64; nodes];
        // per-node time before which no new bus kill may start
        let mut bus_free_at = vec![0u64; nodes];

        let mut t: u64 = 100_000 + rng.random_range(0..100_000u64);
        let n_faults = rng.random_range(3..=8usize);
        let mut last = t;
        // CPU-kill start times (µs), collected as anchors for the dump plan
        let mut kill_starts: Vec<u64> = Vec::new();
        for _ in 0..n_faults {
            t += rng.random_range(30_000..250_000u64);
            let heal_after = rng.random_range(80_000..500_000u64);
            let node = NodeId(rng.random_range(0..nodes as u8));
            let ni = node.0 as usize;
            match rng.random_range(0..8u8) {
                // 0-1: kill a random processor
                0 | 1 => {
                    if t < cpu_free_at[ni] {
                        continue; // this node is already degraded
                    }
                    let cpu = CpuId(rng.random_range(0..cpus_per_node));
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t),
                        action: ChaosAction::Fault(Fault::KillCpu(node, cpu)),
                    });
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t + heal_after),
                        action: ChaosAction::RestoreDownCpus { node },
                    });
                    cpu_free_at[ni] = t + heal_after + 50_000;
                    kill_starts.push(t);
                }
                // 2-3: kill the processor hosting a service primary
                2 | 3 => {
                    if t < cpu_free_at[ni] {
                        continue;
                    }
                    let service = if rng.random_bool(0.2) {
                        format!("$TCP{}", node.0)
                    } else {
                        services[rng.random_range(0..services.len())].to_string()
                    };
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t),
                        action: ChaosAction::KillServiceCpu { node, service },
                    });
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t + heal_after),
                        action: ChaosAction::RestoreDownCpus { node },
                    });
                    cpu_free_at[ni] = t + heal_after + 50_000;
                    kill_starts.push(t);
                }
                // 4: one interprocessor bus
                4 => {
                    if t < bus_free_at[ni] {
                        continue;
                    }
                    let bus = rng.random_range(0..2u8);
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t),
                        action: ChaosAction::Fault(Fault::KillBus(node, bus)),
                    });
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t + heal_after),
                        action: ChaosAction::Fault(Fault::HealBus(node, bus)),
                    });
                    bus_free_at[ni] = t + heal_after + 50_000;
                }
                // 5: partition one node from the rest
                5 => {
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t),
                        action: ChaosAction::Fault(Fault::Partition(vec![node])),
                    });
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t + heal_after),
                        action: ChaosAction::Fault(Fault::HealAllLinks),
                    });
                }
                // 6: cut a single link
                6 => {
                    let link = LinkId(rng.random_range(0..n_links.max(1)));
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t),
                        action: ChaosAction::Fault(Fault::CutLink(link)),
                    });
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t + heal_after),
                        action: ChaosAction::Fault(Fault::HealLink(link)),
                    });
                }
                // 7: kill an application server process
                _ => {
                    events.push(ScheduledEvent {
                        at: SimTime::from_micros(t),
                        action: ChaosAction::KillServerProcess {
                            node,
                            nth: rng.random_range(0..8usize),
                        },
                    });
                }
            }
            last = last.max(t + heal_after);
        }
        events.sort_by_key(|e| e.at);
        let heal_at = SimTime::from_micros(last + 300_000);

        // ONLINEDUMP plan — drawn last so the draws above are a stable
        // prefix: a seed's fault timeline is identical with or without
        // dumps. Each dump starts ~30ms before a scheduled CPU kill (when
        // there is one) so takeovers land mid-copy.
        let n_dumps = rng.random_range(1..=2usize);
        let mut dumps = Vec::new();
        for _ in 0..n_dumps {
            let node = NodeId(rng.random_range(0..nodes as u8));
            let at = if kill_starts.is_empty() {
                150_000 + rng.random_range(0..200_000u64)
            } else {
                let anchor = kill_starts[rng.random_range(0..kill_starts.len())];
                anchor.saturating_sub(30_000).max(50_000)
            };
            dumps.push(ScheduledDump {
                at: SimTime::from_micros(at),
                node,
                generation: 0,
            });
        }
        dumps.sort_by_key(|d| d.at);
        // generation 0 is the runner's pre-run snapshot; dumps count up
        // from 1 in timeline order so the registry never rolls back
        for (i, d) in dumps.iter_mut().enumerate() {
            d.generation = i as u64 + 1;
        }
        let trail_purge_interval_us = rng.random_range(40_000..=150_000u64);
        // small trail files so a short run rotates (and can purge) several
        let audit_rotate_every = rng.random_range(16..=64usize);
        // trail-partitioning plan — drawn after everything else so every
        // draw above keeps its historical value for a given seed
        let volumes_per_node = rng.random_range(1..=2usize);
        let audit_partitions = rng.random_range(1..=3usize);
        // read-only client plan — drawn after ALL other draws so every
        // draw above keeps its historical value for a given seed, and a
        // sweep run with `--readers 0` replays historical traces unchanged
        let readonly_terminals_per_node = rng.random_range(0..=2usize);

        // soak plan — drawn after ALL other draws, for the same reason:
        // the short-run corpus replays byte-identical whether or not a
        // binary that knows about `--soak` generated the schedule
        let soak_epochs = rng.random_range(6..=9usize);
        let soak_total_us = rng.random_range(3_700_000_000..=4_500_000_000u64);
        let mut soak_plan = Vec::with_capacity(soak_epochs);
        for _ in 0..soak_epochs {
            let kill_node = NodeId(rng.random_range(0..nodes as u8));
            let kill_cpu = CpuId(rng.random_range(0..cpus_per_node));
            let kill_service = if rng.random_bool(0.4) {
                Some(if rng.random_bool(0.2) {
                    format!("$TCP{}", kill_node.0)
                } else {
                    services[rng.random_range(0..services.len())].to_string()
                })
            } else {
                None
            };
            let dump_node = NodeId(rng.random_range(0..nodes as u8));
            soak_plan.push(SoakEpoch {
                kill_node,
                kill_cpu,
                kill_service,
                dump_node,
            });
        }
        let disaster_roll = rng.random_range(0..4u8);
        let disaster_epoch = rng.random_range(1..soak_epochs);
        let disaster_slot = rng.random_range(0..16usize);
        let soak = SoakPlan {
            epochs: soak_epochs,
            epoch_gap_us: soak_total_us / soak_epochs as u64,
            plan: soak_plan,
            disaster: (disaster_roll == 0).then_some((disaster_epoch, disaster_slot)),
            think_ms: rng.random_range(15_000..=30_000u64),
            transactions_per_terminal: rng.random_range(120..=180u64),
            reader_pause_ms: rng.random_range(45_000..=90_000u64),
            writer_hold_epochs: 2,
            trail_purge_interval_us: rng.random_range(5_000_000..=15_000_000u64),
        };

        Schedule {
            seed,
            nodes,
            cpus_per_node,
            terminals_per_node,
            transactions_per_terminal,
            hot_fraction,
            group_commit_window_us,
            events,
            heal_at,
            dumps_enabled: false,
            dumps,
            trail_purge_interval_us,
            audit_rotate_every,
            volumes_per_node,
            audit_partitions,
            readonly_terminals_per_node,
            soak_enabled: false,
            soak,
        }
    }

    /// Human-readable timeline, for failure reports.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "seed {}: {} nodes x {} cpus, {} terminals/node x {} txns, hot {:.2}, gc-window {}us, \
             {} vols/node, {} trail partitions, {} readers/node\n",
            self.seed,
            self.nodes,
            self.cpus_per_node,
            self.terminals_per_node,
            self.transactions_per_terminal,
            self.hot_fraction,
            self.group_commit_window_us,
            self.volumes_per_node,
            self.audit_partitions,
            self.readonly_terminals_per_node,
        );
        for ev in &self.events {
            let what = match &ev.action {
                ChaosAction::Fault(f) => f.label(),
                ChaosAction::KillServiceCpu { node, service } => {
                    format!("kill-service-cpu {node} {service}")
                }
                ChaosAction::RestoreDownCpus { node } => format!("restore-down-cpus {node}"),
                ChaosAction::KillServerProcess { node, nth } => {
                    format!("kill-server {node} #{nth}")
                }
            };
            out.push_str(&format!("  t={:>7}ms  {}\n", ev.at.as_millis(), what));
        }
        out.push_str(&format!("  t={:>7}ms  heal-everything\n", self.heal_at.as_millis()));
        if self.dumps_enabled {
            for d in &self.dumps {
                out.push_str(&format!(
                    "  t={:>7}ms  online-dump {} gen {}\n",
                    d.at.as_millis(),
                    d.node,
                    d.generation
                ));
            }
            out.push_str(&format!(
                "  trail-purge every {}us, rotate every {} records\n",
                self.trail_purge_interval_us, self.audit_rotate_every
            ));
        }
        if self.soak_enabled {
            let s = &self.soak;
            out.push_str(&format!(
                "  soak: {} epochs x {}s, {} txns/terminal think {}ms, reader pause {}ms, \
                 writer hold {} epochs, trail-purge every {}ms\n",
                s.epochs,
                s.epoch_gap_us / 1_000_000,
                s.transactions_per_terminal,
                s.think_ms,
                s.reader_pause_ms,
                s.writer_hold_epochs,
                s.trail_purge_interval_us / 1_000,
            ));
            for (e, ep) in s.plan.iter().enumerate() {
                let kill = match &ep.kill_service {
                    Some(svc) => format!("kill-service-cpu {} {}", ep.kill_node, svc),
                    None => format!("kill-cpu {} cpu{}", ep.kill_node, ep.kill_cpu.0),
                };
                out.push_str(&format!(
                    "  soak epoch {e}: {kill}, dump {}\n",
                    ep.dump_node
                ));
            }
            if let Some((epoch, slot)) = s.disaster {
                out.push_str(&format!(
                    "  soak disaster drill: epoch {epoch}, volume slot {slot}\n"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = Schedule::generate(42).describe();
        let b = Schedule::generate(42).describe();
        assert_eq!(a, b);
    }

    #[test]
    fn soak_plan_is_deterministic_and_at_least_an_hour() {
        for seed in 0..50 {
            let mut a = Schedule::generate(seed);
            let mut b = Schedule::generate(seed);
            a.soak_enabled = true;
            b.soak_enabled = true;
            assert_eq!(a.describe(), b.describe());
            let s = &a.soak;
            assert!(s.epochs as u64 * s.epoch_gap_us >= 3_600_000_000);
            assert_eq!(s.plan.len(), s.epochs);
            if let Some((epoch, _)) = s.disaster {
                assert!(epoch >= 1 && epoch < s.epochs, "seed {seed}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        // not guaranteed for every pair, but these two must not collide
        assert_ne!(
            Schedule::generate(1).describe(),
            Schedule::generate(2).describe()
        );
    }

    #[test]
    fn every_cpu_kill_is_healed_and_serialized_per_node() {
        for seed in 0..50 {
            let s = Schedule::generate(seed);
            let mut down: Vec<Option<SimTime>> = vec![None; s.nodes];
            for ev in &s.events {
                match &ev.action {
                    ChaosAction::Fault(Fault::KillCpu(n, _))
                    | ChaosAction::KillServiceCpu { node: n, .. } => {
                        assert!(
                            down[n.0 as usize].is_none(),
                            "seed {seed}: overlapping cpu kills on {n}"
                        );
                        down[n.0 as usize] = Some(ev.at);
                    }
                    ChaosAction::RestoreDownCpus { node } => {
                        down[node.0 as usize] = None;
                    }
                    _ => {}
                }
            }
            // anything still down is caught by the final heal barrier
            assert!(s.heal_at > SimTime::ZERO);
        }
    }
}
