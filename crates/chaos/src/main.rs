//! Chaos-sweep CLI.
//!
//! ```text
//! encompass-chaos --seed N            # one schedule, verbose, run twice
//! encompass-chaos --sweep COUNT       # seeds 0..COUNT
//! encompass-chaos --sweep COUNT --start S
//! encompass-chaos --sweep 10 --window 2000   # force a 2ms group-commit window
//! encompass-chaos                     # default: the 25-schedule CI smoke
//! ```
//!
//! Exit status is non-zero if any run violates an invariant (or a seed
//! fails to reproduce its own determinism hash).

use encompass_chaos::{
    run_schedule, run_schedule_with, run_soak_schedule, run_soak_schedule_with, RunReport, Schedule,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut sweep: Option<u64> = None;
    let mut start: u64 = 0;
    let mut window: Option<u64> = None;
    let mut dumps = false;
    let mut partitions: Option<u64> = None;
    let mut readers: Option<u64> = None;
    let mut soak = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = Some(parse_num(args.get(i + 1), "--seed"));
                i += 2;
            }
            "--sweep" => {
                sweep = Some(parse_num(args.get(i + 1), "--sweep"));
                i += 2;
            }
            "--start" => {
                start = parse_num(args.get(i + 1), "--start");
                i += 2;
            }
            "--window" => {
                window = Some(parse_num(args.get(i + 1), "--window"));
                i += 2;
            }
            "--dumps" => {
                dumps = true;
                i += 1;
            }
            "--partitions" => {
                let n = parse_num(args.get(i + 1), "--partitions");
                if n == 0 {
                    eprintln!("--partitions needs a value >= 1");
                    std::process::exit(2);
                }
                partitions = Some(n);
                i += 2;
            }
            "--readers" => {
                readers = Some(parse_num(args.get(i + 1), "--readers"));
                i += 2;
            }
            "--soak" => {
                soak = true;
                i += 1;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                print_usage();
                std::process::exit(2);
            }
        }
    }

    let failed = if soak {
        match (seed, sweep) {
            (Some(s), _) => run_soak_single(s, window, dumps, partitions, readers),
            (None, Some(count)) => run_soak_sweep(start, count, window, dumps, partitions, readers),
            (None, None) => run_soak_sweep(0, 3, window, dumps, partitions, readers), // CI smoke
        }
    } else {
        match (seed, sweep) {
            (Some(s), _) => run_single(s, window, dumps, partitions, readers),
            (None, Some(count)) => run_sweep(start, count, window, dumps, partitions, readers),
            (None, None) => run_sweep(0, 25, window, dumps, partitions, readers), // CI smoke default
        }
    };
    if failed {
        std::process::exit(1);
    }
}

/// Generate the schedule for `seed`, overriding the drawn group-commit
/// window when `--window US` was given, enabling the online-dump plan
/// when `--dumps` was, forcing both the audit-partition count and
/// the volumes-per-node to N when `--partitions N` was, and pinning the
/// read-only terminal count when `--readers N` was (`--readers 0`
/// replays every seed's historical trace byte-for-byte).
fn schedule_for(
    seed: u64,
    window: Option<u64>,
    dumps: bool,
    partitions: Option<u64>,
    readers: Option<u64>,
) -> Schedule {
    let mut schedule = Schedule::generate(seed);
    if let Some(us) = window {
        schedule.group_commit_window_us = us;
    }
    if let Some(p) = partitions {
        schedule.audit_partitions = p as usize;
        schedule.volumes_per_node = (p as usize).min(2);
    }
    if let Some(r) = readers {
        schedule.readonly_terminals_per_node = r as usize;
    }
    schedule.dumps_enabled = dumps;
    schedule
}

fn parse_num(arg: Option<&String>, flag: &str) -> u64 {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn print_usage() {
    println!(
        "usage: encompass-chaos [--seed N | --sweep COUNT [--start S]] [--window US] [--dumps] \
         [--partitions N] [--readers N] [--soak]\n\
         default: --sweep 25 (the CI smoke subset)\n\
         --window US overrides each schedule's group-commit window (microseconds)\n\
         --dumps enables each schedule's online-dump plan + trail purging\n\
         --partitions N forces N audit-trail partitions (and up to 2 volumes per node)\n\
         --readers N forces N read-only (snapshot) terminals per node; 0 replays\n\
         historical schedules byte-for-byte\n\
         --soak runs each seed as a simulated-hours soak (epochs of kill/dump/restore\n\
         waves, long-hold writers, long-lived snapshot readers, liveness +\n\
         bounded-state oracles, and for a quarter of seeds a full-disaster drill)"
    );
}

/// One soak seed, verbose, run twice (second run records) with the
/// determinism-hash cross-check, like [`run_single`].
fn run_soak_single(
    seed: u64,
    window: Option<u64>,
    dumps: bool,
    partitions: Option<u64>,
    readers: Option<u64>,
) -> bool {
    let mut schedule = schedule_for(seed, window, dumps, partitions, readers);
    schedule.soak_enabled = true;
    print!("{}", schedule.describe());
    let a = run_soak_schedule(&schedule);
    let b = run_soak_schedule_with(&schedule, true);
    println!("{}", a.summary_line());
    if let Some(d) = &a.drill {
        println!("  disaster drill: {d}");
    }
    let mut failed = false;
    if a.run.trace_hash != b.run.trace_hash {
        println!(
            "DETERMINISM VIOLATION: recorded rerun produced hash {:016x} != {:016x}",
            b.run.trace_hash, a.run.trace_hash
        );
        failed = true;
    }
    for v in &a.run.violations {
        println!("  violation: {v}");
        failed = true;
    }
    if failed {
        dump_flight(&b.run);
    } else {
        println!("seed {seed}: all soak invariants hold, deterministic");
    }
    failed
}

fn run_soak_sweep(
    start: u64,
    count: u64,
    window: Option<u64>,
    dumps: bool,
    partitions: Option<u64>,
    readers: Option<u64>,
) -> bool {
    let mut failures = 0u64;
    let mut restarts = 0u64;
    let mut holds = 0u64;
    let mut drills = 0u64;
    let mut respawns = 0u64;
    for seed in start..start + count {
        let mut schedule = schedule_for(seed, window, dumps, partitions, readers);
        schedule.soak_enabled = true;
        let report = run_soak_schedule(&schedule);
        println!("{}", report.summary_line());
        restarts += report.reader_restarts;
        holds += report.writer_commits;
        respawns += report.client_respawns;
        if report.drill.is_some() {
            drills += 1;
        }
        if !report.ok() {
            failures += 1;
            println!("--- failing schedule (repro: --soak --seed {seed}) ---");
            print!("{}", report.run.schedule_desc);
            for v in &report.run.violations {
                println!("  violation: {v}");
            }
            let recorded = run_soak_schedule_with(&schedule, true);
            dump_flight(&recorded.run);
        }
    }
    println!(
        "soaked {count} schedules: {} ok, {failures} failed \
         ({restarts} reader restarts, {holds} long-hold commits, {respawns} client respawns, \
         {drills} disaster drills)",
        count - failures
    );
    failures > 0
}

/// One seed, verbose: print the schedule, run it twice — the second time
/// with the flight recorder on — and require both runs to produce the
/// same determinism hash (which also pins recorder-off/on equivalence).
fn run_single(
    seed: u64,
    window: Option<u64>,
    dumps: bool,
    partitions: Option<u64>,
    readers: Option<u64>,
) -> bool {
    let schedule = schedule_for(seed, window, dumps, partitions, readers);
    print!("{}", schedule.describe());
    let a = run_schedule(&schedule);
    let b = run_schedule_with(&schedule, true);
    println!("{}", a.summary_line());
    let mut failed = false;
    if a.trace_hash != b.trace_hash {
        println!(
            "DETERMINISM VIOLATION: recorded rerun produced hash {:016x} != {:016x}",
            b.trace_hash, a.trace_hash
        );
        failed = true;
    }
    for v in &a.violations {
        println!("  violation: {v}");
        failed = true;
    }
    if failed {
        dump_flight(&b);
    } else {
        println!("seed {seed}: all invariants hold, deterministic");
    }
    failed
}

/// Print the implicated-transaction timelines of a recorded failing run
/// and export the full recorder state to `flightrec.json` (plus the
/// rendered timelines to `flight-timelines.txt`, for CI artifacts).
fn dump_flight(report: &RunReport) {
    let Some(flight) = &report.flight else {
        return;
    };
    if report.implicated.is_empty() {
        println!("  implicated transactions: none named by the oracles");
    } else {
        println!("  implicated transactions: {}", report.implicated.join(", "));
        for t in &flight.timelines {
            print!("{t}");
        }
        let rendered: String = flight.timelines.concat();
        if let Err(e) = std::fs::write("flight-timelines.txt", rendered) {
            println!("  could not write flight-timelines.txt: {e}");
        }
    }
    match std::fs::write("flightrec.json", &flight.json) {
        Ok(()) => println!("  flight records written to flightrec.json"),
        Err(e) => println!("  could not write flightrec.json: {e}"),
    }
}

fn run_sweep(
    start: u64,
    count: u64,
    window: Option<u64>,
    dumps: bool,
    partitions: Option<u64>,
    readers: Option<u64>,
) -> bool {
    let mut failures = 0u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut takeover_commits = 0u64;
    let mut dumps_done = 0u64;
    let mut purged_files = 0u64;
    for seed in start..start + count {
        let report = run_schedule(&schedule_for(seed, window, dumps, partitions, readers));
        println!("{}", report.summary_line());
        commits += report.commits;
        aborts += report.aborts;
        takeover_commits += report.takeover_commit_completions;
        dumps_done += report.dumps_completed;
        purged_files += report.purged_trail_files;
        if !report.ok() {
            failures += 1;
            println!("--- failing schedule (repro: --seed {seed}) ---");
            print!("{}", report.schedule_desc);
            for v in &report.violations {
                println!("  violation: {v}");
            }
            // recording is hash-neutral, so this replays the same run
            let recorded =
                run_schedule_with(&schedule_for(seed, window, dumps, partitions, readers), true);
            dump_flight(&recorded);
        }
    }
    println!(
        "swept {count} schedules: {} ok, {failures} failed \
         ({commits} commits, {aborts} aborts, {takeover_commits} commits completed by takeover)",
        count - failures
    );
    if dumps {
        println!(
            "online dumps: {dumps_done} completed, {purged_files} trail files purged"
        );
    }
    failures > 0
}
