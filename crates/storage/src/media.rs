//! Mirrored disc volumes as stable media.
//!
//! A [`VolumeMedia`] object lives in the simulation kernel's stable storage
//! (`encompass_sim::StableStorage`), so it survives the failure of the
//! DISCPROCESS pair's processors — the bits on the platters outlive the
//! software. Mirroring is modeled as one logical image guarded by two
//! independently failable drives: the volume serves I/O while at least one
//! drive is up; if *both* drives fail the content is scratched
//! (`lost = true`) and only ROLLFORWARD from an archive can restore it.
//!
//! The media holds only *flushed* state. Recent updates live in the
//! DISCPROCESS write-behind overlay (protected by checkpoints to the
//! backup), which is exactly why "audit records need not be written to
//! disc prior to updating the data base" holds in the NonStop design.

use crate::btree::BPlusTree;
use crate::entryseq::EntrySequencedFile;
use crate::relative::RelativeFile;
use crate::types::{key_num, FileOrganization, VolumeRef};
use bytes::Bytes;
use encompass_sim::NodeId;
use std::collections::BTreeMap;

/// The stable-storage key for a volume's media object.
pub fn media_key(node: NodeId, volume: &str) -> String {
    format!("{node}.{volume}")
}

/// The stable-storage key for generation `generation` of a volume archive.
pub fn archive_key(volume: &VolumeRef, generation: u64) -> String {
    format!("archive:{volume}:{generation}")
}

/// Stable-storage keys of archive generations a retention policy of
/// `retain` generations supersedes once generation `generation` is
/// registered: every `archive_key(volume, g)` with `g + retain <=
/// generation`. The caller deletes these only *after* the registry update
/// that makes the newer generation authoritative, so ROLLFORWARD can
/// always restore from any still-retained generation.
pub fn superseded_archive_keys(volume: &VolumeRef, generation: u64, retain: u64) -> Vec<String> {
    if generation < retain.max(1) {
        return Vec::new();
    }
    (0..=generation - retain.max(1))
        .map(|g| archive_key(volume, g))
        .collect()
}

/// The flushed content of one file.
#[derive(Clone, Debug)]
pub enum FileImage {
    KeySequenced(BPlusTree),
    Relative(RelativeFile),
    EntrySequenced(EntrySequencedFile),
}

impl FileImage {
    pub fn new(org: FileOrganization) -> FileImage {
        match org {
            FileOrganization::KeySequenced => FileImage::KeySequenced(BPlusTree::default()),
            FileOrganization::Relative => FileImage::Relative(RelativeFile::new()),
            FileOrganization::EntrySequenced => {
                FileImage::EntrySequenced(EntrySequencedFile::new())
            }
        }
    }

    pub fn organization(&self) -> FileOrganization {
        match self {
            FileImage::KeySequenced(_) => FileOrganization::KeySequenced,
            FileImage::Relative(_) => FileOrganization::Relative,
            FileImage::EntrySequenced(_) => FileOrganization::EntrySequenced,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            FileImage::KeySequenced(t) => t.len(),
            FileImage::Relative(f) => f.len(),
            FileImage::EntrySequenced(f) => f.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read by uniform byte key (relative/entry-sequenced keys are 8-byte
    /// big-endian numbers).
    pub fn read(&self, key: &[u8]) -> Option<Bytes> {
        match self {
            FileImage::KeySequenced(t) => t.get(key).cloned(),
            FileImage::Relative(f) => key_num(key).and_then(|n| f.get(n).cloned()),
            FileImage::EntrySequenced(f) => key_num(key).and_then(|n| f.get(n).cloned()),
        }
    }

    /// Write by uniform byte key: `Some` stores, `None` removes.
    pub fn apply(&mut self, key: &[u8], value: Option<Bytes>) {
        match self {
            FileImage::KeySequenced(t) => {
                match value {
                    Some(v) => {
                        t.insert(Bytes::copy_from_slice(key), v);
                    }
                    None => {
                        t.remove(key);
                    }
                };
            }
            FileImage::Relative(f) => {
                let n = key_num(key).expect("relative files use 8-byte numeric keys");
                match value {
                    Some(v) => {
                        f.set(n, v);
                    }
                    None => {
                        f.clear(n);
                    }
                }
            }
            FileImage::EntrySequenced(f) => {
                let n = key_num(key).expect("entry-sequenced files use 8-byte numeric keys");
                f.place(n, value);
            }
        }
    }

    /// Ordered scan by uniform byte key.
    pub fn scan(&self, low: &[u8], high: Option<&[u8]>, limit: usize) -> Vec<(Bytes, Bytes)> {
        match self {
            FileImage::KeySequenced(t) => t.range(low, high, limit),
            FileImage::Relative(f) => {
                let lo = key_num(low).unwrap_or(0);
                let hi = high.and_then(key_num);
                f.scan(lo, hi, limit)
                    .into_iter()
                    .map(|(n, v)| (crate::types::num_key(n), v))
                    .collect()
            }
            FileImage::EntrySequenced(f) => {
                let lo = key_num(low).unwrap_or(0);
                let hi = high.and_then(key_num);
                f.scan(lo, limit)
                    .into_iter()
                    .filter(|(n, _)| hi.map(|h| *n <= h).unwrap_or(true))
                    .map(|(n, v)| (crate::types::num_key(n), v))
                    .collect()
            }
        }
    }

    /// For entry-sequenced files: the next entry number on the media.
    pub fn next_entry(&self) -> u64 {
        match self {
            FileImage::EntrySequenced(f) => f.next_entry(),
            _ => 0,
        }
    }
}

/// A mirrored disc volume's persistent state.
pub struct VolumeMedia {
    pub name: String,
    /// Up/down state of the two mirrored drives.
    pub drives: [bool; 2],
    /// Flushed file images.
    pub files: BTreeMap<String, FileImage>,
    /// True once both drives have been down simultaneously: the content is
    /// gone and only ROLLFORWARD can rebuild it.
    pub lost: bool,
    /// Count of physical writes applied (metrics for experiments).
    pub physical_writes: u64,
}

impl VolumeMedia {
    pub fn new(name: &str) -> VolumeMedia {
        VolumeMedia {
            name: name.to_string(),
            drives: [true, true],
            files: BTreeMap::new(),
            lost: false,
            physical_writes: 0,
        }
    }

    /// Can the volume serve I/O?
    pub fn available(&self) -> bool {
        !self.lost && (self.drives[0] || self.drives[1])
    }

    /// Fail one drive. Failing the second loses the volume content.
    pub fn fail_drive(&mut self, drive: usize) {
        self.drives[drive & 1] = false;
        if !self.drives[0] && !self.drives[1] && !self.lost {
            self.lost = true;
            self.files.clear();
        }
    }

    /// Bring a drive back. (Revive of a lost volume yields an *empty*
    /// volume: the data must be rolled forward.)
    pub fn revive_drive(&mut self, drive: usize) {
        self.drives[drive & 1] = true;
    }

    /// After ROLLFORWARD has repopulated `files`, mark the content valid.
    pub fn mark_recovered(&mut self) {
        if self.drives[0] || self.drives[1] {
            self.lost = false;
        }
    }

    pub fn ensure_file(&mut self, name: &str, org: FileOrganization) -> &mut FileImage {
        self.files
            .entry(name.to_string())
            .or_insert_with(|| FileImage::new(org))
    }

    pub fn file(&self, name: &str) -> Option<&FileImage> {
        self.files.get(name)
    }

    /// Apply a flushed write. Panics if the volume is unavailable — the
    /// DISCPROCESS must check availability first.
    pub fn apply(&mut self, file: &str, org: FileOrganization, key: &[u8], value: Option<Bytes>) {
        assert!(self.available(), "write to unavailable volume {}", self.name);
        self.physical_writes += 1;
        self.ensure_file(file, org).apply(key, value);
    }
}

/// An archive of a volume, used by ROLLFORWARD.
///
/// Two kinds exist: instantaneous snapshots (`DiscRequest::Archive`, which
/// captures media+overlay in one event) and ONLINEDUMP *fuzzy* archives
/// copied page by page while transactions keep updating. For a snapshot
/// the image is transaction-consistent as of `audit_watermark`; for a
/// fuzzy dump `audit_watermark` is the volume's audit sequence number when
/// the dump *began*, and each page may reflect any state between begin and
/// end — recovery must REDO committed images after the watermark and UNDO
/// captured-but-uncommitted ones to converge.
#[derive(Clone)]
pub struct ArchiveImage {
    pub volume: VolumeRef,
    pub files: BTreeMap<String, FileImage>,
    /// Every image with `seq <= audit_watermark` by a transaction that
    /// released its locks before the archive began is fully reflected in
    /// `files`.
    pub audit_watermark: u64,
    /// Recovery from this archive needs no trail record below this
    /// sequence number: the lowest first-image seq of any transaction
    /// still holding locks when the archive began (clamped to
    /// `audit_watermark + 1` when none was active). The capacity manager
    /// may purge trail files entirely below the floor.
    pub purge_floor: u64,
    pub generation: u64,
}

/// The stable-storage key of a volume's dump registry.
pub fn dump_registry_key(volume: &VolumeRef) -> String {
    format!("dumpreg:{volume}")
}

/// Stable record of a volume's latest *completed* online dump — written by
/// the DUMPPROCESS only after the archive image and the DumpEnd trail
/// record are safely down. The TMP's trail-capacity manager reads it to
/// decide how far the volume's audit trail may be purged; ROLLFORWARD
/// reads it to pick the newest usable generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DumpRegistry {
    pub generation: u64,
    /// The completed dump's `audit_watermark`.
    pub watermark: u64,
    /// The completed dump's `purge_floor`: trail records below this are
    /// never needed by a recovery from this dump (nor by backout — any
    /// transaction old enough to have images below the floor released its
    /// locks before the dump began).
    pub purge_floor: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::num_key;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn uniform_key_interface_across_organizations() {
        for org in [
            FileOrganization::KeySequenced,
            FileOrganization::Relative,
            FileOrganization::EntrySequenced,
        ] {
            let mut img = FileImage::new(org);
            let key = match org {
                FileOrganization::KeySequenced => Bytes::from_static(b"alpha"),
                _ => num_key(3),
            };
            img.apply(&key, Some(b("v1")));
            assert_eq!(img.read(&key), Some(b("v1")), "{org:?}");
            assert_eq!(img.len(), 1);
            img.apply(&key, None);
            assert_eq!(img.read(&key), None);
            assert!(img.is_empty(), "{org:?}");
        }
    }

    #[test]
    fn scans_are_ordered_per_organization() {
        let mut ks = FileImage::new(FileOrganization::KeySequenced);
        ks.apply(b"b", Some(b("2")));
        ks.apply(b"a", Some(b("1")));
        let got = ks.scan(b"", None, 10);
        assert_eq!(got[0].0, Bytes::from_static(b"a"));

        let mut es = FileImage::new(FileOrganization::EntrySequenced);
        es.apply(&num_key(0), Some(b("x")));
        es.apply(&num_key(1), Some(b("y")));
        let got = es.scan(&num_key(0), Some(&num_key(0)), 10);
        assert_eq!(got.len(), 1);
        assert_eq!(es.next_entry(), 2);
    }

    #[test]
    fn mirror_tolerates_one_drive_failure() {
        let mut v = VolumeMedia::new("$DATA");
        v.apply("f", FileOrganization::KeySequenced, b"k", Some(b("v")));
        v.fail_drive(0);
        assert!(v.available());
        assert_eq!(v.file("f").unwrap().read(b"k"), Some(b("v")));
        v.revive_drive(0);
        assert!(v.available());
        assert_eq!(v.physical_writes, 1);
    }

    #[test]
    fn double_drive_failure_loses_content() {
        let mut v = VolumeMedia::new("$DATA");
        v.apply("f", FileOrganization::KeySequenced, b"k", Some(b("v")));
        v.fail_drive(0);
        v.fail_drive(1);
        assert!(!v.available());
        assert!(v.lost);
        assert!(v.files.is_empty());
        // reviving a drive alone does not bring the data back
        v.revive_drive(0);
        assert!(!v.available());
        // only after recovery is it marked usable again
        v.mark_recovered();
        assert!(v.available());
        assert!(v.file("f").is_none());
    }

    #[test]
    #[should_panic(expected = "unavailable volume")]
    fn write_to_lost_volume_panics() {
        let mut v = VolumeMedia::new("$DATA");
        v.fail_drive(0);
        v.fail_drive(1);
        v.apply("f", FileOrganization::KeySequenced, b"k", Some(b("v")));
    }

    #[test]
    fn media_and_archive_keys() {
        assert_eq!(media_key(NodeId(2), "$DATA1"), "\\N2.$DATA1");
        let vr = VolumeRef::new(NodeId(0), "$D");
        assert_eq!(archive_key(&vr, 3), "archive:\\N0.$D:3");
    }

    #[test]
    fn superseded_archives_keep_last_retain_generations() {
        let vr = VolumeRef::new(NodeId(0), "$D");
        // nothing to delete while fewer than `retain` generations exist
        assert!(superseded_archive_keys(&vr, 0, 2).is_empty());
        assert!(superseded_archive_keys(&vr, 1, 2).is_empty());
        // generation 3 with retain 2 keeps {2, 3}, deletes {0, 1}
        assert_eq!(
            superseded_archive_keys(&vr, 3, 2),
            vec![archive_key(&vr, 0), archive_key(&vr, 1)]
        );
        // retain 1 keeps only the newest
        assert_eq!(superseded_archive_keys(&vr, 2, 1).len(), 2);
        // a zero retain is clamped to 1: the newest survives regardless
        assert_eq!(superseded_archive_keys(&vr, 2, 0).len(), 2);
    }
}
