//! The decentralized lock manager.
//!
//! One instance lives inside each DISCPROCESS and covers *only* the
//! records and files resident on that volume — "concurrency control for
//! ENCOMPASS is decentralized … no central lock manager exists". Two
//! granularities are provided, record and file, both exclusive mode (the
//! only mode the paper's TMF offers). There is no block- or index-level
//! locking.
//!
//! Deadlock detection is by timeout: a request that cannot be granted
//! queues, and its DISCPROCESS arms a timer; if the timer fires first the
//! waiter is cancelled and the requester told to back off (typically via
//! `RESTART-TRANSACTION`).

use crate::types::Transid;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// What a lock covers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LockScope {
    /// The primary key of one logical record.
    Record { file: String, key: Bytes },
    /// A whole file (conflicts with every record lock in the file).
    File { file: String },
}

impl LockScope {
    pub fn file(&self) -> &str {
        match self {
            LockScope::Record { file, .. } => file,
            LockScope::File { file } => file,
        }
    }
}

/// Result of a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Acquire {
    /// Granted now (or the transaction already held it).
    Granted,
    /// Conflicts; the request is queued under the given waiter token.
    Queued,
}

/// A queued request that has just been granted by a release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrantedWaiter {
    pub token: u64,
    pub txn: Transid,
    pub scope: LockScope,
}

#[derive(Debug)]
struct WaitEntry {
    token: u64,
    txn: Transid,
}

#[derive(Default)]
struct LockQueue {
    holder: Option<Transid>,
    waiters: VecDeque<WaitEntry>,
}

/// Exclusive record + file locks for one volume.
#[derive(Default)]
pub struct LockManager {
    records: BTreeMap<(String, Bytes), LockQueue>,
    files: BTreeMap<String, LockQueue>,
    /// Per-file count of record locks held, per transaction — used to
    /// decide file-lock compatibility.
    file_record_holders: BTreeMap<String, BTreeMap<Transid, usize>>,
    /// Everything a transaction holds, for release_all.
    held: BTreeMap<Transid, Vec<LockScope>>,
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Number of locks held by `txn`.
    pub fn held_count(&self, txn: Transid) -> usize {
        self.held.get(&txn).map(|v| v.len()).unwrap_or(0)
    }

    /// Current holder of a scope, if locked.
    pub fn holder(&self, scope: &LockScope) -> Option<Transid> {
        match scope {
            LockScope::Record { file, key } => self
                .records
                .get(&(file.clone(), key.clone()))
                .and_then(|q| q.holder),
            LockScope::File { file } => self.files.get(file).and_then(|q| q.holder),
        }
    }

    /// Does `txn` hold this exact scope?
    pub fn holds(&self, txn: Transid, scope: &LockScope) -> bool {
        self.holder(scope) == Some(txn)
    }

    /// Every `(transaction, scope)` currently held — used to snapshot a
    /// DISCPROCESS for backup initialization. Waiters are deliberately
    /// excluded: their requesters retransmit and re-queue.
    pub fn holdings(&self) -> Vec<(Transid, LockScope)> {
        self.held
            .iter()
            .flat_map(|(t, scopes)| scopes.iter().map(move |s| (*t, s.clone())))
            .collect()
    }

    /// Total queued waiters (diagnostics).
    pub fn waiting(&self) -> usize {
        self.records
            .values()
            .chain(self.files.values())
            .map(|q| q.waiters.len())
            .sum()
    }

    fn record_compatible(&self, txn: Transid, file: &str, key: &Bytes) -> bool {
        if let Some(fq) = self.files.get(file) {
            match fq.holder {
                // a file lock by another transaction blocks all record locks
                Some(h) if h != txn => return false,
                Some(_) => {} // txn's own file lock covers its record locks
                None => {
                    // Fairness fence: once a file-lock waiter from another
                    // transaction is queued, record-lock requests from
                    // transactions that hold nothing in the file yet are
                    // refused — otherwise a stream of latecomers keeps the
                    // record-holder count non-zero and starves the file
                    // waiter until its timeout. Transactions already
                    // holding record locks in the file stay exempt (their
                    // further locks, and their own file-lock upgrade, must
                    // not deadlock against the fence).
                    let foreign_waiter = fq.waiters.iter().any(|w| w.txn != txn);
                    let already_in_file = self
                        .file_record_holders
                        .get(file)
                        .is_some_and(|m| m.contains_key(&txn));
                    if foreign_waiter && !already_in_file {
                        return false;
                    }
                }
            }
        }
        match self.records.get(&(file.to_string(), key.clone())) {
            Some(q) => q.holder.is_none() || q.holder == Some(txn),
            None => true,
        }
    }

    fn file_compatible(&self, txn: Transid, file: &str) -> bool {
        if let Some(fq) = self.files.get(file) {
            if let Some(h) = fq.holder {
                if h != txn {
                    return false;
                }
            }
            // NOTE: compatible file requests may overtake queued file
            // waiters — blocking on the queue would deadlock a transaction
            // that holds record locks against its own file-lock upgrade.
            // Record-lock latecomers, however, are fenced while a foreign
            // file waiter queues (see `record_compatible`), so the waiter
            // cannot be starved by a stream of new record locks.
        }
        // any record lock in the file by another transaction blocks it
        if let Some(holders) = self.file_record_holders.get(file) {
            if holders.keys().any(|h| *h != txn) {
                return false;
            }
        }
        true
    }

    /// Try to acquire; on conflict the request queues under `token`.
    /// Re-requesting a scope the transaction already holds is granted
    /// immediately (idempotent, for retried requests).
    pub fn acquire(&mut self, txn: Transid, scope: LockScope, token: u64) -> Acquire {
        if self.holds(txn, &scope) {
            return Acquire::Granted;
        }
        match &scope {
            LockScope::Record { file, key } => {
                if self.record_compatible(txn, file, key) {
                    self.grant_record(txn, file.clone(), key.clone());
                    Acquire::Granted
                } else {
                    self.records
                        .entry((file.clone(), key.clone()))
                        .or_default()
                        .waiters
                        .push_back(WaitEntry { token, txn });
                    Acquire::Queued
                }
            }
            LockScope::File { file } => {
                if self.file_compatible(txn, file) {
                    self.grant_file(txn, file.clone());
                    Acquire::Granted
                } else {
                    self.files
                        .entry(file.clone())
                        .or_default()
                        .waiters
                        .push_back(WaitEntry { token, txn });
                    Acquire::Queued
                }
            }
        }
    }

    fn grant_record(&mut self, txn: Transid, file: String, key: Bytes) {
        let q = self.records.entry((file.clone(), key.clone())).or_default();
        debug_assert!(q.holder.is_none() || q.holder == Some(txn));
        if q.holder != Some(txn) {
            q.holder = Some(txn);
            *self
                .file_record_holders
                .entry(file.clone())
                .or_default()
                .entry(txn)
                .or_insert(0) += 1;
            self.held
                .entry(txn)
                .or_default()
                .push(LockScope::Record { file, key });
        }
    }

    fn grant_file(&mut self, txn: Transid, file: String) {
        let q = self.files.entry(file.clone()).or_default();
        debug_assert!(q.holder.is_none() || q.holder == Some(txn));
        if q.holder != Some(txn) {
            q.holder = Some(txn);
            self.held
                .entry(txn)
                .or_default()
                .push(LockScope::File { file });
        }
    }

    /// Remove a queued waiter (its timeout fired, or its transaction was
    /// fenced). Returns `None` if the token is unknown; otherwise the
    /// queued requests its removal made grantable — cancelling a *file*
    /// waiter lifts the fairness fence, so fenced record waiters in that
    /// file may be granted and must be completed by the caller.
    pub fn cancel_waiter(&mut self, token: u64) -> Option<Vec<GrantedWaiter>> {
        let mut in_file: Option<String> = None;
        for ((file, _), q) in self.records.iter_mut() {
            if let Some(pos) = q.waiters.iter().position(|w| w.token == token) {
                q.waiters.remove(pos);
                in_file = Some(file.clone());
                break;
            }
        }
        if in_file.is_none() {
            for (file, q) in self.files.iter_mut() {
                if let Some(pos) = q.waiters.iter().position(|w| w.token == token) {
                    q.waiters.remove(pos);
                    in_file = Some(file.clone());
                    break;
                }
            }
        }
        let file = in_file?;
        let mut granted = Vec::new();
        self.wake_file(&file, &mut granted);
        self.wake_records_of_file(&file, &mut granted);
        Some(granted)
    }

    /// Release everything `txn` holds (phase two of commit, or the end of
    /// backout). Returns the queued requests that became grantable — the
    /// DISCPROCESS completes those operations.
    pub fn release_all(&mut self, txn: Transid) -> Vec<GrantedWaiter> {
        let scopes = self.held.remove(&txn).unwrap_or_default();
        let mut touched_files = Vec::new();
        for scope in &scopes {
            match scope {
                LockScope::Record { file, key } => {
                    if let Some(q) = self.records.get_mut(&(file.clone(), key.clone())) {
                        q.holder = None;
                    }
                    if let Some(holders) = self.file_record_holders.get_mut(file) {
                        if let Some(c) = holders.get_mut(&txn) {
                            *c -= 1;
                            if *c == 0 {
                                holders.remove(&txn);
                            }
                        }
                        if holders.is_empty() {
                            self.file_record_holders.remove(file);
                        }
                    }
                    touched_files.push(file.clone());
                }
                LockScope::File { file } => {
                    if let Some(q) = self.files.get_mut(file) {
                        q.holder = None;
                    }
                    touched_files.push(file.clone());
                }
            }
        }
        let mut granted = Vec::new();
        // wake record waiters on exactly the released records
        for scope in &scopes {
            if let LockScope::Record { file, key } = scope {
                self.wake_record(file, key, &mut granted);
            }
        }
        // re-evaluate file-lock queues of every touched file, and record
        // waiters blocked by a released file lock
        touched_files.sort();
        touched_files.dedup();
        for file in touched_files {
            self.wake_file(&file, &mut granted);
            self.wake_records_of_file(&file, &mut granted);
        }
        // drop empty queues to bound memory
        self.records
            .retain(|_, q| q.holder.is_some() || !q.waiters.is_empty());
        self.files
            .retain(|_, q| q.holder.is_some() || !q.waiters.is_empty());
        granted
    }

    fn wake_record(&mut self, file: &str, key: &Bytes, granted: &mut Vec<GrantedWaiter>) {
        let Some(q) = self.records.get_mut(&(file.to_string(), key.clone())) else {
            return;
        };
        if q.holder.is_some() {
            return;
        }
        let Some(front) = q.waiters.front() else {
            return;
        };
        let txn = front.txn;
        if !self.record_compatible(txn, file, key) {
            return;
        }
        let q = self
            .records
            .get_mut(&(file.to_string(), key.clone()))
            .expect("present above");
        let w = q.waiters.pop_front().expect("present above");
        self.grant_record(w.txn, file.to_string(), key.clone());
        // an exclusive grant blocks the rest of the queue
        granted.push(GrantedWaiter {
            token: w.token,
            txn: w.txn,
            scope: LockScope::Record {
                file: file.to_string(),
                key: key.clone(),
            },
        });
    }

    fn wake_file(&mut self, file: &str, granted: &mut Vec<GrantedWaiter>) {
        let Some(q) = self.files.get(file) else {
            return;
        };
        if q.holder.is_some() {
            return;
        }
        let Some(front) = q.waiters.front() else {
            return;
        };
        let txn = front.txn;
        // temporarily pop to evaluate compatibility without self-blocking
        let w = self
            .files
            .get_mut(file)
            .expect("present above")
            .waiters
            .pop_front()
            .expect("present above");
        if self.file_compatible(txn, file) {
            self.grant_file(w.txn, file.to_string());
            granted.push(GrantedWaiter {
                token: w.token,
                txn: w.txn,
                scope: LockScope::File {
                    file: file.to_string(),
                },
            });
        } else {
            self.files
                .get_mut(file)
                .expect("present above")
                .waiters
                .push_front(w);
        }
    }

    fn wake_records_of_file(&mut self, file: &str, granted: &mut Vec<GrantedWaiter>) {
        // a released file lock may unblock record waiters anywhere in the file
        let keys: Vec<Bytes> = self
            .records
            .iter()
            .filter(|((f, _), q)| f == file && q.holder.is_none() && !q.waiters.is_empty())
            .map(|((_, k), _)| k.clone())
            .collect();
        for key in keys {
            self.wake_record(file, &key, granted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::NodeId;

    fn t(seq: u64) -> Transid {
        Transid {
            home_node: NodeId(0),
            cpu: 0,
            seq,
        }
    }

    fn rec(file: &str, key: &str) -> LockScope {
        LockScope::Record {
            file: file.into(),
            key: Bytes::copy_from_slice(key.as_bytes()),
        }
    }

    fn fl(file: &str) -> LockScope {
        LockScope::File { file: file.into() }
    }

    #[test]
    fn exclusive_record_lock() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(t(1), rec("f", "k"), 100), Acquire::Granted);
        assert_eq!(lm.acquire(t(1), rec("f", "k"), 101), Acquire::Granted, "re-entrant");
        assert_eq!(lm.acquire(t(2), rec("f", "k"), 102), Acquire::Queued);
        assert_eq!(lm.holder(&rec("f", "k")), Some(t(1)));
        assert_eq!(lm.waiting(), 1);
        let granted = lm.release_all(t(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, t(2));
        assert_eq!(granted[0].token, 102);
        assert!(lm.holds(t(2), &rec("f", "k")));
    }

    #[test]
    fn fifo_waiter_order() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), 0);
        lm.acquire(t(2), rec("f", "k"), 1);
        lm.acquire(t(3), rec("f", "k"), 2);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1, "exclusive: only the first waiter granted");
        assert_eq!(g[0].txn, t(2));
        let g = lm.release_all(t(2));
        assert_eq!(g[0].txn, t(3));
    }

    #[test]
    fn file_lock_conflicts_with_record_locks() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), 0);
        assert_eq!(lm.acquire(t(2), fl("f"), 1), Acquire::Queued);
        // same txn's own record locks do not block its file lock
        assert_eq!(lm.acquire(t(1), fl("f"), 2), Acquire::Granted);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].scope, fl("f"));
        assert!(lm.holds(t(2), &fl("f")));
    }

    #[test]
    fn record_lock_blocked_by_file_lock() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), fl("f"), 0);
        assert_eq!(lm.acquire(t(2), rec("f", "x"), 1), Acquire::Queued);
        // other files unaffected — locking is per scope
        assert_eq!(lm.acquire(t(2), rec("g", "x"), 2), Acquire::Granted);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert!(lm.holds(t(2), &rec("f", "x")));
    }

    #[test]
    fn cancel_waiter_models_timeout() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), 0);
        lm.acquire(t(2), rec("f", "k"), 55);
        assert_eq!(lm.cancel_waiter(55), Some(Vec::new()));
        assert!(lm.cancel_waiter(55).is_none(), "already cancelled");
        let g = lm.release_all(t(1));
        assert!(g.is_empty(), "cancelled waiter is not granted");
        assert_eq!(lm.waiting(), 0);
    }

    #[test]
    fn release_all_spans_files_and_scopes() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("a", "x"), 0);
        lm.acquire(t(1), rec("b", "y"), 0);
        lm.acquire(t(1), fl("c"), 0);
        assert_eq!(lm.held_count(t(1)), 3);
        lm.acquire(t(2), rec("a", "x"), 1);
        lm.acquire(t(3), fl("b"), 2);
        lm.acquire(t(4), rec("c", "z"), 3);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 3, "one waiter per released scope: {g:?}");
        assert_eq!(lm.held_count(t(1)), 0);
    }

    #[test]
    fn file_waiter_fences_latecomer_record_locks() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), 0);
        // t2 queues for the file lock
        assert_eq!(lm.acquire(t(2), fl("f"), 1), Acquire::Queued);
        // t3 arrives later for a fresh record in f: fenced behind the
        // queued file waiter, even though the record itself is free
        assert_eq!(lm.acquire(t(3), rec("f", "b"), 2), Acquire::Queued);
        // other files are unaffected by the fence
        assert_eq!(lm.acquire(t(3), rec("g", "b"), 3), Acquire::Granted);
        // t1 already holds a record in f: its further locks overtake
        assert_eq!(lm.acquire(t(1), rec("f", "c"), 4), Acquire::Granted);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1, "file waiter granted first: {g:?}");
        assert_eq!(g[0].txn, t(2));
        assert_eq!(g[0].scope, fl("f"));
        // once the file lock releases, the fenced record waiter is granted
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, t(3));
        assert_eq!(g[0].scope, rec("f", "b"));
    }

    #[test]
    fn latecomer_stream_cannot_starve_file_waiter() {
        // Regression: previously each latecomer record lock was granted,
        // keeping the record-holder count non-zero forever, so the queued
        // file waiter starved until its timeout.
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), 0);
        assert_eq!(lm.acquire(t(2), fl("f"), 1), Acquire::Queued);
        // a stream of latecomers, arriving while t1 still works
        for (i, seq) in (3..8).enumerate() {
            assert_eq!(
                lm.acquire(t(seq), rec("f", &format!("k{seq}")), 10 + i as u64),
                Acquire::Queued,
                "latecomer t{seq} must be fenced"
            );
        }
        // as soon as the pre-existing holder finishes, the file waiter wins
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, t(2));
        assert!(lm.holds(t(2), &fl("f")));
    }

    #[test]
    fn same_transid_upgrade_overtakes_its_own_wait() {
        // the no-self-deadlock property: a transaction holding record locks
        // may take more record locks (and upgrade to the file lock) even
        // while its own file-lock request queues
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), 0);
        lm.acquire(t(2), rec("f", "b"), 1);
        assert_eq!(lm.acquire(t(1), fl("f"), 2), Acquire::Queued);
        assert_eq!(lm.acquire(t(1), rec("f", "c"), 3), Acquire::Granted);
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 1, "t1's own upgrade is granted: {g:?}");
        assert_eq!(g[0].txn, t(1));
        assert_eq!(g[0].scope, fl("f"));
    }

    #[test]
    fn cancelled_file_waiter_unfences_records() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), 0);
        assert_eq!(lm.acquire(t(2), fl("f"), 1), Acquire::Queued);
        assert_eq!(lm.acquire(t(3), rec("f", "b"), 2), Acquire::Queued);
        // the file waiter times out: the fence lifts and the fenced record
        // waiter is granted right away (record "b" was free all along)
        let g = lm.cancel_waiter(1).expect("file waiter present");
        assert_eq!(g.len(), 1, "fenced record waiter granted: {g:?}");
        assert_eq!(g[0].txn, t(3));
        assert_eq!(g[0].scope, rec("f", "b"));
        assert!(lm.holds(t(3), &rec("f", "b")));
    }

    #[test]
    fn no_two_holders_property() {
        // randomized interleaving sanity: at most one holder per scope
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut lm = LockManager::new();
        let mut tokens = 0u64;
        for _ in 0..2000 {
            let txn = t(rng.random_range(0..8));
            let key = format!("k{}", rng.random_range(0..5));
            match rng.random_range(0..3) {
                0 => {
                    tokens += 1;
                    let _ = lm.acquire(txn, rec("f", &key), tokens);
                }
                1 => {
                    tokens += 1;
                    let _ = lm.acquire(txn, fl("f"), tokens);
                }
                _ => {
                    let _ = lm.release_all(txn);
                }
            }
            // invariant: if a file lock is held, no other txn holds records
            if let Some(h) = lm.holder(&fl("f")) {
                for k in 0..5 {
                    let scope = rec("f", &format!("k{k}"));
                    if let Some(rh) = lm.holder(&scope) {
                        assert_eq!(rh, h, "file lock coexists only with own record locks");
                    }
                }
            }
        }
    }
}
