//! The decentralized lock manager.
//!
//! One instance lives inside each DISCPROCESS and covers *only* the
//! records and files resident on that volume — "concurrency control for
//! ENCOMPASS is decentralized … no central lock manager exists". Two
//! granularities are provided, record and file. The paper's TMF offers
//! exclusive mode only; this manager additionally provides shared record
//! locks and intent modes at file scope (Gray's hierarchical locking) so
//! read-only transactions can coexist with one another while writers
//! still serialize. Record locks held by a transaction imply an intent
//! lock on their file (IS for shared, IX for exclusive records), which is
//! what a file-scope request is tested against. There is no block- or
//! index-level locking.
//!
//! Deadlock detection is by timeout: a request that cannot be granted
//! queues, and its DISCPROCESS arms a timer; if the timer fires first the
//! waiter is cancelled and the requester told to back off (typically via
//! `RESTART-TRANSACTION`).

use crate::types::Transid;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// The lock modes. `Shared` and `Exclusive` apply to both scopes;
/// the intent modes only make sense at file scope, where they summarize
/// record-level activity below.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Read lock: compatible with other readers.
    Shared,
    /// Write lock: compatible with nothing.
    Exclusive,
    /// File-scope summary of shared record locks below.
    IntentShared,
    /// File-scope summary of exclusive record locks below.
    IntentExclusive,
}

impl LockMode {
    /// Gray's compatibility matrix (no SIX — nothing here needs it).
    pub fn compatible(self, other: LockMode) -> bool {
        match (self, other) {
            (LockMode::IntentShared, LockMode::IntentShared)
            | (LockMode::IntentShared, LockMode::IntentExclusive)
            | (LockMode::IntentShared, LockMode::Shared)
            | (LockMode::IntentExclusive, LockMode::IntentShared)
            | (LockMode::IntentExclusive, LockMode::IntentExclusive)
            | (LockMode::Shared, LockMode::IntentShared)
            | (LockMode::Shared, LockMode::Shared) => true,
            (LockMode::IntentShared, LockMode::Exclusive)
            | (LockMode::IntentExclusive, LockMode::Shared)
            | (LockMode::IntentExclusive, LockMode::Exclusive)
            | (LockMode::Shared, LockMode::IntentExclusive)
            | (LockMode::Shared, LockMode::Exclusive)
            | (LockMode::Exclusive, LockMode::IntentShared)
            | (LockMode::Exclusive, LockMode::IntentExclusive)
            | (LockMode::Exclusive, LockMode::Shared)
            | (LockMode::Exclusive, LockMode::Exclusive) => false,
        }
    }

    /// Does a grant in mode `self` satisfy a request for `req`?
    /// (Exclusive covers everything; Shared and IX cover IS.)
    pub fn covers(self, req: LockMode) -> bool {
        match (self, req) {
            (LockMode::Shared, LockMode::Shared)
            | (LockMode::Shared, LockMode::IntentShared)
            | (LockMode::Exclusive, LockMode::Shared)
            | (LockMode::Exclusive, LockMode::Exclusive)
            | (LockMode::Exclusive, LockMode::IntentShared)
            | (LockMode::Exclusive, LockMode::IntentExclusive)
            | (LockMode::IntentShared, LockMode::IntentShared)
            | (LockMode::IntentExclusive, LockMode::IntentShared)
            | (LockMode::IntentExclusive, LockMode::IntentExclusive) => true,
            (LockMode::Shared, LockMode::Exclusive)
            | (LockMode::Shared, LockMode::IntentExclusive)
            | (LockMode::IntentShared, LockMode::Shared)
            | (LockMode::IntentShared, LockMode::Exclusive)
            | (LockMode::IntentShared, LockMode::IntentExclusive)
            | (LockMode::IntentExclusive, LockMode::Shared)
            | (LockMode::IntentExclusive, LockMode::Exclusive) => false,
        }
    }

    /// The file-scope intent a record lock in this mode implies.
    pub fn implied_intent(self) -> LockMode {
        match self {
            LockMode::Shared | LockMode::IntentShared => LockMode::IntentShared,
            LockMode::Exclusive | LockMode::IntentExclusive => LockMode::IntentExclusive,
        }
    }
}

/// What a lock covers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LockScope {
    /// The primary key of one logical record.
    Record { file: String, key: Bytes },
    /// A whole file (tested against every record lock in the file).
    File { file: String },
}

impl LockScope {
    pub fn file(&self) -> &str {
        match self {
            LockScope::Record { file, .. } => file,
            LockScope::File { file } => file,
        }
    }
}

/// Result of a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Acquire {
    /// Granted now (or the transaction already held a covering mode).
    Granted,
    /// Conflicts; the request is queued under the given waiter token.
    Queued,
}

/// A queued request that has just been granted by a release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrantedWaiter {
    pub token: u64,
    pub txn: Transid,
    pub scope: LockScope,
    pub mode: LockMode,
}

#[derive(Clone, Copy, Debug)]
struct Grant {
    txn: Transid,
    mode: LockMode,
}

#[derive(Debug)]
struct WaitEntry {
    token: u64,
    txn: Transid,
    mode: LockMode,
}

#[derive(Default)]
struct LockQueue {
    granted: Vec<Grant>,
    waiters: VecDeque<WaitEntry>,
}

/// Per-file, per-transaction record-lock counts: how many shared and how
/// many exclusive record locks the transaction holds in the file. The
/// implied file intent is IX if any exclusive, else IS.
#[derive(Default, Clone, Copy)]
struct RecordCounts {
    shared: usize,
    exclusive: usize,
}

impl RecordCounts {
    fn implied_intent(self) -> LockMode {
        if self.exclusive > 0 {
            LockMode::IntentExclusive
        } else {
            LockMode::IntentShared
        }
    }
}

/// Multi-mode record + file locks for one volume.
#[derive(Default)]
pub struct LockManager {
    records: BTreeMap<(String, Bytes), LockQueue>,
    files: BTreeMap<String, LockQueue>,
    /// Record-lock counts per file per transaction — the implied intent
    /// locks a file-scope request is tested against.
    file_record_holders: BTreeMap<String, BTreeMap<Transid, RecordCounts>>,
    /// Everything a transaction holds, for release_all (modes live in
    /// the grant sets).
    held: BTreeMap<Transid, Vec<LockScope>>,
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Number of locks held by `txn`.
    pub fn held_count(&self, txn: Transid) -> usize {
        self.held.get(&txn).map(|v| v.len()).unwrap_or(0)
    }

    /// The grant set of a scope: every `(transaction, mode)` holding it.
    pub fn holders(&self, scope: &LockScope) -> Vec<(Transid, LockMode)> {
        let q = match scope {
            LockScope::Record { file, key } => self.records.get(&(file.clone(), key.clone())),
            LockScope::File { file } => self.files.get(file),
        };
        q.map(|q| q.granted.iter().map(|g| (g.txn, g.mode)).collect())
            .unwrap_or_default()
    }

    /// The mode `txn` holds on this exact scope, if any.
    fn grant_mode(&self, txn: Transid, scope: &LockScope) -> Option<LockMode> {
        let q = match scope {
            LockScope::Record { file, key } => self.records.get(&(file.clone(), key.clone()))?,
            LockScope::File { file } => self.files.get(file)?,
        };
        q.granted.iter().find(|g| g.txn == txn).map(|g| g.mode)
    }

    /// Does `txn` hold this exact scope in a mode covering `mode`?
    pub fn holds(&self, txn: Transid, scope: &LockScope, mode: LockMode) -> bool {
        self.grant_mode(txn, scope).is_some_and(|m| m.covers(mode))
    }

    /// Every `(transaction, scope, mode)` currently held — used to
    /// snapshot a DISCPROCESS for backup initialization. Waiters are
    /// deliberately excluded: their requesters retransmit and re-queue.
    pub fn holdings(&self) -> Vec<(Transid, LockScope, LockMode)> {
        self.held
            .iter()
            .flat_map(|(t, scopes)| {
                scopes.iter().map(move |s| {
                    let mode = self.grant_mode(*t, s).expect("held implies granted");
                    (*t, s.clone(), mode)
                })
            })
            .collect()
    }

    /// Total queued waiters (diagnostics).
    pub fn waiting(&self) -> usize {
        self.records
            .values()
            .chain(self.files.values())
            .map(|q| q.waiters.len())
            .sum()
    }

    fn record_compatible(&self, txn: Transid, file: &str, key: &Bytes, mode: LockMode) -> bool {
        let intent = mode.implied_intent();
        if let Some(fq) = self.files.get(file) {
            // a file grant by another transaction in an incompatible mode
            // blocks the record lock; txn's own file grant covers it
            let own_file_grant = fq.granted.iter().any(|g| g.txn == txn);
            for g in &fq.granted {
                if g.txn != txn && !g.mode.compatible(intent) {
                    return false;
                }
            }
            if !own_file_grant {
                // Fairness fence: once an incompatible file-lock waiter
                // from another transaction is queued, record-lock requests
                // from transactions that hold nothing in the file yet are
                // refused — otherwise a stream of latecomers keeps the
                // record-holder count non-zero and starves the file
                // waiter until its timeout. Transactions already
                // holding record locks in the file stay exempt (their
                // further locks, and their own file-lock upgrade, must
                // not deadlock against the fence).
                let foreign_waiter = fq
                    .waiters
                    .iter()
                    .any(|w| w.txn != txn && !w.mode.compatible(intent));
                let already_in_file = self
                    .file_record_holders
                    .get(file)
                    .is_some_and(|m| m.contains_key(&txn));
                if foreign_waiter && !already_in_file {
                    return false;
                }
            }
        }
        match self.records.get(&(file.to_string(), key.clone())) {
            Some(q) => q
                .granted
                .iter()
                .all(|g| g.txn == txn || g.mode.compatible(mode)),
            None => true,
        }
    }

    fn file_compatible(&self, txn: Transid, file: &str, mode: LockMode) -> bool {
        if let Some(fq) = self.files.get(file) {
            for g in &fq.granted {
                if g.txn != txn && !g.mode.compatible(mode) {
                    return false;
                }
            }
            // NOTE: file requests from transactions already active in the
            // file may overtake queued file waiters — blocking on the
            // queue would deadlock a transaction that holds record locks
            // against its own file-lock upgrade. Record-lock latecomers,
            // however, are fenced while a foreign file waiter queues (see
            // `record_compatible`), and file-lock latecomers holding
            // nothing in the file defer to queued waiters (see
            // `acquire`), so the waiter cannot be starved.
        }
        // a record lock in the file by another transaction blocks the
        // request unless its implied intent is compatible
        if let Some(holders) = self.file_record_holders.get(file) {
            for (h, counts) in holders {
                if *h != txn && !counts.implied_intent().compatible(mode) {
                    return false;
                }
            }
        }
        true
    }

    /// Try to acquire; on conflict the request queues under `token`.
    /// Re-requesting a scope the transaction already holds in a covering
    /// mode is granted immediately (idempotent, for retried requests);
    /// requesting `Exclusive` over an own `Shared` grant upgrades in
    /// place once every other holder is gone.
    pub fn acquire(&mut self, txn: Transid, scope: LockScope, mode: LockMode, token: u64) -> Acquire {
        if self.holds(txn, &scope, mode) {
            return Acquire::Granted;
        }
        match &scope {
            LockScope::Record { file, key } => {
                // a shared request defers to a queued incompatible waiter
                // (an exclusive one) so reader streams cannot starve it;
                // exclusive requests keep the historical overtake — the
                // front waiter may be fenced while the requester is not
                let defer = mode == LockMode::Shared
                    && self
                        .records
                        .get(&(file.clone(), key.clone()))
                        .is_some_and(|q| {
                            q.waiters.iter().any(|w| w.txn != txn && !w.mode.compatible(mode))
                        });
                if !defer && self.record_compatible(txn, file, key, mode) {
                    self.grant_record(txn, file.clone(), key.clone(), mode);
                    Acquire::Granted
                } else {
                    self.records
                        .entry((file.clone(), key.clone()))
                        .or_default()
                        .waiters
                        .push_back(WaitEntry { token, txn, mode });
                    Acquire::Queued
                }
            }
            LockScope::File { file } => {
                // a file request from a transaction holding nothing in the
                // file defers to queued incompatible file waiters; one
                // already active in the file may overtake (self-upgrade)
                let active_in_file = self
                    .files
                    .get(file)
                    .is_some_and(|q| q.granted.iter().any(|g| g.txn == txn))
                    || self
                        .file_record_holders
                        .get(file)
                        .is_some_and(|m| m.contains_key(&txn));
                let defer = !active_in_file
                    && self.files.get(file).is_some_and(|q| {
                        q.waiters.iter().any(|w| w.txn != txn && !w.mode.compatible(mode))
                    });
                if !defer && self.file_compatible(txn, file, mode) {
                    self.grant_file(txn, file.clone(), mode);
                    Acquire::Granted
                } else {
                    self.files
                        .entry(file.clone())
                        .or_default()
                        .waiters
                        .push_back(WaitEntry { token, txn, mode });
                    Acquire::Queued
                }
            }
        }
    }

    fn grant_record(&mut self, txn: Transid, file: String, key: Bytes, mode: LockMode) {
        enum Change {
            Covered,
            Upgrade,
            Fresh,
        }
        let change = {
            let q = self.records.entry((file.clone(), key.clone())).or_default();
            debug_assert!(q.granted.iter().all(|g| g.txn == txn || g.mode.compatible(mode)));
            match q.granted.iter_mut().find(|g| g.txn == txn) {
                Some(g) if g.mode.covers(mode) => Change::Covered,
                Some(g) => {
                    debug_assert_eq!(g.mode, LockMode::Shared);
                    g.mode = mode;
                    Change::Upgrade
                }
                None => {
                    q.granted.push(Grant { txn, mode });
                    Change::Fresh
                }
            }
        };
        match change {
            Change::Covered => {}
            Change::Upgrade => {
                // Shared → Exclusive in place: move the intent count over
                let counts = self
                    .file_record_holders
                    .get_mut(&file)
                    .and_then(|m| m.get_mut(&txn))
                    .expect("upgraded holder is counted");
                counts.shared -= 1;
                counts.exclusive += 1;
            }
            Change::Fresh => {
                let counts = self
                    .file_record_holders
                    .entry(file.clone())
                    .or_default()
                    .entry(txn)
                    .or_default();
                match mode {
                    LockMode::Shared | LockMode::IntentShared => counts.shared += 1,
                    LockMode::Exclusive | LockMode::IntentExclusive => counts.exclusive += 1,
                }
                self.held
                    .entry(txn)
                    .or_default()
                    .push(LockScope::Record { file, key });
            }
        }
    }

    fn grant_file(&mut self, txn: Transid, file: String, mode: LockMode) {
        let fresh = {
            let q = self.files.entry(file.clone()).or_default();
            debug_assert!(q.granted.iter().all(|g| g.txn == txn || g.mode.compatible(mode)));
            match q.granted.iter_mut().find(|g| g.txn == txn) {
                Some(g) if g.mode.covers(mode) => false,
                Some(g) => {
                    g.mode = mode;
                    false
                }
                None => {
                    q.granted.push(Grant { txn, mode });
                    true
                }
            }
        };
        if fresh {
            self.held
                .entry(txn)
                .or_default()
                .push(LockScope::File { file });
        }
    }

    /// Remove a queued waiter (its timeout fired, or its transaction was
    /// fenced). Returns `None` if the token is unknown; otherwise the
    /// queued requests its removal made grantable — cancelling a *file*
    /// waiter lifts the fairness fence, so fenced record waiters in that
    /// file may be granted and must be completed by the caller.
    pub fn cancel_waiter(&mut self, token: u64) -> Option<Vec<GrantedWaiter>> {
        let mut in_file: Option<String> = None;
        for ((file, _), q) in self.records.iter_mut() {
            if let Some(pos) = q.waiters.iter().position(|w| w.token == token) {
                q.waiters.remove(pos);
                in_file = Some(file.clone());
                break;
            }
        }
        if in_file.is_none() {
            for (file, q) in self.files.iter_mut() {
                if let Some(pos) = q.waiters.iter().position(|w| w.token == token) {
                    q.waiters.remove(pos);
                    in_file = Some(file.clone());
                    break;
                }
            }
        }
        let file = in_file?;
        let mut granted = Vec::new();
        self.wake_file(&file, &mut granted);
        self.wake_records_of_file(&file, &mut granted);
        Some(granted)
    }

    /// Release everything `txn` holds (phase two of commit, or the end of
    /// backout). Returns the queued requests that became grantable — the
    /// DISCPROCESS completes those operations.
    pub fn release_all(&mut self, txn: Transid) -> Vec<GrantedWaiter> {
        let scopes = self.held.remove(&txn).unwrap_or_default();
        let mut touched_files = Vec::new();
        for scope in &scopes {
            match scope {
                LockScope::Record { file, key } => {
                    let mut released = None;
                    if let Some(q) = self.records.get_mut(&(file.clone(), key.clone())) {
                        if let Some(pos) = q.granted.iter().position(|g| g.txn == txn) {
                            released = Some(q.granted.remove(pos).mode);
                        }
                    }
                    if let Some(mode) = released {
                        if let Some(holders) = self.file_record_holders.get_mut(file) {
                            if let Some(c) = holders.get_mut(&txn) {
                                match mode {
                                    LockMode::Shared | LockMode::IntentShared => c.shared -= 1,
                                    LockMode::Exclusive | LockMode::IntentExclusive => {
                                        c.exclusive -= 1
                                    }
                                }
                                if c.shared == 0 && c.exclusive == 0 {
                                    holders.remove(&txn);
                                }
                            }
                            if holders.is_empty() {
                                self.file_record_holders.remove(file);
                            }
                        }
                    }
                    touched_files.push(file.clone());
                }
                LockScope::File { file } => {
                    if let Some(q) = self.files.get_mut(file) {
                        q.granted.retain(|g| g.txn != txn);
                    }
                    touched_files.push(file.clone());
                }
            }
        }
        let mut granted = Vec::new();
        // wake record waiters on exactly the released records
        for scope in &scopes {
            if let LockScope::Record { file, key } = scope {
                self.wake_record(file, key, &mut granted);
            }
        }
        // re-evaluate file-lock queues of every touched file, and record
        // waiters blocked by a released file lock
        touched_files.sort();
        touched_files.dedup();
        for file in touched_files {
            self.wake_file(&file, &mut granted);
            self.wake_records_of_file(&file, &mut granted);
        }
        // drop empty queues to bound memory
        self.records
            .retain(|_, q| !q.granted.is_empty() || !q.waiters.is_empty());
        self.files
            .retain(|_, q| !q.granted.is_empty() || !q.waiters.is_empty());
        granted
    }

    fn wake_record(&mut self, file: &str, key: &Bytes, granted: &mut Vec<GrantedWaiter>) {
        // grant the maximal compatible prefix of the queue: a shared
        // group drains together, and the first incompatible waiter
        // (an exclusive one behind readers, or vice versa) blocks the rest
        loop {
            let Some(q) = self.records.get(&(file.to_string(), key.clone())) else {
                return;
            };
            let Some(front) = q.waiters.front() else {
                return;
            };
            let (txn, mode) = (front.txn, front.mode);
            if !self.record_compatible(txn, file, key, mode) {
                return;
            }
            let q = self
                .records
                .get_mut(&(file.to_string(), key.clone()))
                .expect("present above");
            let w = q.waiters.pop_front().expect("present above");
            self.grant_record(w.txn, file.to_string(), key.clone(), w.mode);
            granted.push(GrantedWaiter {
                token: w.token,
                txn: w.txn,
                scope: LockScope::Record {
                    file: file.to_string(),
                    key: key.clone(),
                },
                mode: w.mode,
            });
        }
    }

    fn wake_file(&mut self, file: &str, granted: &mut Vec<GrantedWaiter>) {
        // like wake_record: the maximal compatible prefix is granted
        loop {
            let Some(q) = self.files.get(file) else {
                return;
            };
            let Some(front) = q.waiters.front() else {
                return;
            };
            let (txn, mode) = (front.txn, front.mode);
            if !self.file_compatible(txn, file, mode) {
                return;
            }
            let w = self
                .files
                .get_mut(file)
                .expect("present above")
                .waiters
                .pop_front()
                .expect("present above");
            self.grant_file(w.txn, file.to_string(), w.mode);
            granted.push(GrantedWaiter {
                token: w.token,
                txn: w.txn,
                scope: LockScope::File {
                    file: file.to_string(),
                },
                mode: w.mode,
            });
        }
    }

    fn wake_records_of_file(&mut self, file: &str, granted: &mut Vec<GrantedWaiter>) {
        // a released file lock (or a lifted fence) may unblock record
        // waiters anywhere in the file
        let keys: Vec<Bytes> = self
            .records
            .iter()
            .filter(|((f, _), q)| f == file && !q.waiters.is_empty())
            .map(|((_, k), _)| k.clone())
            .collect();
        for key in keys {
            self.wake_record(file, &key, granted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::NodeId;

    fn t(seq: u64) -> Transid {
        Transid {
            home_node: NodeId(0),
            cpu: 0,
            seq,
        }
    }

    fn rec(file: &str, key: &str) -> LockScope {
        LockScope::Record {
            file: file.into(),
            key: Bytes::copy_from_slice(key.as_bytes()),
        }
    }

    fn fl(file: &str) -> LockScope {
        LockScope::File { file: file.into() }
    }

    const X: LockMode = LockMode::Exclusive;
    const S: LockMode = LockMode::Shared;

    #[test]
    fn exclusive_record_lock() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(t(1), rec("f", "k"), X, 100), Acquire::Granted);
        assert_eq!(lm.acquire(t(1), rec("f", "k"), X, 101), Acquire::Granted, "re-entrant");
        assert_eq!(lm.acquire(t(2), rec("f", "k"), X, 102), Acquire::Queued);
        assert_eq!(lm.holders(&rec("f", "k")), vec![(t(1), X)]);
        assert_eq!(lm.waiting(), 1);
        let granted = lm.release_all(t(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, t(2));
        assert_eq!(granted[0].token, 102);
        assert_eq!(granted[0].mode, X);
        assert!(lm.holds(t(2), &rec("f", "k"), X));
    }

    #[test]
    fn fifo_waiter_order() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), X, 0);
        lm.acquire(t(2), rec("f", "k"), X, 1);
        lm.acquire(t(3), rec("f", "k"), X, 2);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1, "exclusive: only the first waiter granted");
        assert_eq!(g[0].txn, t(2));
        let g = lm.release_all(t(2));
        assert_eq!(g[0].txn, t(3));
    }

    #[test]
    fn file_lock_conflicts_with_record_locks() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), X, 0);
        assert_eq!(lm.acquire(t(2), fl("f"), X, 1), Acquire::Queued);
        // same txn's own record locks do not block its file lock
        assert_eq!(lm.acquire(t(1), fl("f"), X, 2), Acquire::Granted);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].scope, fl("f"));
        assert!(lm.holds(t(2), &fl("f"), X));
    }

    #[test]
    fn record_lock_blocked_by_file_lock() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), fl("f"), X, 0);
        assert_eq!(lm.acquire(t(2), rec("f", "x"), X, 1), Acquire::Queued);
        // other files unaffected — locking is per scope
        assert_eq!(lm.acquire(t(2), rec("g", "x"), X, 2), Acquire::Granted);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert!(lm.holds(t(2), &rec("f", "x"), X));
    }

    #[test]
    fn cancel_waiter_models_timeout() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), X, 0);
        lm.acquire(t(2), rec("f", "k"), X, 55);
        assert_eq!(lm.cancel_waiter(55), Some(Vec::new()));
        assert!(lm.cancel_waiter(55).is_none(), "already cancelled");
        let g = lm.release_all(t(1));
        assert!(g.is_empty(), "cancelled waiter is not granted");
        assert_eq!(lm.waiting(), 0);
    }

    #[test]
    fn release_all_spans_files_and_scopes() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("a", "x"), X, 0);
        lm.acquire(t(1), rec("b", "y"), X, 0);
        lm.acquire(t(1), fl("c"), X, 0);
        assert_eq!(lm.held_count(t(1)), 3);
        lm.acquire(t(2), rec("a", "x"), X, 1);
        lm.acquire(t(3), fl("b"), X, 2);
        lm.acquire(t(4), rec("c", "z"), X, 3);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 3, "one waiter per released scope: {g:?}");
        assert_eq!(lm.held_count(t(1)), 0);
    }

    #[test]
    fn file_waiter_fences_latecomer_record_locks() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), X, 0);
        // t2 queues for the file lock
        assert_eq!(lm.acquire(t(2), fl("f"), X, 1), Acquire::Queued);
        // t3 arrives later for a fresh record in f: fenced behind the
        // queued file waiter, even though the record itself is free
        assert_eq!(lm.acquire(t(3), rec("f", "b"), X, 2), Acquire::Queued);
        // other files are unaffected by the fence
        assert_eq!(lm.acquire(t(3), rec("g", "b"), X, 3), Acquire::Granted);
        // t1 already holds a record in f: its further locks overtake
        assert_eq!(lm.acquire(t(1), rec("f", "c"), X, 4), Acquire::Granted);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1, "file waiter granted first: {g:?}");
        assert_eq!(g[0].txn, t(2));
        assert_eq!(g[0].scope, fl("f"));
        // once the file lock releases, the fenced record waiter is granted
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, t(3));
        assert_eq!(g[0].scope, rec("f", "b"));
    }

    #[test]
    fn latecomer_stream_cannot_starve_file_waiter() {
        // Regression: previously each latecomer record lock was granted,
        // keeping the record-holder count non-zero forever, so the queued
        // file waiter starved until its timeout.
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), X, 0);
        assert_eq!(lm.acquire(t(2), fl("f"), X, 1), Acquire::Queued);
        // a stream of latecomers, arriving while t1 still works
        for (i, seq) in (3..8).enumerate() {
            assert_eq!(
                lm.acquire(t(seq), rec("f", &format!("k{seq}")), X, 10 + i as u64),
                Acquire::Queued,
                "latecomer t{seq} must be fenced"
            );
        }
        // as soon as the pre-existing holder finishes, the file waiter wins
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, t(2));
        assert!(lm.holds(t(2), &fl("f"), X));
    }

    #[test]
    fn same_transid_upgrade_overtakes_its_own_wait() {
        // the no-self-deadlock property: a transaction holding record locks
        // may take more record locks (and upgrade to the file lock) even
        // while its own file-lock request queues
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), X, 0);
        lm.acquire(t(2), rec("f", "b"), X, 1);
        assert_eq!(lm.acquire(t(1), fl("f"), X, 2), Acquire::Queued);
        assert_eq!(lm.acquire(t(1), rec("f", "c"), X, 3), Acquire::Granted);
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 1, "t1's own upgrade is granted: {g:?}");
        assert_eq!(g[0].txn, t(1));
        assert_eq!(g[0].scope, fl("f"));
    }

    #[test]
    fn cancelled_file_waiter_unfences_records() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "a"), X, 0);
        assert_eq!(lm.acquire(t(2), fl("f"), X, 1), Acquire::Queued);
        assert_eq!(lm.acquire(t(3), rec("f", "b"), X, 2), Acquire::Queued);
        // the file waiter times out: the fence lifts and the fenced record
        // waiter is granted right away (record "b" was free all along)
        let g = lm.cancel_waiter(1).expect("file waiter present");
        assert_eq!(g.len(), 1, "fenced record waiter granted: {g:?}");
        assert_eq!(g[0].txn, t(3));
        assert_eq!(g[0].scope, rec("f", "b"));
        assert!(lm.holds(t(3), &rec("f", "b"), X));
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(t(1), rec("f", "k"), S, 0), Acquire::Granted);
        assert_eq!(lm.acquire(t(2), rec("f", "k"), S, 1), Acquire::Granted);
        assert_eq!(lm.holders(&rec("f", "k")), vec![(t(1), S), (t(2), S)]);
        // an exclusive request waits for the whole read group
        assert_eq!(lm.acquire(t(3), rec("f", "k"), X, 2), Acquire::Queued);
        assert!(lm.release_all(t(1)).is_empty(), "t2 still reads");
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, t(3));
        assert_eq!(g[0].mode, X);
    }

    #[test]
    fn shared_and_exclusive_block_each_other() {
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), X, 0);
        assert_eq!(lm.acquire(t(2), rec("f", "k"), S, 1), Acquire::Queued);
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].mode, S);
        // …and the other way around
        assert_eq!(lm.acquire(t(3), rec("f", "k"), X, 2), Acquire::Queued);
        assert_eq!(lm.waiting(), 1);
    }

    #[test]
    fn intent_escalation_at_file_scope() {
        let mut lm = LockManager::new();
        // shared record locks imply IS on the file: a shared file lock is
        // compatible, an exclusive one is not
        lm.acquire(t(1), rec("f", "a"), S, 0);
        assert_eq!(lm.acquire(t(2), fl("f"), S, 1), Acquire::Granted);
        assert_eq!(lm.acquire(t(3), fl("f"), X, 2), Acquire::Queued);
        // an exclusive record lock implies IX: blocked by t2's S file lock
        assert_eq!(lm.acquire(t(4), rec("f", "b"), X, 3), Acquire::Queued);
        // …but a shared record latecomer is only fenced by the queued X
        // file waiter, not by the S file grant itself
        let mut lm2 = LockManager::new();
        lm2.acquire(t(2), fl("f"), S, 0);
        assert_eq!(lm2.acquire(t(5), rec("f", "c"), S, 1), Acquire::Granted);
        // an exclusive record lock under a foreign shared file lock waits
        assert_eq!(lm2.acquire(t(6), rec("f", "d"), X, 2), Acquire::Queued);
    }

    #[test]
    fn same_transid_mode_upgrade_exemption() {
        let mut lm = LockManager::new();
        // sole shared holder upgrades in place
        lm.acquire(t(1), rec("f", "k"), S, 0);
        assert_eq!(lm.acquire(t(1), rec("f", "k"), X, 1), Acquire::Granted);
        assert_eq!(lm.holders(&rec("f", "k")), vec![(t(1), X)]);
        assert_eq!(lm.held_count(t(1)), 1, "upgrade is not a second lock");
        // with a co-reader the upgrade waits for it, then lands
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), S, 0);
        lm.acquire(t(2), rec("f", "k"), S, 1);
        assert_eq!(lm.acquire(t(1), rec("f", "k"), X, 2), Acquire::Queued);
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, t(1));
        assert_eq!(g[0].mode, X);
        assert!(lm.holds(t(1), &rec("f", "k"), X));
    }

    #[test]
    fn shared_group_and_exclusive_waiter_fairness() {
        // a shared waiter group behind an exclusive waiter neither starves
        // it nor is starved by it
        let mut lm = LockManager::new();
        lm.acquire(t(1), rec("f", "k"), S, 0);
        assert_eq!(lm.acquire(t(2), rec("f", "k"), X, 1), Acquire::Queued);
        // reader latecomers defer to the queued writer instead of joining
        // t1's grant set (which would starve t2 forever)
        assert_eq!(lm.acquire(t(3), rec("f", "k"), S, 2), Acquire::Queued);
        assert_eq!(lm.acquire(t(4), rec("f", "k"), S, 3), Acquire::Queued);
        // the writer gets its turn…
        let g = lm.release_all(t(1));
        assert_eq!(g.len(), 1, "writer granted alone: {g:?}");
        assert_eq!(g[0].txn, t(2));
        // …and the whole reader group drains together behind it
        let g = lm.release_all(t(2));
        assert_eq!(g.len(), 2, "shared group granted together: {g:?}");
        assert_eq!(g[0].txn, t(3));
        assert_eq!(g[1].txn, t(4));
        assert_eq!(lm.holders(&rec("f", "k")), vec![(t(3), S), (t(4), S)]);
    }

    #[test]
    fn no_incompatible_holders_property() {
        // randomized interleaving sanity: every grant set is pairwise
        // compatible, and file grants are compatible with the intents
        // implied by foreign record locks
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut lm = LockManager::new();
        let mut tokens = 0u64;
        for _ in 0..3000 {
            let txn = t(rng.random_range(0..8));
            let key = format!("k{}", rng.random_range(0..5));
            let mode = if rng.random_range(0..2) == 0 { S } else { X };
            match rng.random_range(0..3) {
                0 => {
                    tokens += 1;
                    let _ = lm.acquire(txn, rec("f", &key), mode, tokens);
                }
                1 => {
                    tokens += 1;
                    let _ = lm.acquire(txn, fl("f"), mode, tokens);
                }
                _ => {
                    let _ = lm.release_all(txn);
                }
            }
            for k in 0..5 {
                let hs = lm.holders(&rec("f", &format!("k{k}")));
                for (i, a) in hs.iter().enumerate() {
                    for b in hs.iter().skip(i + 1) {
                        assert!(
                            a.1.compatible(b.1),
                            "incompatible record grant set: {hs:?}"
                        );
                    }
                }
            }
            let fh = lm.holders(&fl("f"));
            for (i, a) in fh.iter().enumerate() {
                for b in fh.iter().skip(i + 1) {
                    assert!(a.1.compatible(b.1), "incompatible file grant set: {fh:?}");
                }
            }
            for (fg_txn, fg_mode) in &fh {
                for (h_txn, scope, h_mode) in lm.holdings() {
                    if h_txn == *fg_txn {
                        continue;
                    }
                    if let LockScope::Record { file, .. } = &scope {
                        if file == "f" {
                            assert!(
                                fg_mode.compatible(h_mode.implied_intent()),
                                "file {fg_mode:?} grant coexists with foreign record {h_mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
