//! The entry-sequenced file organization: append-only records addressed by
//! the entry number assigned at insertion. This is also the structure the
//! audit trails are built from: TMF's trail files are entry-sequenced, and
//! the suspense file of the manufacturing application depends on its
//! strictly increasing entry order.

use bytes::Bytes;

/// An entry-sequenced file. Entries can be logically deleted (slot kept,
/// contents dropped) but never reordered; entry numbers are never reused.
#[derive(Clone, Debug, Default)]
pub struct EntrySequencedFile {
    entries: Vec<Option<Bytes>>,
    live: usize,
}

impl EntrySequencedFile {
    pub fn new() -> EntrySequencedFile {
        EntrySequencedFile::default()
    }

    /// Number of live (non-deleted) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total entries ever appended (= the next entry number).
    pub fn next_entry(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Append a record; returns its entry number.
    pub fn append(&mut self, value: Bytes) -> u64 {
        self.entries.push(Some(value));
        self.live += 1;
        (self.entries.len() - 1) as u64
    }

    pub fn get(&self, entry: u64) -> Option<&Bytes> {
        self.entries.get(entry as usize)?.as_ref()
    }

    /// Logically delete an entry (its number is not reused).
    pub fn delete(&mut self, entry: u64) -> Option<Bytes> {
        let old = self.entries.get_mut(entry as usize)?.take();
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    /// Replace the contents of an existing live entry.
    pub fn update(&mut self, entry: u64, value: Bytes) -> Option<Bytes> {
        let slot = self.entries.get_mut(entry as usize)?;
        match slot {
            Some(old) => Some(std::mem::replace(old, value)),
            None => None,
        }
    }

    /// Force the contents of entry `n` (used when a write-behind cache
    /// flushes entries that were assigned numbers before reaching the
    /// media). Pads intervening slots with empty (deleted) entries.
    pub fn place(&mut self, entry: u64, value: Option<Bytes>) {
        let idx = entry as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        let slot = &mut self.entries[idx];
        match (slot.is_some(), value.is_some()) {
            (false, true) => self.live += 1,
            (true, false) => self.live -= 1,
            _ => {}
        }
        *slot = value;
    }

    /// Live entries from `low` in entry order, at most `limit`.
    pub fn scan(&self, low: u64, limit: usize) -> Vec<(u64, Bytes)> {
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate().skip(low as usize) {
            if out.len() == limit {
                break;
            }
            if let Some(v) = e {
                out.push((i as u64, v.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn append_assigns_sequential_numbers() {
        let mut f = EntrySequencedFile::new();
        assert_eq!(f.append(b("a")), 0);
        assert_eq!(f.append(b("b")), 1);
        assert_eq!(f.append(b("c")), 2);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(1), Some(&b("b")));
        assert_eq!(f.get(9), None);
    }

    #[test]
    fn delete_keeps_numbering() {
        let mut f = EntrySequencedFile::new();
        f.append(b("a"));
        f.append(b("b"));
        assert_eq!(f.delete(0), Some(b("a")));
        assert_eq!(f.delete(0), None);
        assert_eq!(f.len(), 1);
        // numbers march on
        assert_eq!(f.append(b("c")), 2);
        assert_eq!(f.next_entry(), 3);
    }

    #[test]
    fn update_only_live_entries() {
        let mut f = EntrySequencedFile::new();
        f.append(b("a"));
        assert_eq!(f.update(0, b("A")), Some(b("a")));
        f.delete(0);
        assert_eq!(f.update(0, b("x")), None);
        assert_eq!(f.update(5, b("x")), None);
    }

    #[test]
    fn scan_skips_deleted() {
        let mut f = EntrySequencedFile::new();
        for s in ["a", "b", "c", "d"] {
            f.append(b(s));
        }
        f.delete(1);
        let got = f.scan(0, usize::MAX);
        assert_eq!(
            got.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert_eq!(f.scan(2, 1).len(), 1);
    }
}
