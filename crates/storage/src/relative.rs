//! The relative file organization: fixed record slots addressed by record
//! number. Keys on the wire are 8-byte big-endian record numbers (see
//! [`crate::types::num_key`]), which keeps the DISCPROCESS request surface
//! uniform across file organizations.

use bytes::Bytes;

/// A relative file: a growable array of record slots.
#[derive(Clone, Debug, Default)]
pub struct RelativeFile {
    slots: Vec<Option<Bytes>>,
    occupied: usize,
}

impl RelativeFile {
    pub fn new() -> RelativeFile {
        RelativeFile::default()
    }

    pub fn len(&self) -> usize {
        self.occupied
    }

    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Highest slot index ever written plus one.
    pub fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    pub fn get(&self, slot: u64) -> Option<&Bytes> {
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Write a slot (insert or overwrite). Returns the previous contents.
    pub fn set(&mut self, slot: u64, value: Bytes) -> Option<Bytes> {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.occupied += 1;
        }
        old
    }

    /// Empty a slot. Returns the previous contents.
    pub fn clear(&mut self, slot: u64) -> Option<Bytes> {
        let old = self.slots.get_mut(slot as usize)?.take();
        if old.is_some() {
            self.occupied -= 1;
        }
        old
    }

    /// The lowest empty slot (for "insert anywhere" semantics).
    pub fn first_free(&self) -> u64 {
        self.slots
            .iter()
            .position(|s| s.is_none())
            .unwrap_or(self.slots.len()) as u64
    }

    /// Occupied slots in `low..=high` order, at most `limit`.
    pub fn scan(&self, low: u64, high: Option<u64>, limit: usize) -> Vec<(u64, Bytes)> {
        let mut out = Vec::new();
        for (i, slot) in self.slots.iter().enumerate().skip(low as usize) {
            if let Some(h) = high {
                if i as u64 > h {
                    break;
                }
            }
            if out.len() == limit {
                break;
            }
            if let Some(v) = slot {
                out.push((i as u64, v.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn set_get_clear() {
        let mut f = RelativeFile::new();
        assert_eq!(f.set(5, b("five")), None);
        assert_eq!(f.get(5), Some(&b("five")));
        assert_eq!(f.get(4), None);
        assert_eq!(f.len(), 1);
        assert_eq!(f.set(5, b("FIVE")), Some(b("five")));
        assert_eq!(f.len(), 1);
        assert_eq!(f.clear(5), Some(b("FIVE")));
        assert!(f.is_empty());
        assert_eq!(f.clear(5), None);
        assert_eq!(f.clear(99), None);
    }

    #[test]
    fn first_free_fills_gaps() {
        let mut f = RelativeFile::new();
        f.set(0, b("a"));
        f.set(1, b("b"));
        f.set(2, b("c"));
        assert_eq!(f.first_free(), 3);
        f.clear(1);
        assert_eq!(f.first_free(), 1);
    }

    #[test]
    fn scan_ranges() {
        let mut f = RelativeFile::new();
        for i in [1u64, 3, 5, 7] {
            f.set(i, b(&format!("r{i}")));
        }
        assert_eq!(f.scan(0, None, usize::MAX).len(), 4);
        let mid = f.scan(2, Some(6), usize::MAX);
        assert_eq!(
            mid.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![3, 5]
        );
        assert_eq!(f.scan(0, None, 2).len(), 2);
        assert_eq!(f.capacity(), 8);
    }
}
