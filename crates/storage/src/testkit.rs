//! Test utilities shared by this crate's integration tests and by the
//! higher layers (`encompass-audit`, `tmf`, `encompass`): a scripted
//! DISCPROCESS client process and reply collectors.

use crate::discprocess::{DiscReply, DiscRequest};
use encompass_sim::{Ctx, NodeId, Payload, Pid, Process, SimDuration, TimerId, World};
use guardian::{Rpc, Target, TimerOutcome};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle the driver reads results from after the run.
pub type Replies = Rc<RefCell<Vec<DiscReply>>>;

/// A process that issues a fixed sequence of requests, one at a time, with
/// retries, recording every final reply.
pub struct ScriptClient {
    target: Target,
    script: Vec<DiscRequest>,
    replies: Replies,
    rpc: Rpc<DiscRequest, DiscReply>,
    next: usize,
    /// Per-call retry timeout.
    pub attempt_timeout: SimDuration,
    /// Retries per call before recording a synthetic `VolumeDown` error.
    pub retries: u32,
}

impl ScriptClient {
    pub fn new(target: Target, script: Vec<DiscRequest>, replies: Replies) -> ScriptClient {
        ScriptClient {
            target,
            script,
            replies,
            rpc: Rpc::new(9),
            next: 0,
            attempt_timeout: SimDuration::from_millis(100),
            retries: 20,
        }
    }

    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.next >= self.script.len() {
            return;
        }
        let op = self.script[self.next].clone();
        self.next += 1;
        if self
            .rpc
            .call(
                ctx,
                self.target.clone(),
                op.clone(),
                self.attempt_timeout,
                self.retries,
                0,
            )
            .is_err()
        {
            // service name unresolvable (takeover window): keep trying
            self.rpc
                .call_persistent(ctx, self.target.clone(), op, self.attempt_timeout, 0);
        }
    }
}

impl Process for ScriptClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.kick(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            self.replies.borrow_mut().push(c.body);
            self.kick(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            self.replies
                .borrow_mut()
                .push(DiscReply::Err(crate::discprocess::DiscError::VolumeDown));
            self.kick(ctx);
        }
    }

    fn kind(&self) -> &'static str {
        "script-client"
    }
}

/// Spawn a [`ScriptClient`] and return the shared reply vector.
pub fn run_script(
    world: &mut World,
    node: NodeId,
    cpu: u8,
    target: Target,
    script: Vec<DiscRequest>,
) -> Replies {
    let replies: Replies = Rc::new(RefCell::new(Vec::new()));
    world.spawn(
        node,
        cpu,
        Box::new(ScriptClient::new(target, script, replies.clone())),
    );
    replies
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end by the crate's integration tests
    // (`tests/discprocess_e2e.rs`); nothing to unit-test in isolation.
}
