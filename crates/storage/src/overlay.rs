//! The DISCPROCESS write-behind cache.
//!
//! Updates are applied here — in process memory, protected by checkpoints
//! to the backup — and flushed to the [`crate::media::VolumeMedia`] lazily.
//! Reads consult the overlay first, then the media (charging simulated
//! disc latency on a read-cache miss). This is the paper's "cache
//! buffering scheme designed to keep the most recently referenced blocks
//! of data in main memory", and the reason the NonStop design can defer
//! audit forcing: the mirror of truth for recent updates is the backup
//! process, not the disc.

use bytes::Bytes;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Dirty records not yet flushed: `(file, key) -> Some(value) | None`
/// (None = deleted).
#[derive(Clone, Debug, Default)]
pub struct Overlay {
    dirty: BTreeMap<(String, Bytes), Option<Bytes>>,
}

impl Overlay {
    pub fn new() -> Overlay {
        Overlay::default()
    }

    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// The overlay's opinion of a record: `None` = not dirty (ask the
    /// media); `Some(None)` = deleted; `Some(Some(v))` = current value.
    pub fn get(&self, file: &str, key: &[u8]) -> Option<Option<Bytes>> {
        self.dirty
            .get(&(file.to_string(), Bytes::copy_from_slice(key)))
            .cloned()
    }

    /// Apply one logical database update to the write-behind cache. Every
    /// caller must have checkpointed intent to the backup first — this is
    /// the paper's checkpoint-before-update (WAL) discipline, enforced
    /// statically by encompass-lint rule L2-wal.
    // lint: mutates-db
    pub fn put(&mut self, file: &str, key: Bytes, value: Option<Bytes>) {
        self.dirty.insert((file.to_string(), key), value);
    }

    /// Drop one dirty entry (a backup mirroring the primary's flush).
    pub fn remove(&mut self, file: &str, key: &[u8]) {
        self.dirty
            .remove(&(file.to_string(), Bytes::copy_from_slice(key)));
    }

    /// Remove and return up to `n` dirty entries for flushing (in key
    /// order, so flushes are deterministic).
    pub fn take_batch(&mut self, n: usize) -> Vec<(String, Bytes, Option<Bytes>)> {
        let keys: Vec<(String, Bytes)> = self.dirty.keys().take(n).cloned().collect();
        keys.into_iter()
            .map(|k| {
                let v = self.dirty.remove(&k).expect("key just listed");
                (k.0, k.1, v)
            })
            .collect()
    }

    /// All dirty entries of one file (used to merge overlay state into
    /// scans and archives) in key order.
    pub fn file_entries(&self, file: &str) -> Vec<(Bytes, Option<Bytes>)> {
        self.dirty
            .range((file.to_string(), Bytes::new())..)
            .take_while(|((f, _), _)| f == file)
            .map(|((_, k), v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Iterate every dirty entry.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, Bytes), &Option<Bytes>)> {
        self.dirty.iter()
    }
}

/// A simple LRU read cache over `(file, key)` identities, used only to
/// decide whether a media read costs simulated disc latency. Content is
/// not cached here (the media is in memory anyway); only recency is.
#[derive(Clone, Debug)]
pub struct ReadCache {
    capacity: usize,
    queue: VecDeque<(String, Bytes)>,
    members: HashMap<(String, Bytes), u64>,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

impl ReadCache {
    pub fn new(capacity: usize) -> ReadCache {
        ReadCache {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            members: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Record an access; returns true on a hit (no disc I/O needed).
    pub fn access(&mut self, file: &str, key: &[u8]) -> bool {
        let id = (file.to_string(), Bytes::copy_from_slice(key));
        self.clock += 1;
        let hit = self.members.insert(id.clone(), self.clock).is_some();
        self.queue.push_back(id);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            // evict least-recently-used entries beyond capacity
            while self.members.len() > self.capacity {
                if let Some(old) = self.queue.pop_front() {
                    // only evict if this queue entry is the latest access
                    if let Some(&stamp) = self.members.get(&old) {
                        let is_stale_queue_entry = self
                            .queue
                            .iter()
                            .any(|q| *q == old);
                        if is_stale_queue_entry {
                            continue;
                        }
                        let _ = stamp;
                        self.members.remove(&old);
                    }
                }
            }
        }
        hit
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn overlay_tracks_dirty_state() {
        let mut o = Overlay::new();
        assert_eq!(o.get("f", b"k"), None);
        o.put("f", b("k"), Some(b("v")));
        assert_eq!(o.get("f", b"k"), Some(Some(b("v"))));
        o.put("f", b("k"), None);
        assert_eq!(o.get("f", b"k"), Some(None), "deletion is dirty state");
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn take_batch_drains_in_order() {
        let mut o = Overlay::new();
        o.put("f", b("b"), Some(b("2")));
        o.put("f", b("a"), Some(b("1")));
        o.put("g", b("c"), Some(b("3")));
        let batch = o.take_batch(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, b("a"));
        assert_eq!(batch[1].1, b("b"));
        assert_eq!(o.len(), 1);
        let rest = o.take_batch(10);
        assert_eq!(rest.len(), 1);
        assert!(o.is_empty());
    }

    #[test]
    fn file_entries_scoped_to_file() {
        let mut o = Overlay::new();
        o.put("a", b("k1"), Some(b("1")));
        o.put("b", b("k2"), Some(b("2")));
        o.put("a", b("k0"), None);
        let got = o.file_entries("a");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, b("k0"));
        assert_eq!(o.iter().count(), 3);
    }

    #[test]
    fn read_cache_hits_and_evicts() {
        let mut c = ReadCache::new(2);
        assert!(!c.access("f", b"a")); // miss
        assert!(c.access("f", b"a")); // hit
        assert!(!c.access("f", b"b"));
        assert!(!c.access("f", b"c")); // evicts someone
        assert!(c.len() <= 2);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 3);
    }

    #[test]
    fn read_cache_lru_keeps_recent() {
        let mut c = ReadCache::new(2);
        c.access("f", b"a");
        c.access("f", b"b");
        c.access("f", b"a"); // refresh a
        c.access("f", b"c"); // should evict b, not a
        assert!(c.access("f", b"a"), "recently used key survived");
    }
}
