//! The data dictionary: file definitions shared by DISCPROCESSes and the
//! File System client layer. In real ENCOMPASS this is the DDL dictionary;
//! here it is a value constructed at configuration time and cloned into
//! every process that needs it.

use crate::types::{FileDef, FileOrganization, VolumeRef};
use std::collections::BTreeMap;

/// An immutable-by-convention set of file definitions.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    files: BTreeMap<String, FileDef>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a file. Alternate keys are only supported on
    /// single-partition files (the index lives with the data volume so its
    /// maintenance stays a local operation).
    pub fn add(&mut self, def: FileDef) -> &mut Catalog {
        assert!(
            def.alternates.is_empty() || def.partitions.len() == 1,
            "alternate keys require a single-partition file ({})",
            def.name
        );
        assert!(
            !self.files.contains_key(&def.name),
            "duplicate file {}",
            def.name
        );
        // register the implicit alternate-key index files so they can be
        // scanned like ordinary key-sequenced files
        for alt in &def.alternates {
            let idx = FileDef {
                name: def.index_file_name(alt),
                organization: FileOrganization::KeySequenced,
                audited: def.audited,
                partitions: def.partitions.clone(),
                alternates: Vec::new(),
            };
            assert!(
                !self.files.contains_key(&idx.name),
                "duplicate file {}",
                idx.name
            );
            self.files.insert(idx.name.clone(), idx);
        }
        self.files.insert(def.name.clone(), def);
        self
    }

    pub fn get(&self, name: &str) -> Option<&FileDef> {
        self.files.get(name)
    }

    /// Which volume holds `key` of `file`.
    pub fn volume_for(&self, file: &str, key: &[u8]) -> Option<VolumeRef> {
        Some(self.get(file)?.volume_for(key).clone())
    }

    /// Every file with a partition on `volume`.
    pub fn files_on(&self, volume: &VolumeRef) -> Vec<&FileDef> {
        self.files
            .values()
            .filter(|d| d.partitions.iter().any(|p| &p.volume == volume))
            .collect()
    }

    /// Every volume referenced by any file.
    pub fn all_volumes(&self) -> Vec<VolumeRef> {
        let mut vols: Vec<VolumeRef> = self
            .files
            .values()
            .flat_map(|d| d.partitions.iter().map(|p| p.volume.clone()))
            .collect();
        vols.sort();
        vols.dedup();
        vols
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &FileDef> {
        self.files.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FileDef, PartitionSpec};
    use bytes::Bytes;
    use encompass_sim::NodeId;

    fn vol(n: u8, name: &str) -> VolumeRef {
        VolumeRef::new(NodeId(n), name)
    }

    #[test]
    fn add_and_route() {
        let mut c = Catalog::new();
        c.add(
            FileDef::key_sequenced("stock", vol(0, "$D0")).partitioned(vec![
                PartitionSpec {
                    low_key: Bytes::new(),
                    volume: vol(0, "$D0"),
                },
                PartitionSpec {
                    low_key: Bytes::from_static(b"n"),
                    volume: vol(1, "$D1"),
                },
            ]),
        );
        c.add(FileDef::key_sequenced("orders", vol(0, "$D0")));
        assert_eq!(c.volume_for("stock", b"apple"), Some(vol(0, "$D0")));
        assert_eq!(c.volume_for("stock", b"zebra"), Some(vol(1, "$D1")));
        assert_eq!(c.volume_for("missing", b"x"), None);
        assert_eq!(c.files_on(&vol(0, "$D0")).len(), 2);
        assert_eq!(c.files_on(&vol(1, "$D1")).len(), 1);
        assert_eq!(c.all_volumes().len(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate file")]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.add(FileDef::key_sequenced("f", vol(0, "$D0")));
        c.add(FileDef::key_sequenced("f", vol(0, "$D0")));
    }

    #[test]
    #[should_panic(expected = "single-partition")]
    fn alternates_require_single_partition() {
        let mut c = Catalog::new();
        c.add(
            FileDef::key_sequenced("f", vol(0, "$D0"))
                .with_alternate("a", 0, 4)
                .partitioned(vec![
                    PartitionSpec {
                        low_key: Bytes::new(),
                        volume: vol(0, "$D0"),
                    },
                    PartitionSpec {
                        low_key: Bytes::from_static(b"m"),
                        volume: vol(1, "$D1"),
                    },
                ]),
        );
    }
}
