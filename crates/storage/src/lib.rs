//! # encompass-storage
//!
//! The data-base management substrate of ENCOMPASS (the layer the paper
//! calls the relational data base manager plus the DISCPROCESS):
//!
//! * three structured file organizations — **key-sequenced** (a B+tree with
//!   prefix key compression, [`btree`]), **relative** ([`relative`]), and
//!   **entry-sequenced** ([`entryseq`]);
//! * **alternate-key indices** maintained automatically during file update;
//! * **partitioning** of files by primary-key range across volumes, possibly
//!   on multiple nodes ([`catalog`]);
//! * **mirrored disc volumes** with independently failable drives
//!   ([`media`]);
//! * a **write-behind cache**: updates are applied in DISCPROCESS memory
//!   (protected by checkpoints to the backup) and flushed to the media
//!   lazily ([`overlay`]) — the design that lets TMF defer audit forcing to
//!   commit time;
//! * a decentralized **lock manager** per volume — exclusive record and
//!   file locks, deadlock detection by timeout, no central lock manager
//!   ([`locks`]);
//! * the **DISCPROCESS** itself ([`discprocess`]): a process-pair per
//!   volume serving reads, locked reads, inserts, updates, deletes, range
//!   scans, transaction phase-1/phase-2 requests, and undo operations, and
//!   emitting before/after images to an audit process.
//!
//! The [`types::Transid`] type lives here (rather than in the `tmf` crate,
//! which conceptually owns it) because the DISCPROCESS tags locks, audit
//! images, and requests with it; `tmf` re-exports it.

pub mod audit_api;
pub mod btree;
pub mod catalog;
pub mod discprocess;
pub mod entryseq;
pub mod locks;
pub mod media;
pub mod overlay;
pub mod relative;
pub mod testkit;
pub mod types;

pub use audit_api::{AuditMsg, AuditReply, ImageRecord};
pub use catalog::Catalog;
pub use discprocess::{
    spawn_disc_process, DiscConfig, DiscError, DiscProcess, DiscReply, DiscRequest,
};
pub use media::{media_key, ArchiveImage, FileImage, VolumeMedia};
pub use types::{
    AltKeySpec, FileDef, FileOrganization, PartitionSpec, RecoveryMode, Transid, VolumeRef,
};
