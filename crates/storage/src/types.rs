//! Shared storage-layer types: transaction identifiers, volume references,
//! file definitions, partitioning, alternate keys, and recovery modes.

use bytes::Bytes;
use encompass_sim::NodeId;
use std::fmt;

/// A network-unique transaction identifier.
///
/// Exactly the structure the paper gives for the output of
/// `BEGIN-TRANSACTION`: "a sequence number, qualified by the number of the
/// processor in which BEGIN-TRANSACTION was called, qualified by the number
/// of the network node which originated the transaction, designated the
/// *home* node".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transid {
    /// The node on which the transaction originated.
    pub home_node: NodeId,
    /// The processor on which `BEGIN-TRANSACTION` ran.
    pub cpu: u8,
    /// Per-CPU sequence number.
    pub seq: u64,
}

impl Transid {
    /// The reserved pseudo-CPU number used by ONLINEDUMP marker records on
    /// the audit trail. Real processors are numbered far below this, so a
    /// marker transid can never collide with a live transaction.
    pub const DUMP_MARKER_CPU: u8 = 255;

    /// This transaction's identity in the sim-layer flight recorder
    /// (the sim crate sits below storage and mirrors the fields).
    pub fn flight_id(&self) -> encompass_sim::FlightTransid {
        encompass_sim::FlightTransid {
            home_node: self.home_node.0,
            cpu: self.cpu,
            seq: self.seq,
        }
    }

    /// The synthetic transid under which dump generation `generation`
    /// brackets its DumpBegin/DumpEnd records on a volume's audit trail.
    /// Never registered with any TMP, so the Monitor Audit Trails report
    /// it as not-committed and recovery treats marker records specially.
    pub fn dump_marker(home_node: NodeId, generation: u64) -> Transid {
        Transid {
            home_node,
            cpu: Transid::DUMP_MARKER_CPU,
            seq: generation,
        }
    }

    /// True if this is an ONLINEDUMP marker pseudo-transid.
    pub fn is_dump_marker(&self) -> bool {
        self.cpu == Transid::DUMP_MARKER_CPU
    }
}

impl fmt::Debug for Transid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}.{}", self.home_node.0, self.cpu, self.seq)
    }
}

impl fmt::Display for Transid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A disc volume somewhere in the network.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VolumeRef {
    pub node: NodeId,
    pub volume: String,
}

impl VolumeRef {
    pub fn new(node: NodeId, volume: &str) -> VolumeRef {
        VolumeRef {
            node,
            volume: volume.to_string(),
        }
    }

    /// The DISCPROCESS service name for this volume (`$DATA` style).
    pub fn service_name(&self) -> String {
        self.volume.clone()
    }
}

impl fmt::Display for VolumeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.volume)
    }
}

/// The three ENSCRIBE structured file organizations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileOrganization {
    /// B+tree keyed by an arbitrary byte-string primary key.
    KeySequenced,
    /// Fixed slots addressed by record number (8-byte big-endian key).
    Relative,
    /// Append-only; records addressed by entry number assigned at insert.
    EntrySequenced,
}

/// An alternate (secondary) key: a fixed field of the record value.
/// The index is maintained automatically on every insert/update/delete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AltKeySpec {
    /// Name suffix of the generated index file.
    pub name: String,
    /// Byte offset of the field within the record value.
    pub offset: usize,
    /// Byte length of the field.
    pub len: usize,
}

impl AltKeySpec {
    /// Extract the alternate key field from a record value (zero-padded if
    /// the record is short).
    pub fn extract(&self, value: &Bytes) -> Bytes {
        let mut out = vec![0u8; self.len];
        let end = (self.offset + self.len).min(value.len());
        if end > self.offset {
            out[..end - self.offset].copy_from_slice(&value[self.offset..end]);
        }
        Bytes::from(out)
    }
}

/// One partition of a file: all keys `>= low_key` (up to the next
/// partition's `low_key`) live on `volume`.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    pub low_key: Bytes,
    pub volume: VolumeRef,
}

/// The catalog entry for a file.
#[derive(Clone, Debug)]
pub struct FileDef {
    pub name: String,
    pub organization: FileOrganization,
    /// Whether TMF audits updates to this file (before/after images).
    pub audited: bool,
    /// Partitions in ascending `low_key` order; the first must be the empty
    /// key. A single-partition file is the common case.
    pub partitions: Vec<PartitionSpec>,
    /// Alternate keys (empty for most files).
    pub alternates: Vec<AltKeySpec>,
}

impl FileDef {
    /// A single-partition audited key-sequenced file.
    pub fn key_sequenced(name: &str, volume: VolumeRef) -> FileDef {
        FileDef {
            name: name.to_string(),
            organization: FileOrganization::KeySequenced,
            audited: true,
            partitions: vec![PartitionSpec {
                low_key: Bytes::new(),
                volume,
            }],
            alternates: Vec::new(),
        }
    }

    /// A single-partition audited entry-sequenced file.
    pub fn entry_sequenced(name: &str, volume: VolumeRef) -> FileDef {
        FileDef {
            organization: FileOrganization::EntrySequenced,
            ..FileDef::key_sequenced(name, volume)
        }
    }

    /// A single-partition audited relative file.
    pub fn relative(name: &str, volume: VolumeRef) -> FileDef {
        FileDef {
            organization: FileOrganization::Relative,
            ..FileDef::key_sequenced(name, volume)
        }
    }

    /// Builder: mark unaudited.
    pub fn unaudited(mut self) -> FileDef {
        self.audited = false;
        self
    }

    /// Builder: add an alternate key.
    pub fn with_alternate(mut self, name: &str, offset: usize, len: usize) -> FileDef {
        self.alternates.push(AltKeySpec {
            name: name.to_string(),
            offset,
            len,
        });
        self
    }

    /// Builder: partition by key ranges. `bounds` are the low keys of the
    /// second and subsequent partitions.
    pub fn partitioned(mut self, parts: Vec<PartitionSpec>) -> FileDef {
        assert!(!parts.is_empty(), "at least one partition");
        assert!(
            parts[0].low_key.is_empty(),
            "first partition must start at the empty key"
        );
        for w in parts.windows(2) {
            assert!(w[0].low_key < w[1].low_key, "partitions must be ordered");
        }
        self.partitions = parts;
        self
    }

    /// The name of the index file backing alternate key `alt`.
    pub fn index_file_name(&self, alt: &AltKeySpec) -> String {
        format!("{}.{}", self.name, alt.name)
    }

    /// The volume holding `key`.
    pub fn volume_for(&self, key: &[u8]) -> &VolumeRef {
        let mut chosen = &self.partitions[0];
        for p in &self.partitions {
            if p.low_key.as_ref() <= key {
                chosen = p;
            } else {
                break;
            }
        }
        &chosen.volume
    }

    /// All volumes this file (or any partition of it) lives on.
    pub fn volumes(&self) -> Vec<&VolumeRef> {
        self.partitions.iter().map(|p| &p.volume).collect()
    }
}

/// How the DISCPROCESS guarantees that transaction backout stays feasible
/// (design decision D1 in DESIGN.md).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryMode {
    /// The paper's NonStop design: audit records are checkpointed to the
    /// backup DISCPROCESS before the update is performed; they reach disc
    /// lazily and are forced only at phase one of commit.
    NonStopCheckpoint,
    /// The conventional Write-Ahead-Log baseline: every update waits for
    /// its audit records to be force-written to the audit trail before the
    /// update is applied and acknowledged.
    WalForce,
}

/// Helper: encode a u64 as the 8-byte big-endian key used by relative
/// files and entry numbers.
pub fn num_key(n: u64) -> Bytes {
    Bytes::copy_from_slice(&n.to_be_bytes())
}

/// Helper: decode a `num_key`.
pub fn key_num(key: &[u8]) -> Option<u64> {
    key.try_into().ok().map(u64::from_be_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(n: u8, name: &str) -> VolumeRef {
        VolumeRef::new(NodeId(n), name)
    }

    #[test]
    fn transid_display() {
        let t = Transid {
            home_node: NodeId(3),
            cpu: 1,
            seq: 42,
        };
        assert_eq!(t.to_string(), "T3.1.42");
    }

    #[test]
    fn alt_key_extraction_pads() {
        let spec = AltKeySpec {
            name: "region".into(),
            offset: 4,
            len: 4,
        };
        assert_eq!(
            spec.extract(&Bytes::from_static(b"aaaabbbbcc")),
            Bytes::from_static(b"bbbb")
        );
        // record shorter than the field: zero padded
        assert_eq!(
            spec.extract(&Bytes::from_static(b"aaaab")),
            Bytes::from_static(b"b\0\0\0")
        );
        // record ends before the field starts
        assert_eq!(
            spec.extract(&Bytes::from_static(b"aa")),
            Bytes::from_static(b"\0\0\0\0")
        );
    }

    #[test]
    fn partition_routing() {
        let def = FileDef::key_sequenced("stock", vol(0, "$D0")).partitioned(vec![
            PartitionSpec {
                low_key: Bytes::new(),
                volume: vol(0, "$D0"),
            },
            PartitionSpec {
                low_key: Bytes::from_static(b"m"),
                volume: vol(1, "$D1"),
            },
        ]);
        assert_eq!(def.volume_for(b"apple"), &vol(0, "$D0"));
        assert_eq!(def.volume_for(b"m"), &vol(1, "$D1"));
        assert_eq!(def.volume_for(b"zebra"), &vol(1, "$D1"));
        assert_eq!(def.volumes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn partitions_must_be_ordered() {
        let _ = FileDef::key_sequenced("f", vol(0, "$D0")).partitioned(vec![
            PartitionSpec {
                low_key: Bytes::new(),
                volume: vol(0, "$D0"),
            },
            PartitionSpec {
                low_key: Bytes::from_static(b"z"),
                volume: vol(0, "$D0"),
            },
            PartitionSpec {
                low_key: Bytes::from_static(b"a"),
                volume: vol(0, "$D0"),
            },
        ]);
    }

    #[test]
    fn builders() {
        let def = FileDef::key_sequenced("item", vol(0, "$D0"))
            .with_alternate("vendor", 0, 8)
            .unaudited();
        assert!(!def.audited);
        assert_eq!(def.index_file_name(&def.alternates[0]), "item.vendor");
        assert_eq!(
            FileDef::relative("r", vol(0, "$D0")).organization,
            FileOrganization::Relative
        );
        assert_eq!(
            FileDef::entry_sequenced("e", vol(0, "$D0")).organization,
            FileOrganization::EntrySequenced
        );
    }

    #[test]
    fn num_key_roundtrip() {
        assert_eq!(key_num(&num_key(77)), Some(77));
        assert_eq!(key_num(b"short"), None);
        // numeric ordering is preserved by byte ordering
        assert!(num_key(2) < num_key(10));
    }
}
