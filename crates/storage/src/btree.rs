//! The key-sequenced file organization: a B+tree over byte-string keys.
//!
//! This is a faithful page-structured implementation — internal pages hold
//! separator keys and child pointers, leaf pages hold records and are
//! chained for ordered scans — rather than a wrapper over `std`'s maps, so
//! that the storage layer has honest page counts, split/merge behaviour,
//! and a measurable prefix-compression ratio (the paper lists "data and
//! index compression" among the data-base manager's features; here the
//! compressed size is *accounted* per leaf rather than physically packed,
//! since pages live in simulated memory).
//!
//! Deletion rebalances: an underfull page first borrows from a sibling and
//! otherwise merges with one, so occupancy invariants hold under any
//! workload. `check_invariants` verifies structure exhaustively and is run
//! by the property tests after every operation batch.

use bytes::Bytes;

type PageId = u32;

#[derive(Clone, Debug)]
enum Page {
    Internal {
        /// `keys.len() + 1 == children.len()`; subtree `i` holds keys
        /// `< keys[i]`, subtree `i+1` holds keys `>= keys[i]`.
        keys: Vec<Bytes>,
        children: Vec<PageId>,
    },
    Leaf {
        entries: Vec<(Bytes, Bytes)>,
        next: Option<PageId>,
    },
}

/// A key-sequenced file: a B+tree mapping byte keys to byte records.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    pages: Vec<Option<Page>>,
    free: Vec<PageId>,
    root: PageId,
    /// Maximum entries per leaf / keys per internal page.
    order: usize,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        BPlusTree::new(32)
    }
}

impl BPlusTree {
    /// `order` is the page fan-out (max entries per page), at least 4.
    pub fn new(order: usize) -> BPlusTree {
        assert!(order >= 4, "order must be at least 4");
        let mut t = BPlusTree {
            pages: Vec::new(),
            free: Vec::new(),
            root: 0,
            order,
            len: 0,
        };
        t.root = t.alloc(Page::Leaf {
            entries: Vec::new(),
            next: None,
        });
        t
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live pages.
    pub fn page_count(&self) -> usize {
        self.pages.iter().flatten().count()
    }

    /// Height of the tree (1 = a single leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut id = self.root;
        loop {
            match self.page(id) {
                Page::Leaf { .. } => return d,
                Page::Internal { children, .. } => {
                    id = children[0];
                    d += 1;
                }
            }
        }
    }

    fn min_fill(&self) -> usize {
        self.order / 2
    }

    fn page(&self, id: PageId) -> &Page {
        self.pages[id as usize].as_ref().expect("live page")
    }

    fn page_mut(&mut self, id: PageId) -> &mut Page {
        self.pages[id as usize].as_mut().expect("live page")
    }

    fn alloc(&mut self, p: Page) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(p);
            id
        } else {
            self.pages.push(Some(p));
            (self.pages.len() - 1) as PageId
        }
    }

    fn release(&mut self, id: PageId) {
        self.pages[id as usize] = None;
        self.free.push(id);
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    fn leaf_for(&self, key: &[u8]) -> PageId {
        let mut id = self.root;
        loop {
            match self.page(id) {
                Page::Leaf { .. } => return id,
                Page::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_ref() <= key);
                    id = children[idx];
                }
            }
        }
    }

    pub fn get(&self, key: &[u8]) -> Option<&Bytes> {
        let Page::Leaf { entries, .. } = self.page(self.leaf_for(key)) else {
            unreachable!()
        };
        entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| &entries[i].1)
    }

    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Records with `low <= key` and (if given) `key <= high`, in key order,
    /// at most `limit`.
    pub fn range(&self, low: &[u8], high: Option<&[u8]>, limit: usize) -> Vec<(Bytes, Bytes)> {
        let mut out = Vec::new();
        let mut id = self.leaf_for(low);
        loop {
            let Page::Leaf { entries, next } = self.page(id) else {
                unreachable!()
            };
            for (k, v) in entries {
                if k.as_ref() < low {
                    continue;
                }
                if let Some(h) = high {
                    if k.as_ref() > h {
                        return out;
                    }
                }
                if out.len() == limit {
                    return out;
                }
                out.push((k.clone(), v.clone()));
            }
            match next {
                Some(n) => id = *n,
                None => return out,
            }
        }
    }

    /// First (lowest-keyed) record.
    pub fn first(&self) -> Option<(Bytes, Bytes)> {
        self.range(&[], None, 1).into_iter().next()
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: Bytes, value: Bytes) -> Option<Bytes> {
        let (old, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let new_root = self.alloc(Page::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = new_root;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(
        &mut self,
        id: PageId,
        key: Bytes,
        value: Bytes,
    ) -> (Option<Bytes>, Option<(Bytes, PageId)>) {
        match self.page_mut(id) {
            Page::Leaf { entries, .. } => {
                let old = match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
                    Err(i) => {
                        entries.insert(i, (key, value));
                        None
                    }
                };
                let split = (self.leaf_len(id) > self.order).then(|| self.split_leaf(id));
                (old, split)
            }
            Page::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= &key);
                let child = children[idx];
                let (old, child_split) = self.insert_rec(child, key, value);
                if let Some((sep, right)) = child_split {
                    let Page::Internal { keys, children } = self.page_mut(id) else {
                        unreachable!()
                    };
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                let split = (self.internal_len(id) > self.order).then(|| self.split_internal(id));
                (old, split)
            }
        }
    }

    fn leaf_len(&self, id: PageId) -> usize {
        match self.page(id) {
            Page::Leaf { entries, .. } => entries.len(),
            _ => unreachable!(),
        }
    }

    fn internal_len(&self, id: PageId) -> usize {
        match self.page(id) {
            Page::Internal { keys, .. } => keys.len(),
            _ => unreachable!(),
        }
    }

    fn split_leaf(&mut self, id: PageId) -> (Bytes, PageId) {
        let Page::Leaf { entries, next } = self.page_mut(id) else {
            unreachable!()
        };
        let mid = entries.len() / 2;
        let right_entries = entries.split_off(mid);
        let sep = right_entries[0].0.clone();
        let old_next = *next;
        let right = self.alloc(Page::Leaf {
            entries: right_entries,
            next: old_next,
        });
        let Page::Leaf { next, .. } = self.page_mut(id) else {
            unreachable!()
        };
        *next = Some(right);
        (sep, right)
    }

    fn split_internal(&mut self, id: PageId) -> (Bytes, PageId) {
        let Page::Internal { keys, children } = self.page_mut(id) else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // the separator moves up
        let right_children = children.split_off(mid + 1);
        let right = self.alloc(Page::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, right)
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    /// Remove a record; returns its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<Bytes> {
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // shrink the root if it became a trivial internal page
        if let Page::Internal { keys, children } = self.page(self.root) {
            if keys.is_empty() {
                let only = children[0];
                let old_root = self.root;
                self.root = only;
                self.release(old_root);
            }
        }
        removed
    }

    fn remove_rec(&mut self, id: PageId, key: &[u8]) -> Option<Bytes> {
        match self.page_mut(id) {
            Page::Leaf { entries, .. } => entries
                .binary_search_by(|(k, _)| k.as_ref().cmp(key))
                .ok()
                .map(|i| entries.remove(i).1),
            Page::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_ref() <= key);
                let child = children[idx];
                let removed = self.remove_rec(child, key);
                if removed.is_some() {
                    self.fix_underflow(id, idx);
                }
                removed
            }
        }
    }

    fn child_size(&self, id: PageId) -> usize {
        match self.page(id) {
            Page::Leaf { entries, .. } => entries.len(),
            Page::Internal { keys, .. } => keys.len(),
        }
    }

    /// Rebalance `children[idx]` of the internal page `parent` if underfull.
    fn fix_underflow(&mut self, parent: PageId, idx: usize) {
        let min = self.min_fill();
        let (child, left_sib, right_sib) = {
            let Page::Internal { children, .. } = self.page(parent) else {
                unreachable!()
            };
            (
                children[idx],
                (idx > 0).then(|| children[idx - 1]),
                (idx + 1 < children.len()).then(|| children[idx + 1]),
            )
        };
        if self.child_size(child) >= min {
            return;
        }
        // try borrowing from a sibling with spare capacity
        if let Some(left) = left_sib {
            if self.child_size(left) > min {
                self.borrow_from_left(parent, idx, left, child);
                return;
            }
        }
        if let Some(right) = right_sib {
            if self.child_size(right) > min {
                self.borrow_from_right(parent, idx, child, right);
                return;
            }
        }
        // merge with a sibling
        if let Some(left) = left_sib {
            self.merge(parent, idx - 1, left, child);
        } else if let Some(right) = right_sib {
            self.merge(parent, idx, child, right);
        }
    }

    fn borrow_from_left(&mut self, parent: PageId, idx: usize, left: PageId, child: PageId) {
        match self.page_mut(left) {
            Page::Leaf { entries, .. } => {
                let moved = entries.pop().expect("left sibling has spare entries");
                let new_sep = moved.0.clone();
                let Page::Leaf { entries, .. } = self.page_mut(child) else {
                    unreachable!()
                };
                entries.insert(0, moved);
                let Page::Internal { keys, .. } = self.page_mut(parent) else {
                    unreachable!()
                };
                keys[idx - 1] = new_sep;
            }
            Page::Internal { keys, children } => {
                let moved_key = keys.pop().expect("left sibling has spare keys");
                let moved_child = children.pop().expect("matching child");
                let Page::Internal { keys, .. } = self.page_mut(parent) else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut keys[idx - 1], moved_key);
                let Page::Internal { keys, children } = self.page_mut(child) else {
                    unreachable!()
                };
                keys.insert(0, sep);
                children.insert(0, moved_child);
            }
        }
    }

    fn borrow_from_right(&mut self, parent: PageId, idx: usize, child: PageId, right: PageId) {
        match self.page_mut(right) {
            Page::Leaf { entries, .. } => {
                let moved = entries.remove(0);
                let new_sep = entries[0].0.clone();
                let Page::Leaf { entries, .. } = self.page_mut(child) else {
                    unreachable!()
                };
                entries.push(moved);
                let Page::Internal { keys, .. } = self.page_mut(parent) else {
                    unreachable!()
                };
                keys[idx] = new_sep;
            }
            Page::Internal { keys, children } => {
                let moved_key = keys.remove(0);
                let moved_child = children.remove(0);
                let Page::Internal { keys, .. } = self.page_mut(parent) else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut keys[idx], moved_key);
                let Page::Internal { keys, children } = self.page_mut(child) else {
                    unreachable!()
                };
                keys.push(sep);
                children.push(moved_child);
            }
        }
    }

    /// Merge `children[left_key_idx + 1]` into `children[left_key_idx]`.
    fn merge(&mut self, parent: PageId, left_key_idx: usize, left: PageId, right: PageId) {
        let right_page = self.pages[right as usize].take().expect("live page");
        self.free.push(right);
        let sep = {
            let Page::Internal { keys, children } = self.page_mut(parent) else {
                unreachable!()
            };
            children.remove(left_key_idx + 1);
            keys.remove(left_key_idx)
        };
        match (self.page_mut(left), right_page) {
            (
                Page::Leaf { entries, next },
                Page::Leaf {
                    entries: mut right_entries,
                    next: right_next,
                },
            ) => {
                entries.append(&mut right_entries);
                *next = right_next;
            }
            (
                Page::Internal { keys, children },
                Page::Internal {
                    keys: mut right_keys,
                    children: mut right_children,
                },
            ) => {
                keys.push(sep);
                keys.append(&mut right_keys);
                children.append(&mut right_children);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    // ------------------------------------------------------------------
    // Compression accounting & invariants
    // ------------------------------------------------------------------

    /// `(raw_key_bytes, prefix_compressed_key_bytes)` across all leaves:
    /// within each leaf, keys share their common prefix, which is stored
    /// once.
    pub fn key_compression(&self) -> (usize, usize) {
        let mut raw = 0;
        let mut compressed = 0;
        for page in self.pages.iter().flatten() {
            if let Page::Leaf { entries, .. } = page {
                if entries.is_empty() {
                    continue;
                }
                let prefix = common_prefix_len(&entries[0].0, &entries[entries.len() - 1].0);
                compressed += prefix;
                for (k, _) in entries {
                    raw += k.len();
                    compressed += k.len().saturating_sub(prefix);
                }
            }
        }
        (raw, compressed)
    }

    /// Verify every structural invariant; panics with a description on
    /// violation. Used by tests; O(n).
    pub fn check_invariants(&self) {
        let mut leaf_depths = Vec::new();
        let mut count = 0;
        self.check_node(self.root, None, None, 1, true, &mut leaf_depths, &mut count);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "all leaves at the same depth"
        );
        assert_eq!(count, self.len, "len matches leaf entry count");
        // leaf chain yields all records in order
        let chained = self.range(&[], None, usize::MAX);
        assert_eq!(chained.len(), self.len, "leaf chain covers all records");
        assert!(
            chained.windows(2).all(|w| w[0].0 < w[1].0),
            "leaf chain strictly ordered"
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        id: PageId,
        low: Option<&Bytes>,
        high: Option<&Bytes>,
        depth: usize,
        is_root: bool,
        leaf_depths: &mut Vec<usize>,
        count: &mut usize,
    ) {
        match self.page(id) {
            Page::Leaf { entries, .. } => {
                leaf_depths.push(depth);
                *count += entries.len();
                assert!(
                    entries.windows(2).all(|w| w[0].0 < w[1].0),
                    "leaf keys sorted"
                );
                if !is_root {
                    assert!(entries.len() >= self.min_fill(), "leaf occupancy");
                }
                for (k, _) in entries {
                    if let Some(l) = low {
                        assert!(k >= l, "leaf key respects lower separator");
                    }
                    if let Some(h) = high {
                        assert!(k < h, "leaf key respects upper separator");
                    }
                }
            }
            Page::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "fanout shape");
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators sorted");
                if !is_root {
                    assert!(keys.len() >= self.min_fill(), "internal occupancy");
                } else {
                    assert!(!keys.is_empty(), "root internal non-trivial");
                }
                for (i, &c) in children.iter().enumerate() {
                    let l = if i == 0 { low } else { Some(&keys[i - 1]) };
                    let h = if i == keys.len() { high } else { Some(&keys[i]) };
                    self.check_node(c, l, h, depth + 1, false, leaf_depths, count);
                }
            }
        }
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn bn(n: u32) -> Bytes {
        Bytes::from(format!("{n:08}").into_bytes())
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = BPlusTree::new(4);
        assert_eq!(t.insert(b("k1"), b("v1")), None);
        assert_eq!(t.insert(b("k1"), b("v2")), Some(b("v1")));
        assert_eq!(t.get(b"k1"), Some(&b("v2")));
        assert_eq!(t.get(b"nope"), None);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn grows_and_stays_balanced() {
        let mut t = BPlusTree::new(4);
        for i in 0..500 {
            t.insert(bn(i), bn(i * 2));
            if i % 37 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 500);
        assert!(t.depth() > 2, "tree actually grew");
        for i in 0..500 {
            assert_eq!(t.get(&bn(i)), Some(&bn(i * 2)), "key {i}");
        }
    }

    #[test]
    fn reverse_and_interleaved_insert_orders() {
        for order in [4, 5, 8, 33] {
            let mut t = BPlusTree::new(order);
            for i in (0..300).rev() {
                t.insert(bn(i), bn(i));
            }
            t.check_invariants();
            let mut t2 = BPlusTree::new(order);
            for i in 0..300 {
                let j = (i * 7919) % 300;
                t2.insert(bn(j), bn(j));
            }
            t2.check_invariants();
            assert_eq!(t.len(), t2.len());
        }
    }

    #[test]
    fn remove_everything_both_directions() {
        let mut t = BPlusTree::new(4);
        for i in 0..300 {
            t.insert(bn(i), bn(i));
        }
        for i in 0..150 {
            assert_eq!(t.remove(&bn(i)), Some(bn(i)), "forward {i}");
            if i % 13 == 0 {
                t.check_invariants();
            }
        }
        for i in (150..300).rev() {
            assert_eq!(t.remove(&bn(i)), Some(bn(i)), "backward {i}");
            if i % 13 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        t.check_invariants();
        assert_eq!(t.remove(b"absent"), None);
        // pages were recycled down to the single root leaf
        assert_eq!(t.page_count(), 1);
    }

    #[test]
    fn range_scans() {
        let mut t = BPlusTree::new(4);
        for i in 0..100 {
            t.insert(bn(i), bn(i));
        }
        let all = t.range(&[], None, usize::MAX);
        assert_eq!(all.len(), 100);
        let window = t.range(&bn(10), Some(&bn(19)), usize::MAX);
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].0, bn(10));
        assert_eq!(window[9].0, bn(19));
        let limited = t.range(&bn(0), None, 7);
        assert_eq!(limited.len(), 7);
        assert_eq!(t.first().unwrap().0, bn(0));
        // range starting between keys ("00000005x" sorts between 5 and 6)
        let between = t.range(b"00000005x", Some(&bn(7)), usize::MAX);
        assert_eq!(between.len(), 2); // 6, 7
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert!(t.range(&[], None, 10).is_empty());
        assert_eq!(t.first(), None);
        assert_eq!(t.depth(), 1);
        t.check_invariants();
    }

    #[test]
    fn compression_accounting() {
        let mut t = BPlusTree::new(8);
        for i in 0..64 {
            t.insert(b(&format!("customer/region-west/{i:04}")), bn(i));
        }
        let (raw, compressed) = t.key_compression();
        assert!(raw > compressed, "shared prefixes compress: {raw} vs {compressed}");
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn order_validated() {
        let _ = BPlusTree::new(3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u16, u16),
            Remove(u16),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u16..600, any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
                (0u16..600).prop_map(Op::Remove),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn matches_model(ops in prop::collection::vec(op_strategy(), 1..400), order in 4usize..12) {
                let mut tree = BPlusTree::new(order);
                let mut model = std::collections::BTreeMap::new();
                for op in ops {
                    match op {
                        Op::Insert(k, v) => {
                            let key = Bytes::from(format!("{k:05}"));
                            let val = Bytes::from(format!("{v}"));
                            let expect = model.insert(key.clone(), val.clone());
                            prop_assert_eq!(tree.insert(key, val), expect);
                        }
                        Op::Remove(k) => {
                            let key = Bytes::from(format!("{k:05}"));
                            let expect = model.remove(&key);
                            prop_assert_eq!(tree.remove(&key), expect);
                        }
                    }
                }
                tree.check_invariants();
                prop_assert_eq!(tree.len(), model.len());
                let scanned = tree.range(&[], None, usize::MAX);
                let expected: Vec<(Bytes, Bytes)> =
                    model.into_iter().collect();
                prop_assert_eq!(scanned, expected);
            }
        }
    }
}
