//! The wire protocol between a DISCPROCESS and its AUDITPROCESS.
//!
//! The types live here (the lower layer) so that `encompass-audit` can
//! implement the server side without a dependency cycle: the DISCPROCESS
//! *produces* before/after images; the audit crate *consumes* them.
//!
//! "Each DISCPROCESS which manages a disc volume configured as audited …
//! automatically provides before-images and after-images of data base
//! updates … to an AUDITPROCESS, which writes to an audit trail."

use crate::types::{FileOrganization, Transid, VolumeRef};
use bytes::Bytes;

/// One before/after image of a logical record update (including the
/// automatic updates of alternate-key index files).
#[derive(Clone, Debug, PartialEq)]
pub struct ImageRecord {
    /// Per-volume, strictly increasing audit sequence number.
    pub seq: u64,
    pub transid: Transid,
    pub volume: VolumeRef,
    pub file: String,
    pub organization: FileOrganization,
    pub key: Bytes,
    /// `None` = the record did not exist before this update.
    pub before: Option<Bytes>,
    /// `None` = the update deleted the record.
    pub after: Option<Bytes>,
}

impl ImageRecord {
    /// Approximate size on the trail, for throughput accounting.
    pub fn wire_size(&self) -> usize {
        32 + self.key.len()
            + self.before.as_ref().map(|b| b.len()).unwrap_or(0)
            + self.after.as_ref().map(|b| b.len()).unwrap_or(0)
    }
}

/// Requests a DISCPROCESS (or BACKOUTPROCESS / ROLLFORWARD) sends to an
/// AUDITPROCESS.
#[derive(Clone, Debug)]
pub enum AuditMsg {
    /// Buffer image records; if `force`, do not acknowledge until they are
    /// on the trail media (the Write-Ahead-Log baseline forces every
    /// append; the NonStop design appends lazily).
    Append {
        records: Vec<ImageRecord>,
        force: bool,
    },
    /// Phase one of commit: force every buffered record of this
    /// transaction (and everything queued before them) to the trail.
    ForceTxn { transid: Transid },
    /// All images of a transaction, buffered or on the trail — used by the
    /// BACKOUTPROCESS to drive undo.
    ReadTxnImages { transid: Transid },
}

/// Replies from an AUDITPROCESS.
#[derive(Clone, Debug)]
pub enum AuditReply {
    /// Append accepted (and forced, if requested).
    Appended,
    /// ForceTxn complete: everything the transaction wrote is on the trail.
    Forced,
    /// The transaction's images, in ascending sequence order.
    Images(Vec<ImageRecord>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::NodeId;

    #[test]
    fn wire_size_accounts_for_payloads() {
        let rec = ImageRecord {
            seq: 1,
            transid: Transid {
                home_node: NodeId(0),
                cpu: 0,
                seq: 1,
            },
            volume: VolumeRef::new(NodeId(0), "$D"),
            file: "f".into(),
            organization: FileOrganization::KeySequenced,
            key: Bytes::from_static(b"key"),
            before: Some(Bytes::from_static(b"aa")),
            after: None,
        };
        assert_eq!(rec.wire_size(), 32 + 3 + 2);
    }
}
