//! The wire protocol between a DISCPROCESS and its AUDITPROCESS.
//!
//! The types live here (the lower layer) so that `encompass-audit` can
//! implement the server side without a dependency cycle: the DISCPROCESS
//! *produces* before/after images; the audit crate *consumes* them.
//!
//! "Each DISCPROCESS which manages a disc volume configured as audited …
//! automatically provides before-images and after-images of data base
//! updates … to an AUDITPROCESS, which writes to an audit trail."

use crate::types::{FileOrganization, Transid, VolumeRef};
use bytes::Bytes;

/// Reserved pseudo-file name of ONLINEDUMP marker records (DumpBegin /
/// DumpEnd brackets). No real file may use this name; recovery filters
/// these records out instead of replaying them.
pub const DUMP_MARKER_FILE: &str = "$DUMPMARK";

/// One before/after image of a logical record update (including the
/// automatic updates of alternate-key index files).
#[derive(Clone, Debug, PartialEq)]
pub struct ImageRecord {
    /// Per-volume, strictly increasing audit sequence number.
    pub seq: u64,
    pub transid: Transid,
    pub volume: VolumeRef,
    pub file: String,
    pub organization: FileOrganization,
    pub key: Bytes,
    /// `None` = the record did not exist before this update.
    pub before: Option<Bytes>,
    /// `None` = the update deleted the record.
    pub after: Option<Bytes>,
}

impl ImageRecord {
    /// Approximate size on the trail, for throughput accounting.
    pub fn wire_size(&self) -> usize {
        32 + self.key.len()
            + self.before.as_ref().map(|b| b.len()).unwrap_or(0)
            + self.after.as_ref().map(|b| b.len()).unwrap_or(0)
    }

    /// An ONLINEDUMP marker record (DumpBegin when `end` is false,
    /// DumpEnd when true). Lives on the trail only; never applied to
    /// media and never replayed by recovery.
    pub fn dump_marker(seq: u64, volume: VolumeRef, generation: u64, end: bool) -> ImageRecord {
        ImageRecord {
            seq,
            transid: Transid::dump_marker(volume.node, generation),
            volume,
            file: DUMP_MARKER_FILE.to_string(),
            organization: FileOrganization::KeySequenced,
            key: Bytes::from(if end { "end" } else { "begin" }),
            before: None,
            after: None,
        }
    }

    /// True if this record is an ONLINEDUMP marker rather than a data
    /// image.
    pub fn is_dump_marker(&self) -> bool {
        self.file == DUMP_MARKER_FILE
    }
}

/// Requests a DISCPROCESS (or BACKOUTPROCESS / ROLLFORWARD) sends to an
/// AUDITPROCESS.
#[derive(Clone, Debug)]
pub enum AuditMsg {
    /// Buffer image records; if `force`, do not acknowledge until they are
    /// on the trail media (the Write-Ahead-Log baseline forces every
    /// append; the NonStop design appends lazily).
    Append {
        records: Vec<ImageRecord>,
        force: bool,
    },
    /// Phase one of commit: force every buffered record of this
    /// transaction (and everything queued before them) to the trail.
    ForceTxn { transid: Transid },
    /// All images of a transaction, buffered or on the trail — used by the
    /// BACKOUTPROCESS to drive undo.
    ReadTxnImages { transid: Transid },
    /// Capacity management: drop trail files whose records can never be
    /// needed by ROLLFORWARD. Sent by the TMP's purge pass with one entry
    /// per audited volume of the service: `Some(floor)` is the purge floor
    /// proven by the volume's latest completed dump, `None` means the
    /// volume has no completed dump yet. The AUDITPROCESS groups floors by
    /// trail partition and cuts each partition at the minimum floor of its
    /// volumes — a partition with any floorless volume is skipped. `open`
    /// lists the transids still open at the sending TMP; the AUDITPROCESS
    /// additionally clamps each cut below the first record of the oldest
    /// of them on that partition, so a backout can never find its
    /// before-images purged.
    Purge {
        floors: Vec<(String, Option<u64>)>,
        open: Vec<Transid>,
    },
    /// Utility query: report the sizes of the AUDITPROCESS's in-memory
    /// state (buffers, waiter queues, reply cache). Used by soak-mode
    /// bounded-state oracles; replied to immediately, never cached.
    StateAudit,
}

/// Sizes of an AUDITPROCESS's in-memory state, for bounded-state checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStateReport {
    /// Records appended but not yet forced, across all partitions.
    pub buffered: usize,
    /// Force waiters queued across all partitions.
    pub waiters: usize,
    /// Partitions with a physical force in flight.
    pub inflight_forces: usize,
    /// Fanned-out force requests awaiting partition acknowledgements.
    pub pending_forces: usize,
    /// Entries in the reply cache.
    pub reply_cache: usize,
}

/// Replies from an AUDITPROCESS.
#[derive(Clone, Debug)]
pub enum AuditReply {
    /// Append accepted (and forced, if requested).
    Appended,
    /// ForceTxn complete: everything the transaction wrote is on the trail.
    Forced,
    /// The transaction's images, in ascending sequence order.
    Images(Vec<ImageRecord>),
    /// Purge complete; `files` trail files were dropped.
    Purged { files: u64 },
    /// Reply to `StateAudit`.
    State(AuditStateReport),
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::NodeId;

    #[test]
    fn wire_size_accounts_for_payloads() {
        let rec = ImageRecord {
            seq: 1,
            transid: Transid {
                home_node: NodeId(0),
                cpu: 0,
                seq: 1,
            },
            volume: VolumeRef::new(NodeId(0), "$D"),
            file: "f".into(),
            organization: FileOrganization::KeySequenced,
            key: Bytes::from_static(b"key"),
            before: Some(Bytes::from_static(b"aa")),
            after: None,
        };
        assert_eq!(rec.wire_size(), 32 + 3 + 2);
    }
}
