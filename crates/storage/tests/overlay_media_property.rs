//! Property test: the DISCPROCESS's layered view (write-behind overlay
//! over flushed media) must be indistinguishable from a flat map, under
//! any interleaving of writes, deletes, flush batches, and scans.

use bytes::Bytes;
use encompass_storage::media::FileImage;
use encompass_storage::overlay::Overlay;
use encompass_storage::types::FileOrganization;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u16),
    Delete(u16),
    /// Flush up to n dirty entries to the media.
    Flush(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..200, any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0u16..200).prop_map(Op::Delete),
        (1u8..20).prop_map(Op::Flush),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("k{k:05}"))
}

/// The layered read: overlay first, then media.
fn layered_get(overlay: &Overlay, media: &FileImage, k: &Bytes) -> Option<Bytes> {
    match overlay.get("f", k) {
        Some(v) => v,
        None => media.read(k),
    }
}

/// The layered scan (the DISCPROCESS's merge logic, reimplemented per its
/// contract).
fn layered_scan(overlay: &Overlay, media: &FileImage) -> Vec<(Bytes, Bytes)> {
    let mut base: BTreeMap<Bytes, Bytes> = media.scan(&[], None, usize::MAX).into_iter().collect();
    for (k, v) in overlay.file_entries("f") {
        match v {
            Some(v) => {
                base.insert(k, v);
            }
            None => {
                base.remove(&k);
            }
        }
    }
    base.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn overlay_over_media_equals_flat_map(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut overlay = Overlay::new();
        let mut media = FileImage::new(FileOrganization::KeySequenced);
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let value = Bytes::from(format!("v{v}"));
                    overlay.put("f", key(k), Some(value.clone()));
                    model.insert(key(k), value);
                }
                Op::Delete(k) => {
                    overlay.put("f", key(k), None);
                    model.remove(&key(k));
                }
                Op::Flush(n) => {
                    for (file, k, v) in overlay.take_batch(n as usize) {
                        prop_assert_eq!(file.as_str(), "f");
                        media.apply(&k, v);
                    }
                }
            }
        }
        // point reads agree with the model everywhere
        for k in 0..200u16 {
            prop_assert_eq!(
                layered_get(&overlay, &media, &key(k)),
                model.get(&key(k)).cloned(),
                "key {}", k
            );
        }
        // the merged scan is exactly the model's content
        let scanned = layered_scan(&overlay, &media);
        let expected: Vec<(Bytes, Bytes)> = model.clone().into_iter().collect();
        prop_assert_eq!(scanned, expected);
        // and a full flush drains the overlay and leaves the media equal
        for (_, k, v) in overlay.take_batch(usize::MAX) {
            media.apply(&k, v);
        }
        prop_assert!(overlay.is_empty());
        let flushed: Vec<(Bytes, Bytes)> = media.scan(&[], None, usize::MAX);
        let expected: Vec<(Bytes, Bytes)> = model.into_iter().collect();
        prop_assert_eq!(flushed, expected);
    }
}
