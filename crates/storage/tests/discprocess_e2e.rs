//! End-to-end DISCPROCESS tests: a real simulated world, a process-pair per
//! volume, scripted clients, and fault injection.

use bytes::Bytes;
use encompass_sim::{CpuId, Fault, NodeId, SimConfig, SimDuration, SimTime, World};
use encompass_storage::discprocess::{
    spawn_disc_process, DiscConfig, DiscError, DiscReply, DiscRequest,
};
use encompass_storage::locks::LockMode;
use encompass_storage::media::{media_key, VolumeMedia};
use encompass_storage::testkit::run_script;
use encompass_storage::types::{num_key, FileDef, PartitionSpec, Transid, VolumeRef};
use encompass_storage::Catalog;
use guardian::Target;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn txn(seq: u64) -> Transid {
    Transid {
        home_node: NodeId(0),
        cpu: 0,
        seq,
    }
}

const WAIT: SimDuration = SimDuration::from_millis(200);

fn setup(catalog: Catalog) -> (World, NodeId, Target) {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let vol = VolumeRef::new(n, "$DATA");
    let h = spawn_disc_process(&mut w, 0, 1, vol, catalog, DiscConfig::default());
    (w, n, h.target())
}

fn basic_catalog(node: NodeId) -> Catalog {
    let vol = VolumeRef::new(node, "$DATA");
    let mut c = Catalog::new();
    c.add(FileDef::key_sequenced("accounts", vol.clone()));
    c.add(FileDef::entry_sequenced("history", vol.clone()));
    c.add(FileDef::relative("slots", vol.clone()).unaudited());
    c.add(FileDef::key_sequenced("vendors", vol).with_alternate("region", 0, 2));
    c
}

#[test]
fn transactional_insert_read_update_delete() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let replies = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("alice"),
                value: b("100"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            DiscRequest::Read {
                file: "accounts".into(),
                key: b("alice"),
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("alice"),
                value: b("150"),
                transid: Some(t),
            },
            DiscRequest::EndPhase1 { transid: t },
            DiscRequest::ReleaseLocks { transid: t, commit: true },
            DiscRequest::Read {
                file: "accounts".into(),
                key: b("alice"),
            },
        ],
    );
    w.run_for(SimDuration::from_secs(5));
    let r = replies.borrow();
    assert_eq!(r[0], DiscReply::Ok);
    assert_eq!(r[1], DiscReply::Value(Some(b("100"))));
    assert_eq!(r[2], DiscReply::Ok);
    assert_eq!(r[3], DiscReply::Phase1Done);
    assert_eq!(r[4], DiscReply::Ok);
    assert_eq!(r[5], DiscReply::Value(Some(b("150"))));
}

#[test]
fn update_without_lock_is_rejected_on_audited_files() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let replies = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            // no prior insert/readlock by this transaction
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("ghost"),
                value: b("1"),
                transid: Some(t),
            },
            // and audited writes without a transid are rejected outright
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("ghost"),
                value: b("1"),
                transid: None,
                lock_wait: WAIT,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let r = replies.borrow();
    assert_eq!(r[0], DiscReply::Err(DiscError::LockRequired));
    assert_eq!(r[1], DiscReply::Err(DiscError::NeedTransid));
}

#[test]
fn lock_conflict_waits_until_release() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t1 = txn(1);
    let t2 = txn(2);
    // t1 inserts and holds the lock
    let r1 = run_script(
        &mut w,
        n,
        2,
        target.clone(),
        vec![DiscRequest::Insert {
            file: "accounts".into(),
            key: b("k"),
            value: b("v1"),
            transid: Some(t1),
            lock_wait: WAIT,
        }],
    );
    w.run_for(SimDuration::from_millis(50));
    // t2 tries to lock the same record: parks
    let r2 = run_script(
        &mut w,
        n,
        3,
        target.clone(),
        vec![DiscRequest::ReadLock {
            file: "accounts".into(),
            key: b("k"),
            transid: t2,
            lock_wait: SimDuration::from_secs(2),
            mode: LockMode::Exclusive,
        }],
    );
    w.run_for(SimDuration::from_millis(100));
    assert_eq!(r1.borrow().len(), 1);
    assert_eq!(r2.borrow().len(), 0, "t2 is parked on the lock");
    // t1 releases: t2's read-lock completes and sees t1's value
    let _ = run_script(
        &mut w,
        n,
        2,
        target,
        vec![DiscRequest::ReleaseLocks { transid: t1, commit: true }],
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(r2.borrow()[0], DiscReply::Value(Some(b("v1"))));
}

#[test]
fn lock_timeout_signals_deadlock() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t1 = txn(1);
    let t2 = txn(2);
    let _ = run_script(
        &mut w,
        n,
        2,
        target.clone(),
        vec![DiscRequest::Insert {
            file: "accounts".into(),
            key: b("hot"),
            value: b("v"),
            transid: Some(t1),
            lock_wait: WAIT,
        }],
    );
    w.run_for(SimDuration::from_millis(20));
    let r2 = run_script(
        &mut w,
        n,
        3,
        target,
        vec![DiscRequest::ReadLock {
            file: "accounts".into(),
            key: b("hot"),
            transid: t2,
            lock_wait: SimDuration::from_millis(80),
            mode: LockMode::Exclusive,
        }],
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(r2.borrow()[0], DiscReply::Err(DiscError::LockTimeout));
    assert_eq!(w.metrics().get("disc.lock_timeouts"), 1);
}

#[test]
fn entry_sequenced_append_and_scan() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let replies = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::InsertEntry {
                file: "history".into(),
                value: b("first"),
                transid: Some(t),
            },
            DiscRequest::InsertEntry {
                file: "history".into(),
                value: b("second"),
                transid: Some(t),
            },
            DiscRequest::ReleaseLocks { transid: t, commit: true },
            DiscRequest::ReadRange {
                file: "history".into(),
                low: num_key(0),
                high: None,
                limit: 10,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let r = replies.borrow();
    assert_eq!(r[0], DiscReply::EntryNumber(0));
    assert_eq!(r[1], DiscReply::EntryNumber(1));
    match &r[3] {
        DiscReply::Entries(es) => {
            assert_eq!(es.len(), 2);
            assert_eq!(es[0], (num_key(0), b("first")));
            assert_eq!(es[1], (num_key(1), b("second")));
        }
        other => panic!("expected entries, got {other:?}"),
    }
}

#[test]
fn alternate_key_index_is_maintained() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let replies = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::Insert {
                file: "vendors".into(),
                key: b("acme"),
                value: b("CAdata"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            DiscRequest::Insert {
                file: "vendors".into(),
                key: b("bolt"),
                value: b("NYdata"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            DiscRequest::ReleaseLocks { transid: t, commit: true },
            // scan the index by region prefix "CA"
            DiscRequest::ReadRange {
                file: "vendors.region".into(),
                low: b("CA"),
                high: Some(b("CA\u{ff}")),
                limit: 10,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let r = replies.borrow();
    match &r[3] {
        DiscReply::Entries(es) => {
            assert_eq!(es.len(), 1);
            assert_eq!(es[0].0, b("CAacme"), "index key = altkey || primary key");
        }
        other => panic!("expected entries, got {other:?}"),
    }
    // move acme to NY: index entry follows
    let t2 = txn(2);
    let replies2 = run_script(
        &mut w,
        n,
        3,
        Target::Named(n, "$DATA".into()),
        vec![
            DiscRequest::ReadLock {
                file: "vendors".into(),
                key: b("acme"),
                transid: t2,
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "vendors".into(),
                key: b("acme"),
                value: b("NYdata2"),
                transid: Some(t2),
            },
            DiscRequest::ReleaseLocks { transid: t2, commit: true },
            DiscRequest::ReadRange {
                file: "vendors.region".into(),
                low: b(""),
                high: None,
                limit: 10,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let r2 = replies2.borrow();
    match &r2[3] {
        DiscReply::Entries(es) => {
            let keys: Vec<&[u8]> = es.iter().map(|(k, _)| k.as_ref()).collect();
            assert_eq!(keys, vec![b"NYacme".as_ref(), b"NYbolt".as_ref()]);
        }
        other => panic!("expected entries, got {other:?}"),
    }
}

#[test]
fn partitioned_file_rejects_foreign_keys() {
    let node = NodeId(0);
    let vol0 = VolumeRef::new(node, "$DATA");
    let vol1 = VolumeRef::new(node, "$OTHER");
    let mut c = Catalog::new();
    c.add(FileDef::key_sequenced("stock", vol0).partitioned(vec![
        PartitionSpec {
            low_key: Bytes::new(),
            volume: VolumeRef::new(node, "$DATA"),
        },
        PartitionSpec {
            low_key: b("m"),
            volume: vol1,
        },
    ]));
    let (mut w, n, target) = setup(c);
    let t = txn(1);
    let replies = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::Insert {
                file: "stock".into(),
                key: b("apple"),
                value: b("1"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            // "zebra" belongs to the $OTHER partition
            DiscRequest::Insert {
                file: "stock".into(),
                key: b("zebra"),
                value: b("1"),
                transid: Some(t),
                lock_wait: WAIT,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let r = replies.borrow();
    assert_eq!(r[0], DiscReply::Ok);
    assert_eq!(r[1], DiscReply::Err(DiscError::WrongVolume));
}

#[test]
fn flush_reaches_media_and_survives_double_cpu_loss() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let _ = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("flushed"),
                value: b("v"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            DiscRequest::ReleaseLocks { transid: t, commit: true },
        ],
    );
    // plenty of time for the background flush
    w.run_for(SimDuration::from_secs(2));
    assert!(w.metrics().get("disc.flush_writes") >= 1);
    // kill both CPUs of the pair — the media still holds the record
    w.inject(Fault::KillCpu(n, CpuId(0)));
    w.inject(Fault::KillCpu(n, CpuId(1)));
    w.run_for(SimDuration::from_millis(100));
    let media = w
        .stable()
        .get::<VolumeMedia>(&media_key(n, "$DATA"))
        .expect("media survives");
    assert_eq!(
        media.file("accounts").and_then(|f| f.read(b"flushed")),
        Some(b("v"))
    );
}

#[test]
fn takeover_preserves_overlay_and_locks() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    // perform an update, then kill the primary before any flush
    let cfg_check = run_script(
        &mut w,
        n,
        2,
        target.clone(),
        vec![DiscRequest::Insert {
            file: "accounts".into(),
            key: b("x"),
            value: b("pre-takeover"),
            transid: Some(t),
            lock_wait: WAIT,
        }],
    );
    w.run_for(SimDuration::from_millis(20));
    assert_eq!(cfg_check.borrow().len(), 1);
    w.inject(Fault::KillCpu(n, CpuId(0)));
    w.run_for(SimDuration::from_millis(50));
    // the backup serves reads of the unflushed record, and still enforces
    // t's lock against another transaction
    let t2 = txn(2);
    let replies = run_script(
        &mut w,
        n,
        3,
        target,
        vec![
            DiscRequest::Read {
                file: "accounts".into(),
                key: b("x"),
            },
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("x"),
                transid: t2,
                lock_wait: SimDuration::from_millis(50),
                mode: LockMode::Exclusive,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    let r = replies.borrow();
    assert_eq!(r[0], DiscReply::Value(Some(b("pre-takeover"))));
    assert_eq!(
        r[1],
        DiscReply::Err(DiscError::LockTimeout),
        "t1's lock survived the takeover"
    );
    assert_eq!(w.metrics().get("pair.takeovers"), 1);
}

#[test]
fn mirrored_drive_failure_is_transparent_but_double_failure_stops_io() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let _ = run_script(
        &mut w,
        n,
        2,
        target.clone(),
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("m"),
                value: b("1"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            DiscRequest::ReleaseLocks { transid: t, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    // one drive fails: service continues
    w.stable_mut()
        .get_mut::<VolumeMedia>(&media_key(n, "$DATA"))
        .unwrap()
        .fail_drive(0);
    let r = run_script(
        &mut w,
        n,
        3,
        target.clone(),
        vec![DiscRequest::Read {
            file: "accounts".into(),
            key: b("m"),
        }],
    );
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(r.borrow()[0], DiscReply::Value(Some(b("1"))));
    // second drive fails: VolumeDown
    w.stable_mut()
        .get_mut::<VolumeMedia>(&media_key(n, "$DATA"))
        .unwrap()
        .fail_drive(1);
    let r2 = run_script(
        &mut w,
        n,
        3,
        target,
        vec![DiscRequest::Read {
            file: "accounts".into(),
            key: b("m"),
        }],
    );
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(r2.borrow()[0], DiscReply::Err(DiscError::VolumeDown));
}

#[test]
fn undo_restores_before_images() {
    use encompass_storage::audit_api::ImageRecord;
    use encompass_storage::types::FileOrganization;
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t = txn(1);
    let replies = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("u"),
                value: b("orig"),
                transid: Some(t),
                lock_wait: WAIT,
            },
            DiscRequest::ReleaseLocks { transid: t, commit: true },
            // a second transaction updates, then is "backed out" via Undo
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("u"),
                transid: txn(2),
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("u"),
                value: b("dirty"),
                transid: Some(txn(2)),
            },
            DiscRequest::Undo {
                images: vec![ImageRecord {
                    seq: 99,
                    transid: txn(2),
                    volume: VolumeRef::new(n, "$DATA"),
                    file: "accounts".into(),
                    organization: FileOrganization::KeySequenced,
                    key: b("u"),
                    before: Some(b("orig")),
                    after: Some(b("dirty")),
                }],
            },
            DiscRequest::ReleaseLocks { transid: txn(2), commit: false },
            DiscRequest::Read {
                file: "accounts".into(),
                key: b("u"),
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let r = replies.borrow();
    assert_eq!(*r.last().unwrap(), DiscReply::Value(Some(b("orig"))));
}

#[test]
fn deterministic_under_faults() {
    fn run() -> u64 {
        let node = NodeId(0);
        let (mut w, n, target) = setup(basic_catalog(node));
        let t = txn(1);
        let _ = run_script(
            &mut w,
            n,
            2,
            target,
            vec![
                DiscRequest::Insert {
                    file: "accounts".into(),
                    key: b("d"),
                    value: b("1"),
                    transid: Some(t),
                    lock_wait: WAIT,
                },
                DiscRequest::Update {
                    file: "accounts".into(),
                    key: b("d"),
                    value: b("2"),
                    transid: Some(t),
                },
                DiscRequest::ReleaseLocks { transid: t, commit: true },
            ],
        );
        w.schedule_fault(SimTime::from_micros(300), Fault::KillCpu(n, CpuId(0)));
        w.run_for(SimDuration::from_secs(3));
        w.trace_hash()
    }
    assert_eq!(run(), run());
}

#[test]
fn snapshot_read_sees_fence_time_value_despite_later_commit() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    // t1 commits "v1"
    let t1 = txn(1);
    let _ = run_script(
        &mut w,
        n,
        0,
        target.clone(),
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("snap"),
                value: b("v1"),
                transid: Some(t1),
                lock_wait: WAIT,
            },
            DiscRequest::EndPhase1 { transid: t1 },
            DiscRequest::ReleaseLocks { transid: t1, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    // an unfenced snapshot read pins the current fence and sees v1
    let r1 = run_script(
        &mut w,
        n,
        1,
        target.clone(),
        vec![DiscRequest::SnapshotRead {
            file: "accounts".into(),
            key: b("snap"),
            fence: None,
        }],
    );
    w.run_for(SimDuration::from_secs(1));
    let fence = match r1.borrow().first() {
        Some(DiscReply::Snapshot { value, fence }) => {
            assert_eq!(value.as_deref(), Some(&b("v1")[..]));
            *fence
        }
        other => panic!("expected Snapshot reply, got {other:?}"),
    };
    // t2 overwrites and commits
    let t2 = txn(2);
    let _ = run_script(
        &mut w,
        n,
        2,
        target.clone(),
        vec![
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("snap"),
                transid: t2,
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("snap"),
                value: b("v2"),
                transid: Some(t2),
            },
            DiscRequest::EndPhase1 { transid: t2 },
            DiscRequest::ReleaseLocks { transid: t2, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    // re-reading at the pinned fence still sees v1; an unfenced read sees v2
    let r2 = run_script(
        &mut w,
        n,
        3,
        target,
        vec![
            DiscRequest::SnapshotRead {
                file: "accounts".into(),
                key: b("snap"),
                fence: Some(fence),
            },
            DiscRequest::SnapshotRead {
                file: "accounts".into(),
                key: b("snap"),
                fence: None,
            },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    let r = r2.borrow();
    match &r[0] {
        DiscReply::Snapshot { value, fence: f } => {
            assert_eq!(value.as_deref(), Some(&b("v1")[..]), "fenced read travels in time");
            assert_eq!(*f, fence);
        }
        other => panic!("expected Snapshot reply, got {other:?}"),
    }
    match &r[1] {
        DiscReply::Snapshot { value, .. } => {
            assert_eq!(value.as_deref(), Some(&b("v2")[..]), "unfenced read is current");
        }
        other => panic!("expected Snapshot reply, got {other:?}"),
    }
}

#[test]
fn snapshot_read_ignores_uncommitted_writer_without_blocking() {
    let node = NodeId(0);
    let (mut w, n, target) = setup(basic_catalog(node));
    let t1 = txn(1);
    let _ = run_script(
        &mut w,
        n,
        0,
        target.clone(),
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("live"),
                value: b("committed"),
                transid: Some(t1),
                lock_wait: WAIT,
            },
            DiscRequest::EndPhase1 { transid: t1 },
            DiscRequest::ReleaseLocks { transid: t1, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    // t2 holds an exclusive lock and a dirty overwrite, uncommitted
    let t2 = txn(2);
    let _ = run_script(
        &mut w,
        n,
        1,
        target.clone(),
        vec![
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("live"),
                transid: t2,
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("live"),
                value: b("dirty"),
                transid: Some(t2),
            },
        ],
    );
    w.run_for(SimDuration::from_millis(200));
    // the snapshot read completes immediately (no lock acquired) and sees
    // the committed value, not t2's dirty one
    let r = run_script(
        &mut w,
        n,
        2,
        target,
        vec![DiscRequest::SnapshotRead {
            file: "accounts".into(),
            key: b("live"),
            fence: None,
        }],
    );
    w.run_for(SimDuration::from_millis(200));
    match r.borrow().first() {
        Some(DiscReply::Snapshot { value, .. }) => {
            assert_eq!(value.as_deref(), Some(&b("committed")[..]));
        }
        other => panic!("snapshot read should not queue behind the X lock: {other:?}"),
    };
}

#[test]
fn snapshot_read_with_evicted_fence_is_too_old() {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let vol = VolumeRef::new(n, "$DATA");
    let catalog = basic_catalog(n);
    // a tiny undo ring so a handful of commits evicts the oldest entries
    let cfg = DiscConfig {
        snapshot_undo_capacity: 2,
        ..DiscConfig::default()
    };
    let h = spawn_disc_process(&mut w, 0, 1, vol, catalog, cfg);
    let target = h.target();
    let t0 = txn(9);
    let _ = run_script(
        &mut w,
        n,
        0,
        target.clone(),
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("old"),
                value: b("v0"),
                transid: Some(t0),
                lock_wait: WAIT,
            },
            DiscRequest::EndPhase1 { transid: t0 },
            DiscRequest::ReleaseLocks { transid: t0, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    for i in 1..=4u64 {
        let t = txn(i);
        let _ = run_script(
            &mut w,
            n,
            0,
            target.clone(),
            vec![
                DiscRequest::ReadLock {
                    file: "accounts".into(),
                    key: b("old"),
                    transid: t,
                    lock_wait: WAIT,
                    mode: LockMode::Exclusive,
                },
                DiscRequest::Update {
                    file: "accounts".into(),
                    key: b("old"),
                    value: Bytes::from(format!("v{i}")),
                    transid: Some(t),
                },
                DiscRequest::EndPhase1 { transid: t },
                DiscRequest::ReleaseLocks { transid: t, commit: true },
            ],
        );
        w.run_for(SimDuration::from_secs(1));
    }
    // fence 0 predates the ring's oldest retained entry
    let r = run_script(
        &mut w,
        n,
        1,
        target,
        vec![DiscRequest::SnapshotRead {
            file: "accounts".into(),
            key: b("old"),
            fence: Some(0),
        }],
    );
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(
        r.borrow().first(),
        Some(&DiscReply::Err(DiscError::SnapshotTooOld))
    );
    assert_eq!(w.metrics().get("disc.snapshot_too_old"), 1);
}
