//! Audit-trail microbenches: append/force throughput and transaction
//! image queries.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use encompass_audit::trail::TrailMedia;
use encompass_sim::NodeId;
use encompass_storage::audit_api::ImageRecord;
use encompass_storage::types::{FileOrganization, Transid, VolumeRef};

fn img(seq: u64, txn: u64) -> ImageRecord {
    ImageRecord {
        seq,
        transid: Transid {
            home_node: NodeId(0),
            cpu: 0,
            seq: txn,
        },
        volume: VolumeRef::new(NodeId(0), "$D"),
        file: "accounts".into(),
        organization: FileOrganization::KeySequenced,
        key: Bytes::from(format!("k{}", seq % 512)),
        before: Some(Bytes::from_static(b"before-value")),
        after: Some(Bytes::from_static(b"after-value")),
    }
}

fn bench_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit");
    g.sample_size(20);

    g.bench_function("force_batches_of_16", |b| {
        b.iter_batched(
            || TrailMedia::new(4096),
            |mut trail| {
                for batch in 0..64u64 {
                    let records = (0..16).map(|i| img(batch * 16 + i, batch)).collect();
                    trail.force(records);
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("txn_images_query", |b| {
        let mut trail = TrailMedia::new(4096);
        for batch in 0..64u64 {
            let records = (0..16).map(|i| img(batch * 16 + i, batch % 8)).collect();
            trail.force(records);
        }
        let mut txn = 0u64;
        b.iter(|| {
            txn = (txn + 1) % 8;
            std::hint::black_box(trail.txn_images(Transid {
                home_node: NodeId(0),
                cpu: 0,
                seq: txn,
            }));
        })
    });

    g.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
