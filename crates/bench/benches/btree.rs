//! Microbenchmarks of the key-sequenced file (B+tree): insert, point
//! read, and ordered scan.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use encompass_storage::btree::BPlusTree;

fn key(i: u64) -> Bytes {
    Bytes::from(format!("customer/{i:010}"))
}

fn populated(n: u64) -> BPlusTree {
    let mut t = BPlusTree::new(32);
    for i in 0..n {
        t.insert(key(i), Bytes::from(format!("record-{i}")));
    }
    t
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);

    g.bench_function("insert_10k_sequential", |b| {
        b.iter_batched(
            || (),
            |_| populated(10_000),
            BatchSize::SmallInput,
        )
    });

    let t = populated(10_000);
    g.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            std::hint::black_box(t.get(&key(i)));
        })
    });

    g.bench_function("scan_100", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 9_000;
            std::hint::black_box(t.range(&key(i), None, 100));
        })
    });

    g.bench_function("remove_insert_churn", |b| {
        let mut t = populated(10_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            t.remove(&key(i));
            t.insert(key(i), Bytes::from_static(b"fresh"));
        })
    });

    g.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
