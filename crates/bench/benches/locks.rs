//! Microbenchmarks of the decentralized lock manager: grant, conflict
//! queueing, and bulk release.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use encompass_sim::NodeId;
use encompass_storage::locks::{LockManager, LockMode, LockScope};
use encompass_storage::types::Transid;

fn t(seq: u64) -> Transid {
    Transid {
        home_node: NodeId(0),
        cpu: 0,
        seq,
    }
}

fn rec(i: u64) -> LockScope {
    LockScope::Record {
        file: "accounts".into(),
        key: Bytes::from(format!("k{i}")),
    }
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.sample_size(20);

    g.bench_function("acquire_release_100", |b| {
        b.iter_batched(
            LockManager::new,
            |mut lm| {
                for i in 0..100 {
                    let _ = lm.acquire(t(1), rec(i), LockMode::Exclusive, i);
                }
                let _ = lm.release_all(t(1));
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("contended_queue_then_release", |b| {
        b.iter_batched(
            || {
                let mut lm = LockManager::new();
                let _ = lm.acquire(t(0), rec(0), LockMode::Exclusive, 0);
                // 50 waiters on the hot record
                for w in 1..=50 {
                    let _ = lm.acquire(t(w), rec(0), LockMode::Exclusive, w);
                }
                lm
            },
            |mut lm| {
                // cascading grants: each release wakes the next waiter
                let mut holder = t(0);
                for _ in 0..50 {
                    let granted = lm.release_all(holder);
                    match granted.first() {
                        Some(g) => holder = g.txn,
                        None => break,
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
