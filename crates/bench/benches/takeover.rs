//! Process-pair takeover bench: a full DISCPROCESS-primary failure and
//! recovery cycle under load, per iteration (the T8 scenario as a timing
//! bench).

use criterion::{criterion_group, criterion_main, Criterion};
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_sim::{CpuId, Fault, SimDuration};

fn takeover_cycle() {
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: 4,
        transactions_per_terminal: 8,
        accounts: 200,
        think: SimDuration::from_millis(1),
        ..BankAppParams::default()
    });
    let n = app.nodes[0];
    app.world.run_for(SimDuration::from_millis(300));
    app.world.inject(Fault::KillCpu(n, CpuId(2))); // DISCPROCESS primary
    app.world.run_for(SimDuration::from_secs(60));
    assert_eq!(app.world.metrics().get("tcp.commits"), 32);
    assert!(app.world.metrics().get("pair.takeovers") >= 1);
}

fn bench_takeover(c: &mut Criterion) {
    let mut g = c.benchmark_group("takeover");
    g.sample_size(10);
    g.bench_function("disc_primary_failure_full_recovery", |b| {
        b.iter(takeover_cycle)
    });
    g.finish();
}

criterion_group!(benches, bench_takeover);
criterion_main!(benches);
