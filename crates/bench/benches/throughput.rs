//! Full-stack throughput bench: a complete bank workload (terminals →
//! TCP → servers → TMF → DISCPROCESSes) per iteration, in both recovery
//! modes (the T3 ablation as a timing bench).

use criterion::{criterion_group, criterion_main, Criterion};
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_sim::SimDuration;
use encompass_storage::types::RecoveryMode;

fn run_bank(mode: RecoveryMode) -> u64 {
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: 4,
        transactions_per_terminal: 10,
        accounts: 200,
        think: SimDuration::from_millis(1),
        recovery_mode: mode,
        ..BankAppParams::default()
    });
    app.world.run_for(SimDuration::from_secs(60));
    let commits = app.world.metrics().get("tcp.commits");
    assert_eq!(commits, 40);
    commits
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    g.bench_function("bank_40_txns_nonstop_checkpoint", |b| {
        b.iter(|| run_bank(RecoveryMode::NonStopCheckpoint))
    });
    g.bench_function("bank_40_txns_wal_force", |b| {
        b.iter(|| run_bank(RecoveryMode::WalForce))
    });
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
