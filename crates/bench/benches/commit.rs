//! End-to-end commit-protocol benches: one full transaction through TMF
//! (single-node abbreviated 2PC vs distributed 2PC), measuring simulator
//! wall time per committed transaction.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use encompass::app::AppBuilder;
use encompass_bench::driver::{run_txn_script, Step};
use encompass_sim::{NodeId, SimDuration};
use encompass_storage::types::{FileDef, VolumeRef};
use encompass_storage::Catalog;

fn commit_on_n_nodes(participants: usize) {
    let node_ids: Vec<NodeId> = (0..4u8).map(NodeId).collect();
    let mut catalog = Catalog::new();
    for &node in &node_ids {
        catalog.add(FileDef::key_sequenced(
            &format!("f{}", node.0),
            VolumeRef::new(node, format!("$D{}", node.0).as_str()),
        ));
    }
    let mut builder = AppBuilder::new();
    for _ in 0..4 {
        builder = builder.node(4);
    }
    let mut app = builder.mesh(SimDuration::from_millis(2)).build(catalog);
    let mut script = vec![Step::Begin];
    for i in 0..participants {
        script.push(Step::Insert(
            format!("f{i}"),
            Bytes::from_static(b"key"),
            Bytes::from_static(b"value"),
        ));
    }
    script.push(Step::End);
    let log = run_txn_script(&mut app.world, node_ids[0], 0, app.catalog.clone(), script);
    app.world.run_for(SimDuration::from_secs(10));
    assert_eq!(log.borrow().last().map(|s| s.as_str()), Some("committed"));
}

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit");
    g.sample_size(10);
    for p in [1usize, 2, 4] {
        g.bench_function(format!("txn_{p}_participant_nodes"), |b| {
            b.iter(|| commit_on_n_nodes(p))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
