//! ROLLFORWARD bench: recovery of a volume from archive + trail, by trail
//! volume (the T5 cost curve as a timing bench).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use encompass_audit::monitor::MonitorTrail;
use encompass_audit::rollforward::rollforward_volume;
use encompass_audit::trail::{trail_key, TrailMedia};
use encompass_sim::{SimConfig, SimTime, World};
use encompass_storage::audit_api::ImageRecord;
use encompass_storage::media::{archive_key, ArchiveImage};
use encompass_storage::types::{FileOrganization, Transid, VolumeRef};

/// A world with an empty archive and `n` committed single-image txns on
/// the trail.
fn prepared(n: u64) -> (World, VolumeRef, String) {
    let mut w = World::new(SimConfig::default());
    let node = w.add_node(2);
    let vol = VolumeRef::new(node, "$D");
    let akey = archive_key(&vol, 1);
    let vol2 = vol.clone();
    w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, move || ArchiveImage {
        volume: vol2,
        files: std::collections::BTreeMap::new(),
        audit_watermark: 0,
        generation: 1,
        purge_floor: 1,
    });
    let tk = trail_key(node, "$AUDIT");
    let vol3 = vol.clone();
    {
        let trail = w
            .stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(4096));
        let records = (0..n)
            .map(|i| ImageRecord {
                seq: i + 1,
                transid: Transid {
                    home_node: node,
                    cpu: 0,
                    seq: i,
                },
                volume: vol3.clone(),
                file: "accounts".into(),
                organization: FileOrganization::KeySequenced,
                key: Bytes::from(format!("k{}", i % 1024)),
                before: None,
                after: Some(Bytes::from(format!("v{i}"))),
            })
            .collect();
        trail.force(records);
    }
    for i in 0..n {
        MonitorTrail::of(w.stable_mut(), node).record(
            Transid {
                home_node: node,
                cpu: 0,
                seq: i,
            },
            true,
            SimTime::ZERO,
        );
    }
    (w, vol, tk)
}

fn bench_rollforward(c: &mut Criterion) {
    let mut g = c.benchmark_group("rollforward");
    g.sample_size(10);
    for n in [1_000u64, 10_000] {
        g.bench_function(format!("replay_{n}_images"), |b| {
            b.iter_batched(
                || prepared(n),
                |(mut w, vol, tk)| {
                    let report = rollforward_volume(&mut w, &vol, &[tk], 1);
                    assert_eq!(report.redone as u64, n);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rollforward);
criterion_main!(benches);
