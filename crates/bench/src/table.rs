//! Minimal aligned-column table rendering for experiment output.

/// A titled table with aligned columns.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row<S: ToString>(&mut self, cells: Vec<S>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width");
        self.rows.push(cells.into_iter().map(|c| c.to_string()).collect());
        self
    }

    pub fn note(&mut self, s: &str) -> &mut Table {
        self.notes.push(s.to_string());
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x", "1"]);
        t.row(vec!["longer-name", "22"]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name  22"));
        assert!(s.contains("note: a note"));
        // aligned: the short row is padded to the long row's width
        assert!(s.contains("x            1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
