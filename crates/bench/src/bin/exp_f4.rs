//! Experiment f4 of EXPERIMENTS.md — see `encompass_bench::experiments::f4`.
fn main() {
    for table in encompass_bench::experiments::f4() {
        println!("{table}");
    }
}
