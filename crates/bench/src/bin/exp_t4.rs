//! Experiment t4 of EXPERIMENTS.md — see `encompass_bench::experiments::t4`.
fn main() {
    for table in encompass_bench::experiments::t4() {
        println!("{table}");
    }
}
