//! Experiment f3 of EXPERIMENTS.md — see `encompass_bench::experiments::f3`.
fn main() {
    for table in encompass_bench::experiments::f3() {
        println!("{table}");
    }
}
