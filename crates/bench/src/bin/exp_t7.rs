//! Experiment t7 of EXPERIMENTS.md — see `encompass_bench::experiments::t7`.
fn main() {
    for table in encompass_bench::experiments::t7() {
        println!("{table}");
    }
}
