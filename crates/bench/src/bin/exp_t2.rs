//! Experiment t2 of EXPERIMENTS.md — see `encompass_bench::experiments::t2`.
fn main() {
    for table in encompass_bench::experiments::t2() {
        println!("{table}");
    }
}
