//! Experiment f1 of EXPERIMENTS.md — see `encompass_bench::experiments::f1`.
fn main() {
    for table in encompass_bench::experiments::f1() {
        println!("{table}");
    }
}
