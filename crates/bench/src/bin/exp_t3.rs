//! Experiment t3 of EXPERIMENTS.md — see `encompass_bench::experiments::t3`.
fn main() {
    for table in encompass_bench::experiments::t3() {
        println!("{table}");
    }
}
