//! Experiment f2 of EXPERIMENTS.md — see `encompass_bench::experiments::f2`.
fn main() {
    for table in encompass_bench::experiments::f2() {
        println!("{table}");
    }
}
