//! Experiment t6 of EXPERIMENTS.md — see `encompass_bench::experiments::t6`.
fn main() {
    for table in encompass_bench::experiments::t6() {
        println!("{table}");
    }
}
