//! Read/write mix sweep — see `encompass_bench::experiments::read_mix`.
//!
//! ```text
//! cargo run -p encompass-bench --release --bin exp_read_mix           # full sweep
//! cargo run -p encompass-bench --release --bin exp_read_mix -- --smoke
//! cargo run -p encompass-bench --release --bin exp_read_mix -- --out path.json
//! ```
//!
//! Writes the machine-readable sweep to `BENCH_read_mix.json` (or
//! `--out PATH`) in addition to printing the table.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_read_mix.json".to_string());

    let result = encompass_bench::experiments::read_mix(smoke);
    println!("{}", result.table());
    std::fs::write(&out, result.to_json()).expect("write sweep json");
    println!("wrote {out}");
}
