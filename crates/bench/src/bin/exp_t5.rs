//! Experiment t5 of EXPERIMENTS.md — see `encompass_bench::experiments::t5`.
fn main() {
    for table in encompass_bench::experiments::t5() {
        println!("{table}");
    }
}
