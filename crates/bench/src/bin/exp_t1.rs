//! Experiment t1 of EXPERIMENTS.md — see `encompass_bench::experiments::t1`.
fn main() {
    for table in encompass_bench::experiments::t1() {
        println!("{table}");
    }
}
