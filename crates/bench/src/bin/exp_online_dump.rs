//! Online-dump sweep — see `encompass_bench::experiments::online_dump`.
//!
//! ```text
//! cargo run -p encompass-bench --release --bin exp_online_dump           # full sweep
//! cargo run -p encompass-bench --release --bin exp_online_dump -- --smoke
//! cargo run -p encompass-bench --release --bin exp_online_dump -- --out path.json
//! ```
//!
//! Writes the machine-readable sweep to `BENCH_online_dump.json` (or
//! `--out PATH`) in addition to printing the table.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_online_dump.json".to_string());

    let result = encompass_bench::experiments::online_dump(smoke);
    println!("{}", result.table());
    std::fs::write(&out, result.to_json()).expect("write sweep json");
    println!("wrote {out}");
}
