//! Experiment t8 of EXPERIMENTS.md — see `encompass_bench::experiments::t8`.
fn main() {
    for table in encompass_bench::experiments::t8() {
        println!("{table}");
    }
}
