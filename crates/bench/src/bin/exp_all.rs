//! Run every experiment in EXPERIMENTS.md in order.
fn main() {
    for table in encompass_bench::experiments::all() {
        println!("{table}");
    }
}
