//! ONLINEDUMP experiment: what a concurrent fuzzy dump costs the
//! foreground workload, and what it buys recovery.
//!
//! Two claims, one sweep:
//!
//! * **dump impact** — the DUMPPROCESS pages through every file of a
//!   volume while transactions keep committing; each page is one disc
//!   access on the same DISCPROCESS, so commit latency and throughput
//!   should degrade only modestly (and less with larger pages);
//! * **recovery vs trail volume** — without dumps, ROLLFORWARD replays
//!   the whole trail from the generation-0 archive, so recovery work
//!   grows linearly with the transaction history; with a registered
//!   fuzzy dump it replays only images past the dump's watermark, so
//!   recovery work stays flat no matter how long the system ran.
//!
//! The machine-readable result goes to `BENCH_online_dump.json`.

use crate::Table;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_audit::dump::{DumpMsg, DumpReply};
use encompass_audit::rollforward::rollforward_volume;
use encompass_sim::{Ctx, Payload, Pid, Process, SimDuration, TimerId};
use encompass_storage::media::{
    archive_key, dump_registry_key, media_key, ArchiveImage, DumpRegistry, VolumeMedia,
};
use encompass_storage::types::VolumeRef;
use guardian::{Rpc, Target, TimerOutcome};
use tmf::facility::TmfNodeConfig;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct OnlineDumpRow {
    pub txns_per_terminal: u64,
    /// Dump page size; `None` = no concurrent dump in this cell.
    pub dump_page: Option<usize>,
    pub commits: u64,
    pub mean_commit_latency_us: f64,
    pub throughput_tps: f64,
    /// Records the dump copied, and the disc accesses the copy cost.
    pub dump_records: u64,
    pub archive_reads: u64,
    /// Trail records on the media at the end of the run.
    pub trail_records: u64,
    /// ROLLFORWARD work from the best available archive (the registered
    /// fuzzy dump when one exists, generation 0 otherwise).
    pub recovery_redone: u64,
    pub recovery_undone: u64,
}

/// The whole sweep plus its rendered table.
pub struct OnlineDumpResult {
    pub rows: Vec<OnlineDumpRow>,
    pub smoke: bool,
}

/// One-shot client that requests one online dump and exits.
struct DumpOnce {
    volume: VolumeRef,
    rpc: Rpc<DumpMsg, DumpReply>,
}

impl Process for DumpOnce {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.volume.node, "$DUMP".into()),
            DumpMsg::DumpVolume {
                volume: self.volume.clone(),
                generation: 1,
            },
            SimDuration::from_millis(100),
            0,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if self.rpc.accept(ctx, payload).is_ok() {
            ctx.exit();
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            ctx.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "bench-dump-client"
    }
}

fn run_cell(txns: u64, dump_page: Option<usize>, terminals: usize) -> OnlineDumpRow {
    let tmf = TmfNodeConfig::builder()
        .dump_page_size(dump_page.unwrap_or(64))
        .build()
        .expect("valid tmf config");
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        accounts: 1000,
        think: SimDuration::from_micros(500),
        tmf,
        ..BankAppParams::default()
    });
    let volumes: Vec<VolumeRef> = app.catalog.all_volumes();
    // generation-0 snapshot of the preloaded media (the accounts were
    // written outside TMF, so the trail alone cannot rebuild them)
    for v in &volumes {
        let files = app
            .world
            .stable()
            .get::<VolumeMedia>(&media_key(v.node, &v.volume))
            .map(|m| m.files.clone())
            .unwrap_or_default();
        let key = archive_key(v, 0);
        let vol = v.clone();
        app.world
            .stable_mut()
            .get_or_create::<ArchiveImage, _>(&key, move || ArchiveImage {
                volume: vol,
                files,
                audit_watermark: 0,
                purge_floor: 1,
                generation: 0,
            });
    }
    if dump_page.is_some() {
        // dump while the tail of the workload still runs: recovery then
        // replays only the images past the dump's watermark, however
        // long the history before it was
        let total = terminals as u64 * txns;
        let trigger = total.saturating_sub(total.min(20).max(total / 5));
        let mut waited = 0u64;
        while app.world.metrics().get("tmf.commits") < trigger && waited < 600_000 {
            app.world.run_for(SimDuration::from_millis(10));
            waited += 10;
        }
        for v in &volumes {
            app.world.spawn(
                v.node,
                0,
                Box::new(DumpOnce {
                    volume: v.clone(),
                    rpc: Rpc::new(2),
                }),
            );
        }
    }
    let mut elapsed = 0u64;
    while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
        && elapsed < 600_000
    {
        app.world.run_for(SimDuration::from_millis(100));
        elapsed += 100;
    }
    // drain phase 2 + let any still-running dump finish
    app.world.run_for(SimDuration::from_secs(2));

    let t = app.world.now().as_micros() as f64 / 1e6;
    let m = app.world.metrics();
    let commits = m.get("tmf.commits");
    let mean_commit_latency_us = m.observed_mean("tmf.commit_latency_us");
    let dump_records = m.get("dump.records");
    let archive_reads = m.get("disc.archive_read");

    let trail_keys: Vec<String> = app
        .tmf
        .iter()
        .flat_map(|h| h.trail_keys.iter().cloned())
        .collect();
    let trail_records: u64 = trail_keys
        .iter()
        .filter_map(|k| {
            app.world
                .stable()
                .get::<encompass_audit::trail::TrailMedia>(k)
        })
        .map(|t| t.files.iter().map(|f| f.records.len() as u64).sum::<u64>())
        .sum();

    let mut recovery_redone = 0u64;
    let mut recovery_undone = 0u64;
    for v in &volumes {
        let generation = app
            .world
            .stable()
            .get::<DumpRegistry>(&dump_registry_key(v))
            .map(|r| r.generation)
            .unwrap_or(0);
        let report = rollforward_volume(&mut app.world, v, &trail_keys, generation);
        recovery_redone += report.redone as u64;
        recovery_undone += report.undone as u64;
    }

    OnlineDumpRow {
        txns_per_terminal: txns,
        dump_page,
        commits,
        mean_commit_latency_us,
        throughput_tps: commits as f64 / t.max(0.001),
        dump_records,
        archive_reads,
        trail_records,
        recovery_redone,
        recovery_undone,
    }
}

/// Run the sweep. `smoke` trims it to a CI-sized subset.
pub fn online_dump(smoke: bool) -> OnlineDumpResult {
    let (txn_counts, pages, terminals): (&[u64], &[usize], usize) = if smoke {
        (&[10], &[64], 4)
    } else {
        (&[10, 20, 40], &[16, 64, 256], 8)
    };
    let mut rows = Vec::new();
    for &txns in txn_counts {
        rows.push(run_cell(txns, None, terminals));
        rows.push(run_cell(txns, Some(pages[pages.len() / 2]), terminals));
    }
    // page-size sensitivity at the largest history
    if !smoke {
        let &txns = txn_counts.last().expect("nonempty");
        for &p in pages {
            if p != pages[pages.len() / 2] {
                rows.push(run_cell(txns, Some(p), terminals));
            }
        }
    }
    OnlineDumpResult { rows, smoke }
}

impl OnlineDumpResult {
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "online dump — foreground impact of a concurrent fuzzy dump, and recovery work \
             from the resulting archive vs from generation 0",
            &[
                "txns/terminal",
                "dump page",
                "commits",
                "mean commit latency (us)",
                "txns/s",
                "dump records",
                "archive reads",
                "trail records",
                "recovery redo",
                "recovery undo",
            ],
        );
        for r in &self.rows {
            table.row(vec![
                r.txns_per_terminal.to_string(),
                r.dump_page.map_or("none".to_string(), |p| p.to_string()),
                r.commits.to_string(),
                format!("{:.0}", r.mean_commit_latency_us),
                format!("{:.1}", r.throughput_tps),
                r.dump_records.to_string(),
                r.archive_reads.to_string(),
                r.trail_records.to_string(),
                r.recovery_redone.to_string(),
                r.recovery_undone.to_string(),
            ]);
        }
        table.note(
            "'none' rows recover from the generation-0 archive, so recovery redo grows with \
             the trail; dumped rows recover from the fuzzy archive's watermark, so redo stays \
             bounded by the work that followed the dump — the trade is the archive reads the \
             copy spends while transactions run",
        );
        table
    }

    /// Hand-rolled JSON (the container has no serde): stable key order,
    /// one row object per sweep cell.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"online_dump\",\n");
        out.push_str(&format!("  \"smoke\": {},\n  \"rows\": [\n", self.smoke));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"txns_per_terminal\": {}, \"dump_page\": {}, \"commits\": {}, \
                 \"mean_commit_latency_us\": {:.1}, \"throughput_tps\": {:.2}, \
                 \"dump_records\": {}, \"archive_reads\": {}, \"trail_records\": {}, \
                 \"recovery_redone\": {}, \"recovery_undone\": {}}}{}\n",
                r.txns_per_terminal,
                r.dump_page.map_or("null".to_string(), |p| p.to_string()),
                r.commits,
                r.mean_commit_latency_us,
                r.throughput_tps,
                r.dump_records,
                r.archive_reads,
                r.trail_records,
                r.recovery_redone,
                r.recovery_undone,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
