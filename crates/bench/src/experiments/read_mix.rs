//! Read/write mix sweep: snapshot read-only transaction throughput as the
//! terminal count grows, at 95/5 and 99/1 read mixes, against the
//! write-only baseline.
//!
//! Read-only transactions take no record locks (snapshot reads against
//! the DISCPROCESS before-image ring) and resolve locally at
//! END-TRANSACTION — no phase one, no forced monitor record, no trail
//! force at all. So read throughput should scale with the reader count
//! without disturbing write throughput, and a pure-reader cell must
//! perform *zero* trail forces. This experiment measures both and writes
//! the machine-readable result to `BENCH_read_mix.json`.

use crate::Table;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_sim::SimDuration;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct ReadMixRow {
    /// Mix label: `write-only`, `read-only`, `95/5`, `99/1`.
    pub mix: &'static str,
    pub writers: usize,
    pub readers: usize,
    pub write_commits: u64,
    pub readonly_commits: u64,
    pub aborts: u64,
    pub audit_forces: u64,
    pub monitor_forces: u64,
    /// Physical trail forces per *write* commit (read-only commits force
    /// nothing, so the denominator excludes them).
    pub forces_per_write_commit: f64,
    pub write_tps: f64,
    pub read_tps: f64,
    pub virtual_secs: f64,
}

/// The whole sweep plus its rendered table.
pub struct ReadMixResult {
    pub rows: Vec<ReadMixRow>,
    pub smoke: bool,
}

fn run_cell(
    mix: &'static str,
    writers: usize,
    writer_txns: u64,
    readers: usize,
    reader_txns: u64,
) -> ReadMixRow {
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: writers,
        readonly_terminals_per_node: readers,
        transactions_per_terminal: writer_txns,
        readonly_transactions_per_terminal: Some(reader_txns),
        accounts: 1000,
        history: false,
        think: SimDuration::from_micros(500),
        ..BankAppParams::default()
    });
    let total = (writers + readers) as u64;
    let mut elapsed = 0u64;
    while app.world.metrics().get("tcp.terminals_finished") < total && elapsed < 600_000 {
        app.world.run_for(SimDuration::from_millis(100));
        elapsed += 100;
    }
    let t = app.world.now().as_micros() as f64 / 1e6;
    let m = app.world.metrics();
    let commits = m.get("tmf.commits");
    let readonly_commits = m.get("tmf.readonly_commits");
    let write_commits = commits - readonly_commits;
    let audit_forces = m.get("audit.forces");
    let monitor_forces = m.get("tmf.monitor_forces");
    ReadMixRow {
        mix,
        writers,
        readers,
        write_commits,
        readonly_commits,
        aborts: m.get("tmf.aborts"),
        audit_forces,
        monitor_forces,
        forces_per_write_commit: (audit_forces + monitor_forces) as f64
            / write_commits.max(1) as f64,
        write_tps: write_commits as f64 / t.max(0.001),
        read_tps: readonly_commits as f64 / t.max(0.001),
        virtual_secs: t,
    }
}

/// Run the sweep. `smoke` trims it to a CI-sized subset. Panics if a
/// pure-reader cell performs any physical trail force — read-only
/// commits must never touch either audit trail.
pub fn read_mix(smoke: bool) -> ReadMixResult {
    // (mix, writers, writer_txns, readers, reader_txns) cells.
    // Write-only rows pin the baseline; read-only rows pin the
    // zero-force guarantee; mixed rows scale the reader pool at an
    // exact read fraction of the *transaction* mix (a TCP hosts at
    // most 32 terminals, so with 1 writer at R txns and R readers at
    // 19 txns each, reads/writes = 19 exactly — 95/5 — at any R).
    let cells: &[(&'static str, usize, u64, usize, u64)] = if smoke {
        &[
            ("write-only", 8, 10, 0, 0),
            ("read-only", 0, 0, 8, 10),
            ("95/5", 1, 8, 8, 19),
        ]
    } else {
        &[
            ("write-only", 4, 25, 0, 0),
            ("write-only", 8, 25, 0, 0),
            ("write-only", 16, 25, 0, 0),
            ("read-only", 0, 0, 8, 25),
            ("read-only", 0, 0, 32, 25),
            // reads/writes = R*19/R = 19 (95/5) as the pool grows
            ("95/5", 1, 8, 8, 19),
            ("95/5", 1, 16, 16, 19),
            ("95/5", 1, 31, 31, 19),
            // reads/writes = R*33/(R/3) = 99 (99/1)
            ("99/1", 1, 3, 9, 33),
            ("99/1", 1, 5, 15, 33),
            ("99/1", 1, 10, 30, 33),
        ]
    };
    let mut rows = Vec::new();
    for &(mix, writers, writer_txns, readers, reader_txns) in cells {
        let row = run_cell(mix, writers, writer_txns, readers, reader_txns);
        if writers == 0 {
            assert_eq!(
                row.audit_forces + row.monitor_forces,
                0,
                "read-only transactions must not force either trail \
                 ({} audit + {} monitor forces over {} read-only commits)",
                row.audit_forces,
                row.monitor_forces,
                row.readonly_commits,
            );
            assert!(
                row.readonly_commits > 0,
                "pure-reader cell committed nothing"
            );
        }
        rows.push(row);
    }
    ReadMixResult { rows, smoke }
}

impl ReadMixResult {
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "read mix — snapshot read-only throughput vs the write-only baseline",
            &[
                "mix",
                "writers",
                "readers",
                "write commits",
                "read commits",
                "aborts",
                "audit forces",
                "monitor forces",
                "forces/write",
                "write txns/s",
                "read txns/s",
            ],
        );
        for r in &self.rows {
            table.row(vec![
                r.mix.to_string(),
                r.writers.to_string(),
                r.readers.to_string(),
                r.write_commits.to_string(),
                r.readonly_commits.to_string(),
                r.aborts.to_string(),
                r.audit_forces.to_string(),
                r.monitor_forces.to_string(),
                format!("{:.3}", r.forces_per_write_commit),
                format!("{:.1}", r.write_tps),
                format!("{:.1}", r.read_tps),
            ]);
        }
        table.note(
            "read-only transactions take no record locks and write no trail records, \
             so pure-reader cells force neither trail (asserted), read throughput \
             scales with the reader pool, and the forces in mixed cells are \
             attributable to the write commits alone",
        );
        table
    }

    /// Hand-rolled JSON (the container has no serde): stable key order,
    /// one row object per sweep cell.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"read_mix\",\n");
        out.push_str(&format!("  \"smoke\": {},\n  \"rows\": [\n", self.smoke));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mix\": \"{}\", \"writers\": {}, \"readers\": {}, \
                 \"write_commits\": {}, \"readonly_commits\": {}, \"aborts\": {}, \
                 \"audit_forces\": {}, \"monitor_forces\": {}, \
                 \"forces_per_write_commit\": {:.4}, \"write_tps\": {:.2}, \
                 \"read_tps\": {:.2}, \"virtual_secs\": {:.3}}}{}\n",
                r.mix,
                r.writers,
                r.readers,
                r.write_commits,
                r.readonly_commits,
                r.aborts,
                r.audit_forces,
                r.monitor_forces,
                r.forces_per_write_commit,
                r.write_tps,
                r.read_tps,
                r.virtual_secs,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
