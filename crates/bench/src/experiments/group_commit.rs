//! Group-commit boxcarring sweep: physical audit forces per committed
//! transaction and throughput as the boxcar window opens, by offered
//! concurrency (terminals).
//!
//! Every committed transaction needs its phase-one monitor record forced
//! to the Monitor Audit Trail, and its data audit records forced to the
//! audit trail. Without boxcarring that is at least two physical forces
//! per commit; with a window, concurrent commits ride one force. This
//! experiment measures the amortization curve and writes the machine-
//! readable result to `BENCH_group_commit.json` (the bench-trajectory
//! baseline for later perf PRs).

use crate::Table;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_sim::SimDuration;
use tmf::facility::TmfNodeConfig;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct GroupCommitRow {
    pub window_us: u64,
    pub terminals: usize,
    /// Audit-trail partitions per AUDITPROCESS (1 = the legacy single
    /// trail; >1 also spreads the accounts over that many volumes so
    /// concurrent forces land on different partitions).
    pub partitions: usize,
    pub commits: u64,
    pub audit_forces: u64,
    pub monitor_forces: u64,
    pub forces_per_commit: f64,
    pub throughput_tps: f64,
    pub mean_audit_boxcar: f64,
    pub mean_monitor_boxcar: f64,
    pub mean_commit_latency_us: f64,
    pub virtual_secs: f64,
}

/// The whole sweep plus its rendered table.
pub struct GroupCommitResult {
    pub rows: Vec<GroupCommitRow>,
    pub smoke: bool,
}

fn run_cell(window_us: u64, terminals: usize, partitions: usize, txns: u64) -> GroupCommitRow {
    let tmf = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_micros(window_us))
        .audit_partitions(partitions)
        .build()
        .expect("valid tmf config");
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        accounts: 1000,
        volumes_per_node: partitions.clamp(1, 2),
        // no history append: a shared entry-sequenced file would pin every
        // transaction to one partition and mask the partitioning effect
        history: false,
        think: SimDuration::from_micros(500),
        tmf,
        ..BankAppParams::default()
    });
    let mut elapsed = 0u64;
    while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
        && elapsed < 600_000
    {
        app.world.run_for(SimDuration::from_millis(100));
        elapsed += 100;
    }
    let t = app.world.now().as_micros() as f64 / 1e6;
    let m = app.world.metrics();
    let commits = m.get("tmf.commits");
    let audit_forces = m.get("audit.forces");
    let monitor_forces = m.get("tmf.monitor_forces");
    GroupCommitRow {
        window_us,
        terminals,
        partitions,
        commits,
        audit_forces,
        monitor_forces,
        forces_per_commit: (audit_forces + monitor_forces) as f64 / commits.max(1) as f64,
        throughput_tps: commits as f64 / t.max(0.001),
        mean_audit_boxcar: m.observed_mean("audit.boxcar_size"),
        mean_monitor_boxcar: m.observed_mean("tmf.monitor_boxcar_size"),
        mean_commit_latency_us: m.observed_mean("tmf.commit_latency_us"),
        virtual_secs: t,
    }
}

/// Run the sweep. `smoke` trims it to a CI-sized subset.
pub fn group_commit(smoke: bool) -> GroupCommitResult {
    let (windows, terminals, partitions, txns): (&[u64], &[usize], &[usize], u64) = if smoke {
        (&[0, 2_000], &[2, 8], &[1, 2], 10)
    } else {
        (&[0, 500, 1_000, 2_000, 5_000], &[1, 4, 8, 16], &[1, 2], 40)
    };
    let mut rows = Vec::new();
    for &w in windows {
        for &t in terminals {
            for &p in partitions {
                rows.push(run_cell(w, t, p, txns));
            }
        }
    }
    GroupCommitResult { rows, smoke }
}

impl GroupCommitResult {
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "group commit — physical forces per committed transaction, by window and concurrency",
            &[
                "window (us)",
                "terminals",
                "partitions",
                "commits",
                "audit forces",
                "monitor forces",
                "forces/commit",
                "txns/s",
                "mean audit boxcar",
                "mean monitor boxcar",
                "mean commit latency (us)",
            ],
        );
        for r in &self.rows {
            table.row(vec![
                r.window_us.to_string(),
                r.terminals.to_string(),
                r.partitions.to_string(),
                r.commits.to_string(),
                r.audit_forces.to_string(),
                r.monitor_forces.to_string(),
                format!("{:.3}", r.forces_per_commit),
                format!("{:.1}", r.throughput_tps),
                format!("{:.2}", r.mean_audit_boxcar),
                format!("{:.2}", r.mean_monitor_boxcar),
                format!("{:.0}", r.mean_commit_latency_us),
            ]);
        }
        table.note(
            "window 0 is the pre-boxcarring behavior (one monitor force per commit); \
             with a window open, concurrent phase-one forces ride one trail write — \
             forces/commit falls below 1 once boxcars average above ~2; with >1 trail \
             partitions, forces on different partitions overlap instead of queueing \
             behind one in-flight force, lifting the high-concurrency plateau",
        );
        table
    }

    /// Hand-rolled JSON (the container has no serde): stable key order,
    /// one row object per sweep cell.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"group_commit\",\n");
        out.push_str(&format!("  \"smoke\": {},\n  \"rows\": [\n", self.smoke));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window_us\": {}, \"terminals\": {}, \"partitions\": {}, \
                 \"commits\": {}, \
                 \"audit_forces\": {}, \"monitor_forces\": {}, \
                 \"forces_per_commit\": {:.4}, \"throughput_tps\": {:.2}, \
                 \"mean_audit_boxcar\": {:.3}, \"mean_monitor_boxcar\": {:.3}, \
                 \"mean_commit_latency_us\": {:.1}, \"virtual_secs\": {:.3}}}{}\n",
                r.window_us,
                r.terminals,
                r.partitions,
                r.commits,
                r.audit_forces,
                r.monitor_forces,
                r.forces_per_commit,
                r.throughput_tps,
                r.mean_audit_boxcar,
                r.mean_monitor_boxcar,
                r.mean_commit_latency_us,
                r.virtual_secs,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
