//! Claim-level experiments T1–T8.

use crate::driver::{run_txn_script, MfgDriver, MfgTally, Step};
use crate::Table;
use bytes::Bytes;
use encompass::app::{launch_bank_app, launch_mfg_app, AppBuilder, BankAppParams, MfgAppParams};
use encompass::workload::total_balance;
use encompass_audit::rollforward::rollforward_volume;
use encompass_audit::trail::trail_key;
use encompass_sim::{
    Ctx, CpuId, Fault, NodeId, Payload, Pid, Process, SimDuration, SimTime, TimerId, World,
};
use encompass_storage::media::{media_key, VolumeMedia};
use encompass_storage::types::{FileDef, RecoveryMode, Transid, VolumeRef};
use encompass_storage::Catalog;
use guardian::{Rpc, Target};
use std::cell::RefCell;
use std::rc::Rc;
use tmf::tmp::{TmpMsg, TmpReply};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Build an n-node mesh with one audited file per node (`f0`, `f1`, …).
fn multi_node_world(n: usize) -> (encompass::app::AppHandles, Vec<NodeId>) {
    let node_ids: Vec<NodeId> = (0..n as u8).map(NodeId).collect();
    let mut catalog = Catalog::new();
    for &node in &node_ids {
        catalog.add(FileDef::key_sequenced(
            &format!("f{}", node.0),
            VolumeRef::new(node, format!("$D{}", node.0).as_str()),
        ));
    }
    let mut builder = AppBuilder::new();
    for _ in 0..n {
        builder = builder.node(4);
    }
    let app = builder.mesh(SimDuration::from_millis(2)).build(catalog);
    let nodes = app.nodes.clone();
    (app, nodes)
}

/// T1 — commit-protocol message counts: the abbreviated single-node 2PC
/// vs the distributed protocol, by number of participating nodes.
pub fn t1() -> Vec<Table> {
    let mut table = Table::new(
        "T1 — commit protocol costs by participating nodes (one transaction, one insert per node)",
        &[
            "participants",
            "protocol",
            "network msgs",
            "remote begins",
            "phase1 (net)",
            "phase2 (net)",
            "phase1 (local)",
            "monitor forces",
            "state broadcasts",
        ],
    );
    for p in 1..=4usize {
        let (mut app, nodes) = multi_node_world(4);
        let home = nodes[0];
        let mut script = vec![Step::Begin];
        for i in 0..p {
            script.push(Step::Insert(format!("f{i}"), b("key"), b("value")));
        }
        script.push(Step::End);
        let log = run_txn_script(&mut app.world, home, 0, app.catalog.clone(), script);
        // settle everything including safe-delivery phase 2
        app.world.run_for(SimDuration::from_secs(10));
        assert_eq!(
            log.borrow().last().map(|s| s.as_str()),
            Some("committed"),
            "txn committed: {:?}",
            log.borrow()
        );
        let m = app.world.metrics();
        table.row(vec![
            p.to_string(),
            if p == 1 {
                "abbreviated 2PC".to_string()
            } else {
                "distributed 2PC".to_string()
            },
            m.get("sim.msgs.net").to_string(),
            m.get("tmf.msgs.remote_begin").to_string(),
            m.get("tmf.msgs.phase1_net").to_string(),
            m.get("tmf.msgs.phase2_net").to_string(),
            m.get("tmf.msgs.phase1_local").to_string(),
            m.get("tmf.monitor_forces").to_string(),
            m.get("tmf.state_broadcasts").to_string(),
        ]);
    }
    table.note("single-node transactions pay no network messages at all; the distributed protocol adds one remote-begin + one phase1 + one phase2 per participating node (critical-response + safe-delivery), growing linearly");
    vec![table]
}

/// T2 — "the effect of a processor failure … is limited to the on-line
/// backout of those transactions in process on the failed module."
pub fn t2() -> Vec<Table> {
    let terminals = 8usize;
    let txns = 30u64;
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        accounts: 800,
        think: SimDuration::from_millis(2),
        ..BankAppParams::default()
    });
    let n = app.nodes[0];
    // commit-rate timeline in 250ms buckets; CPU 0 — the processor where
    // every transaction of this TCP originates — dies at t = 1s
    let mut timeline = Table::new(
        "T2b — commit timeline around the CPU-0 failure (250ms buckets)",
        &["t (ms)", "cumulative commits", "commits in bucket"],
    );
    let mut last = 0u64;
    for bucket in 0..16u64 {
        if bucket == 4 {
            app.world.inject(Fault::KillCpu(n, CpuId(0)));
        }
        app.world.run_for(SimDuration::from_millis(250));
        let c = app.world.metrics().get("tcp.commits");
        timeline.row(vec![
            ((bucket + 1) * 250).to_string(),
            c.to_string(),
            (c - last).to_string(),
        ]);
        last = c;
    }
    app.world.run_for(SimDuration::from_secs(180));
    let m = app.world.metrics();
    let mut table = Table::new(
        "T2 — failure impact: TMF on-line backout vs a halt-and-restart system",
        &[
            "system",
            "txns aborted by the failure",
            "txns restarted+completed",
            "final commits",
            "downtime",
        ],
    );
    let aborted = m.get("tmf.aborts");
    table.row(vec![
        "TMF (measured)".to_string(),
        aborted.to_string(),
        (m.get("tcp.restarts") + m.get("tcp.takeovers")).to_string(),
        format!("{}/{}", m.get("tcp.commits"), terminals as u64 * txns),
        "none (see T2b: commits continue through the failure)".to_string(),
    ]);
    table.row(vec![
        "conventional halt+restart (modeled)".to_string(),
        "ALL in-flight".to_string(),
        "0 (until restart)".to_string(),
        "-".to_string(),
        "full log-replay restart (T5 measures replay cost)".to_string(),
    ]);
    table.note("only transactions touching the failed processor abort and are transparently restarted; unaffected transactions keep committing in every bucket");
    vec![table, timeline]
}

/// T3 — "checkpoint is the functional equivalent of Write Ahead Log":
/// same recoverability, fewer commit-path forces.
pub fn t3() -> Vec<Table> {
    let mut table = Table::new(
        "T3 — audit forcing: NonStop checkpointing vs Write-Ahead-Log baseline (same workload)",
        &[
            "recovery mode",
            "commits",
            "physical audit forces",
            "forces/txn",
            "checkpoints",
            "virtual time (s)",
            "txns/s",
        ],
    );
    for mode in [RecoveryMode::NonStopCheckpoint, RecoveryMode::WalForce] {
        let terminals = 6usize;
        let txns = 20u64;
        let mut app = launch_bank_app(BankAppParams {
            recovery_mode: mode,
            terminals_per_node: terminals,
            transactions_per_terminal: txns,
            accounts: 600,
            think: SimDuration::from_millis(1),
            ..BankAppParams::default()
        });
        let mut elapsed = 0u64;
        while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
            && elapsed < 600_000
        {
            app.world.run_for(SimDuration::from_millis(100));
            elapsed += 100;
        }
        let t = app.world.now().as_micros() as f64 / 1e6;
        let m = app.world.metrics();
        let commits = m.get("tcp.commits");
        table.row(vec![
            format!("{mode:?}"),
            commits.to_string(),
            m.get("audit.forces").to_string(),
            format!("{:.2}", m.get("audit.forces") as f64 / commits.max(1) as f64),
            m.get("pair.checkpoints").to_string(),
            format!("{t:.2}"),
            format!("{:.1}", commits as f64 / t),
        ]);
    }
    table.note("NonStop: ~1 group-committed force per transaction at phase one; WAL: one force per update on the commit path — lower throughput at identical recoverability (both pass the same backout/rollforward tests)");
    vec![table]
}

/// T4 — "Deadlock detection is by timeout": abort/restart rate and
/// throughput vs the lock-wait timeout under heavy contention.
pub fn t4() -> Vec<Table> {
    let mut table = Table::new(
        "T4 — lock-wait timeout sweep under contention (95% of traffic on 1 record)",
        &[
            "lock wait (ms)",
            "commits",
            "lock waits",
            "lock timeouts",
            "restarts",
            "virtual time (s)",
            "txns/s",
        ],
    );
    for wait_ms in [10u64, 50, 200, 1000] {
        let terminals = 8usize;
        let txns = 10u64;
        let mut app = launch_bank_app(BankAppParams {
            terminals_per_node: terminals,
            transactions_per_terminal: txns,
            accounts: 100,
            hot_fraction: 0.95,
            hot_set: 1,
            think: SimDuration::from_micros(100),
            lock_wait: SimDuration::from_millis(wait_ms),
            ..BankAppParams::default()
        });
        let mut elapsed = 0u64;
        while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
            && elapsed < 600_000
        {
            app.world.run_for(SimDuration::from_millis(100));
            elapsed += 100;
        }
        let t = app.world.now().as_micros() as f64 / 1e6;
        let m = app.world.metrics();
        table.row(vec![
            wait_ms.to_string(),
            m.get("tcp.commits").to_string(),
            m.get("disc.lock_waits").to_string(),
            m.get("disc.lock_timeouts").to_string(),
            m.get("tcp.restarts").to_string(),
            format!("{t:.2}"),
            format!("{:.1}", m.get("tcp.commits") as f64 / t.max(0.001)),
        ]);
    }
    table.note("short timeouts fire on ordinary waits (spurious restarts); long timeouts make a real deadlock expensive — the paper leaves the interval to the lock request for exactly this trade-off");
    vec![table]
}

/// T5 — ROLLFORWARD: recovery fidelity and cost vs audit-trail volume.
pub fn t5() -> Vec<Table> {
    let mut table = Table::new(
        "T5 — ROLLFORWARD after total node failure, by workload size",
        &[
            "committed txns",
            "trail records",
            "redone",
            "rolled-back txns",
            "recovered == pre-crash",
            "utility wall time (ms)",
        ],
    );
    for txns_per_terminal in [10u64, 40, 160] {
        let terminals = 5usize;
        let mut app = launch_bank_app(BankAppParams {
            terminals_per_node: terminals,
            transactions_per_terminal: txns_per_terminal,
            accounts: 300,
            think: SimDuration::from_millis(1),
            ..BankAppParams::default()
        });
        let n = app.nodes[0];
        let vol = VolumeRef::new(n, "$BANK");
        // archive generation 1 right away (fuzzy: concurrent with the load)
        let _ = encompass_storage::testkit::run_script(
            &mut app.world,
            n,
            0,
            Target::Named(n, "$BANK".into()),
            vec![encompass_storage::discprocess::DiscRequest::Archive { generation: 1 }],
        );
        // run the workload to completion, plus time for flushes
        let mut elapsed = 0u64;
        while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
            && elapsed < 600_000
        {
            app.world.run_for(SimDuration::from_millis(100));
            elapsed += 100;
        }
        app.world.run_for(SimDuration::from_secs(5));
        let pre_crash_total = total_balance(&mut app.world, &app.catalog, "accounts");
        let commits = app.world.metrics().get("tmf.commits");

        // total failure of the DISCPROCESS pair + both drives
        app.world.inject(Fault::KillCpu(n, CpuId(2)));
        app.world.inject(Fault::KillCpu(n, CpuId(3)));
        app.world.run_for(SimDuration::from_millis(100));
        {
            let media = app
                .world
                .stable_mut()
                .get_mut::<VolumeMedia>(&media_key(n, "$BANK"))
                .expect("bank media");
            media.fail_drive(0);
            media.fail_drive(1);
            media.revive_drive(0);
            media.revive_drive(1);
        }
        let tk = trail_key(n, "$AUDIT");
        let trail_records = app
            .world
            .stable()
            .get::<encompass_audit::trail::TrailMedia>(&tk)
            .map(|t| t.len())
            .unwrap_or(0);
        // bench boundary: measuring real rollforward wall time is the point
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let report = rollforward_volume(&mut app.world, &vol, &[tk], 1);
        let wall = start.elapsed().as_micros() as f64 / 1000.0;
        let recovered_total = total_balance(&mut app.world, &app.catalog, "accounts");
        table.row(vec![
            commits.to_string(),
            trail_records.to_string(),
            report.redone.to_string(),
            report.rolled_back_txns.to_string(),
            (recovered_total == pre_crash_total).to_string(),
            format!("{wall:.2}"),
        ]);
    }
    table.note("recovery cost grows with the audit volume since the archive; the recovered volume is bit-identical to the committed pre-crash state (the conservation check)");
    vec![table]
}

/// A one-shot operator command to a TMP.
struct TmpCommand {
    node: NodeId,
    msg: TmpMsg,
    rpc: Rpc<TmpMsg, TmpReply>,
}
impl Process for TmpCommand {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.node, "$TMP".into()),
            self.msg.clone(),
            SimDuration::from_millis(200),
            0,
        );
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let _ = self.rpc.accept(ctx, payload);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        let _ = self.rpc.on_timer(ctx, tag);
    }
}

fn parse_transid(log_entry: &str) -> Option<Transid> {
    // "began:T0.2.1"
    let rest = log_entry.strip_prefix("began:T")?;
    let mut it = rest.split('.');
    let home = it.next()?.parse().ok()?;
    let cpu = it.next()?.parse().ok()?;
    let seq = it.next()?.parse().ok()?;
    Some(Transid {
        home_node: NodeId(home),
        cpu,
        seq,
    })
}

/// How long after `from` a lock on `file`/key `k` (node `node`) stays
/// unavailable, probed every 100ms.
fn probe_lock_release(
    world: &mut World,
    catalog: &Catalog,
    node: NodeId,
    file: &str,
    deadline: SimDuration,
) -> Option<u64> {
    let started = world.now();
    let step = SimDuration::from_millis(100);
    let mut waited = SimDuration::ZERO;
    while waited < deadline {
        let log = run_txn_script(
            world,
            node,
            0,
            catalog.clone(),
            vec![
                Step::Begin,
                Step::ReadLock(file.to_string(), b("key")),
                Step::Abort,
            ],
        );
        world.run_for(SimDuration::from_millis(700));
        waited = waited + SimDuration::from_millis(700);
        let got_value = log.borrow().iter().any(|e| e.starts_with("value:"));
        if got_value {
            return Some(world.now().since(started).as_millis());
        }
        world.run_for(step);
        waited = waited + step;
    }
    None
}

/// T6 — phase-one/phase-two failure semantics: unilateral abort before the
/// phase-one ack; locks held on a node cut off after acking phase one;
/// the operator's manual override.
pub fn t6() -> Vec<Table> {
    let mut table = Table::new(
        "T6 — in-doubt windows of the distributed commit",
        &["scenario", "END outcome at home", "locks on remote node", "released after"],
    );

    // (a) unilateral abort before phase one forces consensus abort
    {
        let (mut app, nodes) = multi_node_world(2);
        let log = run_txn_script(
            &mut app.world,
            nodes[0],
            0,
            app.catalog.clone(),
            vec![
                Step::Begin,
                Step::Insert("f1".into(), b("key"), b("v")),
                Step::Pause(SimDuration::from_millis(800)),
                Step::End,
            ],
        );
        // wait for the insert, then unilaterally abort on node 1
        while log.borrow().len() < 2 && app.world.now() < SimTime::from_micros(5_000_000) {
            app.world.run_for(SimDuration::from_millis(10));
        }
        let transid = parse_transid(&log.borrow()[0]).expect("transid in log");
        app.world.spawn(
            nodes[1],
            0,
            Box::new(TmpCommand {
                node: nodes[1],
                msg: TmpMsg::Abort {
                    transid,
                    reason: tmf::state::AbortReason::OperatorOverride,
                },
                rpc: Rpc::new(50),
            }),
        );
        app.world.run_for(SimDuration::from_secs(10));
        let end = log.borrow().last().cloned().unwrap_or_default();
        table.row(vec![
            "unilateral abort before phase-1 ack".to_string(),
            end,
            "released by local backout".to_string(),
            "immediately".to_string(),
        ]);
    }

    // (b) partition after the phase-one ack: locks held until the heal
    for partition_secs in [1u64, 3] {
        let (mut app, nodes) = multi_node_world(2);
        let log = run_txn_script(
            &mut app.world,
            nodes[0],
            0,
            app.catalog.clone(),
            vec![
                Step::Begin,
                Step::Insert("f1".into(), b("key"), b("v")),
                Step::End,
            ],
        );
        while app.world.metrics().get("tmf.commits") == 0
            && app.world.now() < SimTime::from_micros(10_000_000)
        {
            app.world.run_for(SimDuration::from_millis(1));
        }
        app.world.inject(Fault::Partition(vec![nodes[1]]));
        let cut_at = app.world.now();
        app.world
            .schedule_fault(cut_at + SimDuration::from_secs(partition_secs), Fault::HealAllLinks);
        let released =
            probe_lock_release(&mut app.world, &app.catalog, nodes[1], "f1", SimDuration::from_secs(20));
        let end = log.borrow().last().cloned().unwrap_or_default();
        table.row(vec![
            format!("partition {partition_secs}s during phase 2"),
            end,
            "held while partitioned".to_string(),
            released
                .map(|ms| format!("~{ms}ms after the cut"))
                .unwrap_or_else(|| "never (probe window)".into()),
        ]);
    }

    // (c) the manual override: operator forces the disposition while cut off
    {
        let (mut app, nodes) = multi_node_world(2);
        let log = run_txn_script(
            &mut app.world,
            nodes[0],
            0,
            app.catalog.clone(),
            vec![
                Step::Begin,
                Step::Insert("f1".into(), b("key"), b("v")),
                Step::End,
            ],
        );
        while app.world.metrics().get("tmf.commits") == 0
            && app.world.now() < SimTime::from_micros(10_000_000)
        {
            app.world.run_for(SimDuration::from_millis(1));
        }
        let transid = parse_transid(&log.borrow()[0]).expect("transid");
        app.world.inject(Fault::Partition(vec![nodes[1]]));
        // operator on node 1 queries the home node by phone, then forces
        app.world.spawn(
            nodes[1],
            0,
            Box::new(TmpCommand {
                node: nodes[1],
                msg: TmpMsg::ForceDisposition {
                    transid,
                    commit: true,
                },
                rpc: Rpc::new(51),
            }),
        );
        let released = probe_lock_release(
            &mut app.world,
            &app.catalog,
            nodes[1],
            "f1",
            SimDuration::from_secs(10),
        );
        table.row(vec![
            "manual override (ForceDisposition commit)".to_string(),
            log.borrow().last().cloned().unwrap_or_default(),
            "released by the operator, partition still up".to_string(),
            released
                .map(|ms| format!("~{ms}ms"))
                .unwrap_or_else(|| "never (probe window)".into()),
        ]);
    }
    table.note("matches the paper: before acking phase one a node may abort unilaterally and force consensus; after acking it must hold locks until the disposition arrives — or an operator overrides by consulting the home node out of band");
    vec![table]
}

/// T7 — node autonomy: global-update availability during a one-node
/// outage, master+suspense design vs synchronous replication.
pub fn t7() -> Vec<Table> {
    let mut table = Table::new(
        "T7 — global-update availability while node 3 is unreachable (20s window, updates at node 0)",
        &["design", "attempted", "committed", "availability"],
    );
    for (label, op) in [
        ("master + suspense file (the paper's design)", "master-update"),
        ("synchronous replication (rejected design)", "sync-update"),
    ] {
        let mut app = launch_mfg_app(MfgAppParams::default());
        let n0 = app.nodes[0];
        let n3 = app.nodes[3];
        app.world.inject(Fault::Partition(vec![n3]));
        let tally = Rc::new(RefCell::new(MfgTally::default()));
        let drv = MfgDriver::new(
            app.catalog.clone(),
            op,
            n0,
            SimDuration::from_millis(250),
            u64::MAX,
            tally.clone(),
        );
        app.world.spawn(n0, 2, Box::new(drv));
        app.world.run_for(SimDuration::from_secs(20));
        let t = tally.borrow();
        let avail = 100.0 * t.committed as f64 / t.attempted.max(1) as f64;
        table.row(vec![
            label.to_string(),
            t.attempted.to_string(),
            t.committed.to_string(),
            format!("{avail:.0}%"),
        ]);
    }
    table.note("\"no node can run a global update transaction at a time when any other node is unavailable\" — the synchronous design's availability collapses; the suspense design keeps updating (master-local records) and converges later (F4)");
    vec![table]
}

/// T8 — process-pair takeover: service gap when a primary's processor
/// fails mid-workload.
pub fn t8() -> Vec<Table> {
    let mut table = Table::new(
        "T8 — takeover service gap by failed primary (commit-gap around the fault, 10ms sampling)",
        &["failed CPU hosts", "takeovers", "longest commit gap (ms)", "commits completed"],
    );
    for (label, cpu) in [
        ("DISCPROCESS primary (cpu2)", 2u8),
        ("TMP primary (cpu3)", 3),
        ("TCP + audit primary (cpu0)", 0),
    ] {
        let terminals = 8usize;
        let txns = 40u64;
        let mut app = launch_bank_app(BankAppParams {
            terminals_per_node: terminals,
            transactions_per_terminal: txns,
            accounts: 800,
            think: SimDuration::from_millis(1),
            ..BankAppParams::default()
        });
        let n = app.nodes[0];
        let mut last_commit_at = 0u64;
        let mut last_commits = 0u64;
        let mut longest_gap = 0u64;
        let mut injected = false;
        for tick in 0..600u64 {
            if tick == 100 {
                app.world.inject(Fault::KillCpu(n, CpuId(cpu)));
                injected = true;
            }
            app.world.run_for(SimDuration::from_millis(10));
            let c = app.world.metrics().get("tcp.commits");
            let now = (tick + 1) * 10;
            if c > last_commits {
                if injected {
                    longest_gap = longest_gap.max(now - last_commit_at);
                }
                last_commit_at = now;
                last_commits = c;
            }
            if app.world.metrics().get("tcp.terminals_finished") >= terminals as u64 {
                break;
            }
        }
        app.world.run_for(SimDuration::from_secs(120));
        table.row(vec![
            label.to_string(),
            app.world.metrics().get("pair.takeovers").to_string(),
            longest_gap.to_string(),
            format!(
                "{}/{}",
                app.world.metrics().get("tcp.commits"),
                terminals as u64 * txns
            ),
        ]);
    }
    table.note("backups take over within the failure-detection delay plus in-flight retries; every workload still completes in full — zero lost operations");
    vec![table]
}
