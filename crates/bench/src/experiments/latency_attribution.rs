//! Commit-latency attribution: where does a committed transaction's time
//! go, from BEGIN-TRANSACTION to the commit point?
//!
//! The flight recorder timestamps every span boundary of a transaction
//! (lock grants, audit forces, monitor forces, checkpoint drains), so the
//! transaction's lifetime decomposes exactly into lock-wait, force,
//! checkpoint, and bus/queueing components. Lock waits happen during the
//! verbs — before END-TRANSACTION — so the window is anchored at BEGIN;
//! the commit latency proper (END → commit point) is reported alongside
//! as `mean_commit_us`. This experiment runs the bank workload with the
//! recorder on and a hot-set so the 16-terminal cells actually contend,
//! attributes every committed transaction, and writes the
//! machine-readable decomposition to `BENCH_latency_attribution.json`.
//!
//! The components partition the BEGIN → commit window by construction, so
//! their sum equals the attributed total; the JSON also carries the
//! independently measured `tmf.commit_latency_us` histogram mean as a
//! cross-check against `mean_commit_us` (`commit_to_measured_ratio`
//! should sit within a few percent of 1.0 — the two differ only in where
//! the END anchor is sampled).
//!
//! The sweep includes a trail-partition dimension: `partitions > 1`
//! splits each node's accounts over two audited volumes and gives the
//! AUDITPROCESS that many independent trail partitions, so concurrent
//! phase-one forces on different partitions overlap instead of
//! serializing behind one in-flight force.

use crate::Table;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_sim::{SimConfig, SimDuration};
use tmf::facility::TmfNodeConfig;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct LatencyAttributionRow {
    pub window_us: u64,
    pub terminals: usize,
    /// Audit-trail partitions per AUDITPROCESS (1 = the legacy single
    /// trail; >1 also spreads the accounts over that many volumes).
    pub partitions: usize,
    /// Committed transactions with a complete begin→commit flight window.
    pub attributed_commits: u64,
    pub mean_total_us: f64,
    /// END-TRANSACTION → commit point (the commit latency proper).
    pub mean_commit_us: f64,
    pub mean_lock_wait_us: f64,
    pub mean_force_us: f64,
    pub mean_checkpoint_us: f64,
    pub mean_bus_us: f64,
    /// Sum of the four component means (equals `mean_total_us` exactly —
    /// the attribution partitions the window).
    pub component_sum_us: f64,
    /// The `tmf.commit_latency_us` histogram mean, measured independently
    /// of the recorder.
    pub measured_mean_us: f64,
    pub commit_to_measured_ratio: f64,
}

/// The whole sweep plus its rendered table.
pub struct LatencyAttributionResult {
    pub rows: Vec<LatencyAttributionRow>,
    pub smoke: bool,
}

fn run_cell(window_us: u64, terminals: usize, partitions: usize, txns: u64) -> LatencyAttributionRow {
    let tmf = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_micros(window_us))
        .audit_partitions(partitions)
        .build()
        .expect("valid tmf config");
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        accounts: 1000,
        volumes_per_node: partitions.clamp(1, 2),
        // no history append: a shared entry-sequenced file would pin every
        // transaction to one partition and mask the partitioning effect
        history: false,
        // a tight hot set so the high-concurrency cells contend on record
        // locks: half the debits hit two keys, so at 16 terminals the
        // lock queues are deep and lock wait is a first-class component
        hot_fraction: 0.6,
        hot_set: 2,
        think: SimDuration::from_micros(500),
        sim: SimConfig::default().flight_recording(),
        tmf,
        ..BankAppParams::default()
    });
    let mut elapsed = 0u64;
    while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
        && elapsed < 600_000
    {
        app.world.run_for(SimDuration::from_millis(100));
        elapsed += 100;
    }
    let mut n = 0u64;
    let (mut total, mut commit, mut lock_wait, mut force, mut checkpoint, mut bus) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for report in tmf::flight_reports(&app.world) {
        if let Some(a) = report.attribution {
            n += 1;
            total += a.total_us;
            commit += a.commit_us;
            lock_wait += a.lock_wait_us;
            force += a.force_us;
            checkpoint += a.checkpoint_us;
            bus += a.bus_us;
        }
    }
    let mean = |sum: u64| sum as f64 / n.max(1) as f64;
    let component_sum_us = mean(lock_wait) + mean(force) + mean(checkpoint) + mean(bus);
    let measured_mean_us = app.world.metrics().observed_mean("tmf.commit_latency_us");
    LatencyAttributionRow {
        window_us,
        terminals,
        partitions,
        attributed_commits: n,
        mean_total_us: mean(total),
        mean_commit_us: mean(commit),
        mean_lock_wait_us: mean(lock_wait),
        mean_force_us: mean(force),
        mean_checkpoint_us: mean(checkpoint),
        mean_bus_us: mean(bus),
        component_sum_us,
        measured_mean_us,
        commit_to_measured_ratio: mean(commit) / measured_mean_us.max(0.001),
    }
}

/// Run the sweep. `smoke` trims it to a CI-sized subset.
pub fn latency_attribution(smoke: bool) -> LatencyAttributionResult {
    let (windows, terminals, partitions, txns): (&[u64], &[usize], &[usize], u64) = if smoke {
        (&[0, 2_000], &[4], &[1, 2], 10)
    } else {
        (&[0, 1_000, 5_000], &[4, 16], &[1, 2], 40)
    };
    let mut rows = Vec::new();
    for &w in windows {
        for &t in terminals {
            for &p in partitions {
                rows.push(run_cell(w, t, p, txns));
            }
        }
    }
    LatencyAttributionResult { rows, smoke }
}

impl LatencyAttributionResult {
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "latency attribution — mean BEGIN → commit window by component (us)",
            &[
                "window (us)",
                "terminals",
                "partitions",
                "commits",
                "total",
                "commit",
                "lock wait",
                "force",
                "checkpoint",
                "bus/queue",
                "measured",
                "commit/measured",
            ],
        );
        for r in &self.rows {
            table.row(vec![
                r.window_us.to_string(),
                r.terminals.to_string(),
                r.partitions.to_string(),
                r.attributed_commits.to_string(),
                format!("{:.0}", r.mean_total_us),
                format!("{:.0}", r.mean_commit_us),
                format!("{:.0}", r.mean_lock_wait_us),
                format!("{:.0}", r.mean_force_us),
                format!("{:.0}", r.mean_checkpoint_us),
                format!("{:.0}", r.mean_bus_us),
                format!("{:.0}", r.measured_mean_us),
                format!("{:.3}", r.commit_to_measured_ratio),
            ]);
        }
        table.note(
            "components partition the flight-recorded begin→commit window, so they sum \
             to the total exactly; 'measured' is the recorder-independent \
             tmf.commit_latency_us mean and cross-checks the commit column — \
             contention lives in lock wait (taken during the verbs), and splitting \
             the trail lets concurrent forces overlap instead of queueing",
        );
        table
    }

    /// Hand-rolled JSON (the container has no serde): stable key order,
    /// one row object per sweep cell.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"latency_attribution\",\n");
        out.push_str(&format!("  \"smoke\": {},\n  \"rows\": [\n", self.smoke));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window_us\": {}, \"terminals\": {}, \"partitions\": {}, \
                 \"attributed_commits\": {}, \
                 \"mean_total_us\": {:.1}, \"mean_commit_us\": {:.1}, \
                 \"mean_lock_wait_us\": {:.1}, \
                 \"mean_force_us\": {:.1}, \"mean_checkpoint_us\": {:.1}, \
                 \"mean_bus_us\": {:.1}, \"component_sum_us\": {:.1}, \
                 \"measured_mean_us\": {:.1}, \"commit_to_measured_ratio\": {:.4}}}{}\n",
                r.window_us,
                r.terminals,
                r.partitions,
                r.attributed_commits,
                r.mean_total_us,
                r.mean_commit_us,
                r.mean_lock_wait_us,
                r.mean_force_us,
                r.mean_checkpoint_us,
                r.mean_bus_us,
                r.component_sum_us,
                r.measured_mean_us,
                r.commit_to_measured_ratio,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
