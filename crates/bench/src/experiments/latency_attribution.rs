//! Commit-latency attribution: where does the time between END-TRANSACTION
//! and the commit point go?
//!
//! The flight recorder timestamps every span boundary of a transaction
//! (lock grants, audit forces, monitor forces, checkpoint drains), so the
//! END-TRANSACTION → commit window decomposes exactly into lock-wait,
//! force, checkpoint, and bus/queueing components. This experiment runs
//! the bank workload with the recorder on, attributes every committed
//! transaction, and writes the machine-readable decomposition to
//! `BENCH_latency_attribution.json`.
//!
//! The components partition the window by construction, so their sum
//! equals the attributed total; the JSON also carries the independently
//! measured `tmf.commit_latency_us` histogram mean as a cross-check
//! (`sum_to_measured_ratio` should sit within a few percent of 1.0 —
//! the two differ only in where the window is anchored).

use crate::Table;
use encompass::app::{launch_bank_app, BankAppParams};
use encompass_sim::{SimConfig, SimDuration};
use tmf::facility::TmfNodeConfig;

/// One cell of the sweep.
#[derive(Clone, Debug)]
pub struct LatencyAttributionRow {
    pub window_us: u64,
    pub terminals: usize,
    /// Committed transactions with a complete end→commit flight window.
    pub attributed_commits: u64,
    pub mean_total_us: f64,
    pub mean_lock_wait_us: f64,
    pub mean_force_us: f64,
    pub mean_checkpoint_us: f64,
    pub mean_bus_us: f64,
    /// Sum of the four component means (equals `mean_total_us` exactly —
    /// the attribution partitions the window).
    pub component_sum_us: f64,
    /// The `tmf.commit_latency_us` histogram mean, measured independently
    /// of the recorder.
    pub measured_mean_us: f64,
    pub sum_to_measured_ratio: f64,
}

/// The whole sweep plus its rendered table.
pub struct LatencyAttributionResult {
    pub rows: Vec<LatencyAttributionRow>,
    pub smoke: bool,
}

fn run_cell(window_us: u64, terminals: usize, txns: u64) -> LatencyAttributionRow {
    let tmf = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_micros(window_us))
        .build()
        .expect("valid tmf config");
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        accounts: 1000,
        think: SimDuration::from_micros(500),
        sim: SimConfig::default().flight_recording(),
        tmf,
        ..BankAppParams::default()
    });
    let mut elapsed = 0u64;
    while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
        && elapsed < 600_000
    {
        app.world.run_for(SimDuration::from_millis(100));
        elapsed += 100;
    }
    let mut n = 0u64;
    let (mut total, mut lock_wait, mut force, mut checkpoint, mut bus) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for report in tmf::flight_reports(&app.world) {
        if let Some(a) = report.attribution {
            n += 1;
            total += a.total_us;
            lock_wait += a.lock_wait_us;
            force += a.force_us;
            checkpoint += a.checkpoint_us;
            bus += a.bus_us;
        }
    }
    let mean = |sum: u64| sum as f64 / n.max(1) as f64;
    let component_sum_us = mean(lock_wait) + mean(force) + mean(checkpoint) + mean(bus);
    let measured_mean_us = app.world.metrics().observed_mean("tmf.commit_latency_us");
    LatencyAttributionRow {
        window_us,
        terminals,
        attributed_commits: n,
        mean_total_us: mean(total),
        mean_lock_wait_us: mean(lock_wait),
        mean_force_us: mean(force),
        mean_checkpoint_us: mean(checkpoint),
        mean_bus_us: mean(bus),
        component_sum_us,
        measured_mean_us,
        sum_to_measured_ratio: component_sum_us / measured_mean_us.max(0.001),
    }
}

/// Run the sweep. `smoke` trims it to a CI-sized subset.
pub fn latency_attribution(smoke: bool) -> LatencyAttributionResult {
    let (windows, terminals, txns): (&[u64], &[usize], u64) = if smoke {
        (&[0, 2_000], &[4], 10)
    } else {
        (&[0, 1_000, 5_000], &[4, 16], 40)
    };
    let mut rows = Vec::new();
    for &w in windows {
        for &t in terminals {
            rows.push(run_cell(w, t, txns));
        }
    }
    LatencyAttributionResult { rows, smoke }
}

impl LatencyAttributionResult {
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "latency attribution — mean END-TRANSACTION → commit window by component (us)",
            &[
                "window (us)",
                "terminals",
                "commits",
                "total",
                "lock wait",
                "force",
                "checkpoint",
                "bus/queue",
                "measured",
                "sum/measured",
            ],
        );
        for r in &self.rows {
            table.row(vec![
                r.window_us.to_string(),
                r.terminals.to_string(),
                r.attributed_commits.to_string(),
                format!("{:.0}", r.mean_total_us),
                format!("{:.0}", r.mean_lock_wait_us),
                format!("{:.0}", r.mean_force_us),
                format!("{:.0}", r.mean_checkpoint_us),
                format!("{:.0}", r.mean_bus_us),
                format!("{:.0}", r.measured_mean_us),
                format!("{:.3}", r.sum_to_measured_ratio),
            ]);
        }
        table.note(
            "components partition the flight-recorded end→commit window, so they sum \
             to the total exactly; 'measured' is the recorder-independent \
             tmf.commit_latency_us mean — opening the boxcar window trades force \
             count for per-commit force wait",
        );
        table
    }

    /// Hand-rolled JSON (the container has no serde): stable key order,
    /// one row object per sweep cell.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"latency_attribution\",\n");
        out.push_str(&format!("  \"smoke\": {},\n  \"rows\": [\n", self.smoke));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window_us\": {}, \"terminals\": {}, \"attributed_commits\": {}, \
                 \"mean_total_us\": {:.1}, \"mean_lock_wait_us\": {:.1}, \
                 \"mean_force_us\": {:.1}, \"mean_checkpoint_us\": {:.1}, \
                 \"mean_bus_us\": {:.1}, \"component_sum_us\": {:.1}, \
                 \"measured_mean_us\": {:.1}, \"sum_to_measured_ratio\": {:.4}}}{}\n",
                r.window_us,
                r.terminals,
                r.attributed_commits,
                r.mean_total_us,
                r.mean_lock_wait_us,
                r.mean_force_us,
                r.mean_checkpoint_us,
                r.mean_bus_us,
                r.component_sum_us,
                r.measured_mean_us,
                r.sum_to_measured_ratio,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}
