//! Figure-level experiments F1–F4.

use crate::Table;
use encompass::app::{launch_bank_app, launch_mfg_app, read_replica, BankAppParams, MfgAppParams};
use encompass::manufacturing::{global_record, suspense};
use encompass_sim::{CpuId, Fault, NodeId, SimDuration};
use encompass_storage::media::{media_key, VolumeMedia};
use std::cell::RefCell;
use std::rc::Rc;

fn bank_params(terminals: usize, txns: u64) -> BankAppParams {
    BankAppParams {
        accounts: 400,
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        think: SimDuration::from_millis(5),
        ..BankAppParams::default()
    }
}

/// F1 — Figure 1's claim: "the failure of a single module does not
/// disable any other module or disable any inter-module communication".
/// One failure class per row, injected mid-run; service must complete the
/// full workload for every *single*-module class. The double-drive row is
/// the contrast: only ROLLFORWARD recovers from it.
pub fn f1() -> Vec<Table> {
    type Inject = Box<dyn Fn(&mut encompass_sim::World, NodeId)>;
    let classes: Vec<(&str, Inject)> = vec![
        ("none (baseline)", Box::new(|_, _| {})),
        (
            "CPU 0 (TCP/audit primary)",
            Box::new(|w, n| w.inject(Fault::KillCpu(n, CpuId(0)))),
        ),
        (
            "CPU 1 (backout primary)",
            Box::new(|w, n| w.inject(Fault::KillCpu(n, CpuId(1)))),
        ),
        (
            "CPU 2 (DISCPROCESS primary)",
            Box::new(|w, n| w.inject(Fault::KillCpu(n, CpuId(2)))),
        ),
        (
            "CPU 3 (TMP primary)",
            Box::new(|w, n| w.inject(Fault::KillCpu(n, CpuId(3)))),
        ),
        (
            "interprocessor bus 0",
            Box::new(|w, n| w.inject(Fault::KillBus(n, 0))),
        ),
        (
            "one mirrored drive",
            Box::new(|w, n| {
                w.stable_mut()
                    .get_mut::<VolumeMedia>(&media_key(n, "$BANK"))
                    .expect("bank volume")
                    .fail_drive(0);
            }),
        ),
        (
            "BOTH mirrored drives",
            Box::new(|w, n| {
                let m = w
                    .stable_mut()
                    .get_mut::<VolumeMedia>(&media_key(n, "$BANK"))
                    .expect("bank volume");
                m.fail_drive(0);
                m.fail_drive(1);
            }),
        ),
    ];

    let terminals = 6usize;
    let txns = 10u64;
    let expected = terminals as u64 * txns;
    let mut table = Table::new(
        "F1 — availability under single-module failures (bank workload, 1 node, 4 CPUs)",
        &[
            "failure injected at t=0.5s",
            "commits",
            "expected",
            "terminals finished",
            "takeovers",
            "restarts",
            "service survived",
        ],
    );
    for (label, inject) in classes {
        let mut app = launch_bank_app(bank_params(terminals, txns));
        let n = app.nodes[0];
        app.world.run_for(SimDuration::from_millis(500));
        inject(&mut app.world, n);
        app.world.run_for(SimDuration::from_secs(180));
        let m = app.world.metrics();
        let commits = m.get("tcp.commits");
        let finished = m.get("tcp.terminals_finished");
        let survived = commits == expected && finished == terminals as u64;
        table.row(vec![
            label.to_string(),
            commits.to_string(),
            expected.to_string(),
            format!("{finished}/{terminals}"),
            m.get("pair.takeovers").to_string(),
            m.get("tcp.restarts").to_string(),
            if survived { "yes".into() } else { "NO".to_string() },
        ]);
    }
    table.note("every single-module failure completes the full workload; only the double-drive failure (a multi-module failure) loses service — the paper's ROLLFORWARD case (see T5)");
    vec![table]
}

/// F2 — Figure 2's "typical configuration": throughput scaling with the
/// number of processors, plus dynamic server creation at work.
pub fn f2() -> Vec<Table> {
    let mut table = Table::new(
        "F2 — throughput vs processors (debit-credit, think 1ms)",
        &[
            "CPUs",
            "terminals",
            "commits",
            "virtual time (s)",
            "txns/s",
            "servers spawned",
        ],
    );
    for cpus in [2u8, 4, 8, 16] {
        let terminals = 2 * cpus as usize;
        let txns = 20u64;
        let mut app = launch_bank_app(BankAppParams {
            node_cpus: vec![cpus],
            accounts: 2000,
            terminals_per_node: terminals,
            transactions_per_terminal: txns,
            think: SimDuration::from_millis(1),
            servers_min: 2,
            servers_max: 2 * cpus as usize,
            ..BankAppParams::default()
        });
        let expected = terminals as u64 * txns;
        let mut elapsed = 0u64;
        while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
            && elapsed < 300_000
        {
            app.world.run_for(SimDuration::from_millis(100));
            elapsed += 100;
        }
        let t = app.world.now().as_micros() as f64 / 1e6;
        let commits = app.world.metrics().get("tcp.commits");
        table.row(vec![
            cpus.to_string(),
            terminals.to_string(),
            format!("{commits}/{expected}"),
            format!("{t:.2}"),
            format!("{:.1}", commits as f64 / t),
            app.world
                .metrics()
                .get("appmon.servers_spawned")
                .to_string(),
        ]);
    }
    table.note("throughput grows with processors until the single shared volume dominates — multiple points of control need multiple volumes, as the paper's configurations show");
    vec![table]
}

/// F3 — Figure 3: the transaction state machine, validated exhaustively,
/// plus the per-transaction broadcast cost of the paper's
/// broadcast-to-every-processor design.
pub fn f3() -> Vec<Table> {
    use tmf::state::TxState;
    let mut graph = Table::new(
        "F3 — transaction state transitions (Figure 3)",
        &["state", "legal successors", "terminal"],
    );
    for s in TxState::all() {
        graph.row(vec![
            s.to_string(),
            s.successors()
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            s.is_terminal().to_string(),
        ]);
    }
    graph.note("matches Figure 3 exactly; enforced at runtime by TxState::can_become (tested exhaustively in tmf::state)");

    // live run: measure broadcast cost per transaction
    let mut cost = Table::new(
        "F3b — intra-node state-change broadcast cost (all-processors design)",
        &["CPUs", "transactions", "state broadcasts", "broadcasts/txn"],
    );
    for cpus in [2u8, 4, 8, 16] {
        let mut app = launch_bank_app(BankAppParams {
            node_cpus: vec![cpus],
            terminals_per_node: 4,
            transactions_per_terminal: 10,
            think: SimDuration::from_millis(1),
            ..BankAppParams::default()
        });
        app.world.run_for(SimDuration::from_secs(120));
        let m = app.world.metrics();
        let txns = m.get("tmf.commits") + m.get("tmf.aborts");
        let b = m.get("tmf.state_broadcasts");
        cost.row(vec![
            cpus.to_string(),
            txns.to_string(),
            b.to_string(),
            format!("{:.1}", b as f64 / txns.max(1) as f64),
        ]);
    }
    cost.note("3 state changes per committed transaction (active/ending/ended) × one table per processor: cost grows linearly with node size — cheap on the bus, too expensive for the network case (T1)");
    vec![graph, cost]
}

/// F4 — Figure 4: the manufacturing network. Replica convergence through
/// suspense files across a partition: backlog builds while a node is cut
/// off and drains after the heal.
pub fn f4() -> Vec<Table> {
    let mut app = launch_mfg_app(MfgAppParams::default());
    let n0 = app.nodes[0];
    let n3 = app.nodes[3];
    let tally = Rc::new(RefCell::new(crate::driver::MfgTally::default()));
    let drv = crate::driver::MfgDriver::new(
        app.catalog.clone(),
        "master-update",
        n0,
        SimDuration::from_millis(400),
        30, // stop after 30 updates so the backlog can drain visibly
        tally.clone(),
    );
    app.world.spawn(n0, 2, Box::new(drv));

    let mut series = Table::new(
        "F4 — manufacturing network: suspense backlog across a partition of node 3 (cut at 5s, healed at 15s; 30 updates over the first 12s)",
        &["t (s)", "updates committed", "suspense backlog", "node-3 replicas stale"],
    );
    let backlog = |app: &mut encompass::app::AppHandles| -> u64 {
        let mut total = 0;
        for &n in &app.nodes.clone() {
            if let Some(media) = app
                .world
                .stable()
                .get::<VolumeMedia>(&media_key(n, "$MFG"))
            {
                if let Some(f) = media.file(&suspense(n)) {
                    total += f.len() as u64;
                }
            }
        }
        total
    };
    let stale = |app: &mut encompass::app::AppHandles, committed: u64| -> u64 {
        // compare node-3 replicas of the 16 keys against the master copies
        let mut stale = 0;
        for k in 0..16u64 {
            let key = format!("part-{k}");
            let master = read_replica(&mut app.world, n0, "item", key.as_bytes());
            if master.is_none() {
                continue;
            }
            let r3 = read_replica(&mut app.world, n3, "item", key.as_bytes());
            if r3 != master {
                stale += 1;
            }
        }
        let _ = committed;
        stale
    };
    for tick in 0..40u64 {
        if tick == 5 {
            app.world.inject(Fault::Partition(vec![n3]));
        }
        if tick == 15 {
            app.world.inject(Fault::HealAllLinks);
        }
        app.world.run_for(SimDuration::from_secs(1));
        if tick % 2 == 1 {
            let committed = tally.borrow().committed;
            // NOTE: the backlog counts only *flushed* suspense entries;
            // in-cache entries surface after the DISCPROCESS flush
            let b = backlog(&mut app);
            let s = stale(&mut app, committed);
            series.row(vec![
                (tick + 1).to_string(),
                committed.to_string(),
                b.to_string(),
                s.to_string(),
            ]);
        }
    }
    series.note("global updates keep committing while node 3 is cut off (node autonomy); its deferred updates accumulate and drain in suspense-file order after the heal, converging the replicas");
    let _ = global_record(n0, b""); // keep the helper linked for doc examples
    vec![series]
}
