//! One function per experiment in EXPERIMENTS.md. Each returns one or
//! more [`crate::Table`]s ready to print; the `exp_*` binaries are thin
//! wrappers.

mod claims;
mod figures;
mod group_commit;
mod latency_attribution;
mod online_dump;
mod read_mix;

pub use claims::{t1, t2, t3, t4, t5, t6, t7, t8};
pub use figures::{f1, f2, f3, f4};
pub use group_commit::{group_commit, GroupCommitResult, GroupCommitRow};
pub use latency_attribution::{
    latency_attribution, LatencyAttributionResult, LatencyAttributionRow,
};
pub use online_dump::{online_dump, OnlineDumpResult, OnlineDumpRow};
pub use read_mix::{read_mix, ReadMixResult, ReadMixRow};

/// Run every experiment (the `exp_all` binary), in parallel — each
/// experiment builds its own simulated worlds, so they are independent;
/// results are returned in the canonical F1..T8 order.
pub fn all() -> Vec<crate::Table> {
    type ExpFn = fn() -> Vec<crate::Table>;
    let experiments: Vec<(usize, ExpFn)> = vec![
        (0, f1 as ExpFn),
        (1, f2),
        (2, f3),
        (3, f4),
        (4, t1),
        (5, t2),
        (6, t3),
        (7, t4),
        (8, t5),
        (9, t6),
        (10, t7),
        (11, t8),
    ];
    let results: parking_lot::Mutex<Vec<(usize, Vec<crate::Table>)>> =
        parking_lot::Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for (idx, f) in &experiments {
            let results = &results;
            let (idx, f) = (*idx, *f);
            scope.spawn(move |_| {
                let tables = f();
                results.lock().push((idx, tables));
            });
        }
    })
    .expect("experiment thread panicked");
    let mut collected = results.into_inner();
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().flat_map(|(_, t)| t).collect()
}
