//! # encompass-bench
//!
//! The experiment harness: one function per entry in EXPERIMENTS.md
//! (figures F1–F4 and claims T1–T8 of the paper), each regenerating its
//! table/series, plus shared scripted drivers and table rendering.
//!
//! Run a single experiment:
//! ```text
//! cargo run -p encompass-bench --release --bin exp_t1
//! ```
//! Run everything:
//! ```text
//! cargo run -p encompass-bench --release --bin exp_all
//! ```
//! Criterion timing benches live under `benches/`.

pub mod driver;
pub mod experiments;
pub mod table;

pub use table::Table;
