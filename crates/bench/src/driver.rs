//! Shared scripted drivers for experiments: a transaction-script process
//! (BEGIN / ops / END against TMF directly) and a repeating
//! manufacturing-update driver.

use bytes::Bytes;
use encompass::messages::{AppReply, AppRequest, ServerRequest};
use encompass_sim::{Ctx, NodeId, Payload, Pid, Process, SimDuration, TimerId, World};
use encompass_storage::discprocess::DiscReply;
use encompass_storage::Catalog;
use guardian::{Rpc, Target, TimerOutcome};
use std::cell::RefCell;
use std::rc::Rc;
use tmf::session::{DbOp, SessionEvent, SessionOptions, TmfSession};
use tmf::state::AbortReason;

/// One step of a scripted transaction program.
#[derive(Clone)]
pub enum Step {
    Begin,
    Read(String, Bytes),
    ReadLock(String, Bytes),
    Insert(String, Bytes, Bytes),
    Update(String, Bytes, Bytes),
    End,
    Abort,
    Pause(SimDuration),
}

pub type Log = Rc<RefCell<Vec<String>>>;

/// A process that runs a transaction script and records outcomes.
pub struct TxnScript {
    session: TmfSession,
    options: SessionOptions,
    script: Vec<Step>,
    next: usize,
    log: Log,
}

impl TxnScript {
    pub fn new(catalog: Catalog, script: Vec<Step>, log: Log) -> TxnScript {
        TxnScript::with_options(catalog, SessionOptions::default(), script, log)
    }

    /// A script whose `Begin` steps start transactions with `options`
    /// (e.g. read-only / snapshot scripts).
    pub fn with_options(
        catalog: Catalog,
        options: SessionOptions,
        script: Vec<Step>,
        log: Log,
    ) -> TxnScript {
        TxnScript {
            session: TmfSession::new(catalog, 0),
            options,
            script,
            next: 0,
            log,
        }
    }

    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.next >= self.script.len() {
            return;
        }
        let step = self.script[self.next].clone();
        self.next += 1;
        let refused = match step {
            Step::Begin => {
                self.session.begin(ctx, self.options, 0);
                None
            }
            Step::Read(f, k) => self.session.op(ctx, DbOp::Read { file: f, key: k }, 0),
            Step::ReadLock(f, k) => self.session.op(ctx, DbOp::ReadLock { file: f, key: k }, 0),
            Step::Insert(f, k, v) => self
                .session
                .op(ctx, DbOp::Insert { file: f, key: k, value: v }, 0),
            Step::Update(f, k, v) => self
                .session
                .op(ctx, DbOp::Update { file: f, key: k, value: v }, 0),
            Step::End => {
                self.session.end(ctx, 0);
                None
            }
            Step::Abort => {
                self.session.abort(ctx, AbortReason::Voluntary, 0);
                None
            }
            Step::Pause(d) => {
                ctx.set_timer(d, 1);
                None
            }
        };
        if let Some(ev) = refused {
            // synchronous refusal (write under a read-only script)
            self.on_event(ctx, ev);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        let entry = match &ev {
            SessionEvent::Began { transid, .. } => format!("began:{transid}"),
            SessionEvent::OpDone { reply, .. } => match reply {
                DiscReply::Value(Some(v)) => format!("value:{}", String::from_utf8_lossy(v)),
                DiscReply::Value(None) => "value:<none>".into(),
                DiscReply::Ok => "ok".into(),
                DiscReply::Err(e) => format!("err:{e:?}"),
                other => format!("{other:?}"),
            },
            SessionEvent::Committed { .. } => "committed".into(),
            SessionEvent::Aborted { .. } => "aborted".into(),
            SessionEvent::Failed { .. } => "failed".into(),
        };
        self.log.borrow_mut().push(entry);
        self.kick(ctx);
    }
}

impl Process for TxnScript {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.kick(ctx);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
            self.on_event(ctx, ev);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if tag == 1 {
            self.kick(ctx);
            return;
        }
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            self.on_event(ctx, ev);
        }
    }
    fn kind(&self) -> &'static str {
        "txn-script"
    }
}

/// Spawn a [`TxnScript`], returning its outcome log.
pub fn run_txn_script(
    world: &mut World,
    node: NodeId,
    cpu: u8,
    catalog: Catalog,
    script: Vec<Step>,
) -> Log {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    world.spawn(
        node,
        cpu,
        Box::new(TxnScript::new(catalog, script, log.clone())),
    );
    log
}

/// Tally shared by a [`MfgDriver`] and its experiment.
#[derive(Default, Debug)]
pub struct MfgTally {
    pub attempted: u64,
    pub committed: u64,
    pub failed: u64,
}

/// Repeatedly issues global updates (one transaction each) to a
/// manufacturing server class, recording availability.
pub struct MfgDriver {
    session: TmfSession,
    rpc: Rpc<ServerRequest, AppReply>,
    /// `master-update` or `sync-update`.
    pub op: String,
    pub server_node: NodeId,
    pub interval: SimDuration,
    pub updates: u64,
    pub tally: Rc<RefCell<MfgTally>>,
    seq: u64,
    state: u8,
}

impl MfgDriver {
    pub fn new(
        catalog: Catalog,
        op: &str,
        server_node: NodeId,
        interval: SimDuration,
        updates: u64,
        tally: Rc<RefCell<MfgTally>>,
    ) -> MfgDriver {
        MfgDriver {
            session: TmfSession::new(catalog, 6),
            rpc: Rpc::new(41),
            op: op.to_string(),
            server_node,
            interval,
            updates,
            tally,
            seq: 0,
            state: 0,
        }
    }

    fn next_update(&mut self, ctx: &mut Ctx<'_>) {
        if self.seq >= self.updates {
            return;
        }
        self.seq += 1;
        self.tally.borrow_mut().attempted += 1;
        self.state = 1;
        self.session.begin(ctx, SessionOptions::default(), 0);
    }

    fn fail(&mut self, ctx: &mut Ctx<'_>) {
        self.tally.borrow_mut().failed += 1;
        if self.session.transid().is_some() && !self.session.busy() {
            self.state = 4;
            self.session.abort(ctx, AbortReason::NetworkPartition, 0);
        } else {
            self.state = 0;
            ctx.set_timer(self.interval, 2);
        }
    }
}

impl Process for MfgDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, 2);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let payload = match self.session.accept(ctx, payload) {
            Ok(Some(ev)) => {
                match (self.state, ev) {
                    (1, SessionEvent::Began { .. }) => {
                        self.state = 2;
                        let env = ServerRequest {
                            transid: self.session.transid(),
                            options: self.session.options(),
                            request: AppRequest::new(
                                &self.op.clone(),
                                vec![
                                    Bytes::from_static(b"item"),
                                    Bytes::from(format!("part-{}", self.seq % 16)),
                                    Bytes::from(format!("rev-{}", self.seq)),
                                ],
                            ),
                        };
                        if self
                            .rpc
                            .call(
                                ctx,
                                Target::Named(self.server_node, "$SC-mfg".into()),
                                env,
                                SimDuration::from_secs(2),
                                0,
                                0,
                            )
                            .is_err()
                        {
                            self.fail(ctx);
                        }
                    }
                    (3, SessionEvent::Committed { .. }) => {
                        self.tally.borrow_mut().committed += 1;
                        self.state = 0;
                        ctx.set_timer(self.interval, 2);
                    }
                    (4, SessionEvent::Aborted { .. }) => {
                        self.state = 0;
                        ctx.set_timer(self.interval, 2);
                    }
                    (_, SessionEvent::Aborted { .. }) | (_, SessionEvent::Failed { .. }) => {
                        self.tally.borrow_mut().failed += 1;
                        self.state = 0;
                        ctx.set_timer(self.interval, 2);
                    }
                    _ => {}
                }
                return;
            }
            Ok(None) => return,
            Err(p) => p,
        };
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            if self.state == 2 {
                if c.body.ok {
                    self.state = 3;
                    self.session.end(ctx, 0);
                } else {
                    self.fail(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if tag == 2 {
            self.next_update(ctx);
            return;
        }
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            if matches!(ev, SessionEvent::Failed { .. } | SessionEvent::Aborted { .. }) {
                self.tally.borrow_mut().failed += 1;
                self.state = 0;
                ctx.set_timer(self.interval, 2);
            }
            return;
        }
        if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
            self.fail(ctx);
        }
    }

    fn kind(&self) -> &'static str {
        "mfg-driver"
    }
}
