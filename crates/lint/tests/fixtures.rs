//! Fixture corpus: one passing and one failing example per rule family,
//! checked against the *exact* diagnostic text, plus the allow escape
//! hatch. These are the linter's contract tests — if a diagnostic is
//! reworded, this file and any matching `lint-baseline.toml` keys must
//! change with it (baseline entries match on message text).

use encompass_lint::baseline::Baseline;
use encompass_lint::rules::{check_workspace, FileModel};

/// Parse a fixture as if it lived in a sim-executed crate.
fn fixture(name: &str, source: &str) -> FileModel {
    FileModel::new(&format!("crates/core/src/{name}.rs"), "core", source)
}

fn diagnostics(name: &str, source: &str) -> Vec<(String, u32, String)> {
    check_workspace(&[fixture(name, source)])
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line, v.msg))
        .collect()
}

fn assert_clean(name: &str, source: &str) {
    let v = diagnostics(name, source);
    assert!(v.is_empty(), "{name} should be clean, got {v:?}");
}

#[test]
fn l1_iter_bad_and_good() {
    let v = diagnostics("l1_iter_bad", include_str!("fixtures/l1_iter_bad.rs"));
    assert_eq!(
        v,
        vec![
            (
                "L1-iter".into(),
                10,
                "iteration over hash container `rows` via `.keys()` — \
                 HashMap/HashSet order is nondeterministic; use BTreeMap/BTreeSet"
                    .into()
            ),
            (
                "L1-iter".into(),
                14,
                "iteration over hash container `rows` via `for … in` — \
                 HashMap/HashSet order is nondeterministic; use BTreeMap/BTreeSet"
                    .into()
            ),
        ]
    );
    assert_clean("l1_iter_good", include_str!("fixtures/l1_iter_good.rs"));
}

#[test]
fn l1_iter_not_applied_outside_sim_crates() {
    // The same bad source is fine in a non-sim crate (e.g. bench).
    let f = FileModel::new(
        "crates/bench/src/l1_iter_bad.rs",
        "bench",
        include_str!("fixtures/l1_iter_bad.rs"),
    );
    assert!(check_workspace(&[f]).is_empty());
}

#[test]
fn l1_wallclock_bad_and_good() {
    let v = diagnostics(
        "l1_wallclock_bad",
        include_str!("fixtures/l1_wallclock_bad.rs"),
    );
    assert_eq!(
        v,
        vec![(
            "L1-wallclock".into(),
            3,
            "`Instant::now` in a sim-executed crate — simulated code must take \
             time/randomness/concurrency from the kernel (ctx), not the host"
                .into()
        )]
    );
    assert_clean(
        "l1_wallclock_good",
        include_str!("fixtures/l1_wallclock_good.rs"),
    );
}

#[test]
fn l2_wal_bad_and_good() {
    let v = diagnostics("l2_wal_bad", include_str!("fixtures/l2_wal_bad.rs"));
    assert_eq!(
        v,
        vec![(
            "L2-wal".into(),
            8,
            "`hot_path` calls `apply_update` (mutates-db) but carries no \
             `// lint: checkpointed` marker — the checkpoint-before-update \
             (WAL) discipline is unverified on this path"
                .into()
        )]
    );
    assert_clean("l2_wal_good", include_str!("fixtures/l2_wal_good.rs"));
}

#[test]
fn l3_match_bad_and_good() {
    let v = diagnostics("l3_match_bad", include_str!("fixtures/l3_match_bad.rs"));
    assert_eq!(
        v,
        vec![(
            "L3-match".into(),
            5,
            "wildcard `_` arm in match over protocol enum `DiscRequest` — \
             adding a variant must force every handler to decide; \
             list the variants explicitly"
                .into()
        )]
    );
    assert_clean("l3_match_good", include_str!("fixtures/l3_match_good.rs"));
}

#[test]
fn l4_flightrec_bad_and_good() {
    let v = diagnostics(
        "l4_flightrec_bad",
        include_str!("fixtures/l4_flightrec_bad.rs"),
    );
    assert_eq!(
        v,
        vec![(
            "L4-flightrec".into(),
            3,
            "side-effecting call `ctx.count(…)` inside flight-recorder \
             arguments — event expressions must be pure so the recorder \
             stays trace-hash-neutral"
                .into()
        )]
    );
    assert_clean(
        "l4_flightrec_good",
        include_str!("fixtures/l4_flightrec_good.rs"),
    );
}

#[test]
fn allow_suppresses_and_is_reported() {
    let f = fixture(
        "allow_suppression",
        include_str!("fixtures/allow_suppression.rs"),
    );
    let report = encompass_lint::evaluate(&[f], &Baseline::default());
    assert!(report.ok(), "allow should suppress: {:?}", report.new);
    assert_eq!(report.allows_used.len(), 1);
    let a = &report.allows_used[0];
    assert_eq!(a.rule, "L1-iter");
    assert_eq!(a.reason, "summation is order-independent");
    assert_eq!(a.suppressed, 1);
    // The rendered report surfaces the escape hatch and its reason.
    let rendered = report.render();
    assert!(rendered.contains("allow(L1-iter) x1 — summation is order-independent"));
}
