// The escape hatch: an inline allow with a reason suppresses the
// violation on the next line — and is reported, with the reason.
use std::collections::HashMap;

struct Histogram {
    buckets: HashMap<u64, u64>,
}

impl Histogram {
    fn total(&self) -> u64 {
        // lint: allow(L1-iter) — summation is order-independent
        self.buckets.values().sum()
    }
}
