// Clean counterpart of l1_iter_bad.rs: ordered container, and point
// lookups on a hash map (which are order-independent and fine).
use std::collections::{BTreeMap, HashMap};

struct Table {
    rows: BTreeMap<u64, String>,
    index: HashMap<u64, usize>,
}

impl Table {
    fn dump(&self) -> Vec<u64> {
        self.rows.keys().copied().collect()
    }

    fn find(&self, k: u64) -> Option<usize> {
        self.index.get(&k).copied()
    }
}
