// Clean counterpart of l4_flightrec_bad.rs: event arguments are pure
// projections of already-computed values.
fn record(ctx: &mut Ctx, transid: Transid) {
    ctx.flight(transid.flight_id(), FlightCause::Takeover);
}
