// L1-wallclock: host time inside a sim-executed crate.
fn measure() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_micros()
}
