// Clean counterpart of l2_wal_bad.rs: the caller checkpoints first.
// lint: mutates-db
fn apply_update(file: &str, key: u64) {
    drop((file, key));
}

// checkpoint-to-backup happens before the overlay write
// lint: checkpointed
fn commit_path() {
    apply_update("accounts", 7);
}
