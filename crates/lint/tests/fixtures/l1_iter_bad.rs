// L1-iter: iterating a hash container in a sim-executed crate.
use std::collections::HashMap;

struct Table {
    rows: HashMap<u64, String>,
}

impl Table {
    fn dump(&self) -> Vec<u64> {
        self.rows.keys().copied().collect()
    }

    fn sweep(&self) {
        for (k, v) in &self.rows {
            drop((k, v));
        }
    }
}
