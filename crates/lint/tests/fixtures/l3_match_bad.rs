// L3-match: wildcard arm in a match over a protocol enum.
fn route(req: DiscRequest) -> bool {
    match req {
        DiscRequest::Read { .. } => true,
        _ => false,
    }
}
