// Clean counterparts of l3_match_bad.rs: protocol variants listed
// explicitly, and a wildcard over a *non*-protocol shape stays legal.
fn route(req: DiscRequest) -> bool {
    match req {
        DiscRequest::Read { .. } => true,
        DiscRequest::Insert { .. } | DiscRequest::Update { .. } => false,
    }
}

fn outcome(o: Option<u32>) -> bool {
    match o {
        Some(1) => true,
        _ => false,
    }
}
