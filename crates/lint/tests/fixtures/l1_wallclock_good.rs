// Clean counterpart of l1_wallclock_bad.rs: time comes from the kernel.
fn measure(ctx: &Ctx) -> u64 {
    ctx.now().as_micros()
}
