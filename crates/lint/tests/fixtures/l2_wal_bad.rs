// L2-wal: a mutates-db function called from an unmarked path.
// lint: mutates-db
fn apply_update(file: &str, key: u64) {
    drop((file, key));
}

fn hot_path() {
    apply_update("accounts", 7);
}
