// L4-flightrec: a side-effecting call inside flight-recorder arguments.
fn record(ctx: &mut Ctx, transid: Transid) {
    ctx.flight(ctx.count("tmf.events", 1), FlightCause::Takeover);
}
