//! A minimal Rust lexer.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are not
//! available; the linter instead carries this small tokenizer. It only has
//! to be good enough to never mis-tokenize the constructs the rules look at:
//! string/char/lifetime disambiguation, nested block comments, raw strings,
//! and line tracking. Everything else (numbers, punctuation) is lexed
//! loosely — the rules work on identifier/punct shapes, not values.

/// Token kind. Punctuation is emitted one character at a time; multi-char
/// operators (`::`, `=>`, `..`) are recognized downstream by adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String / char / byte / numeric literal (content is irrelevant to the
    /// rules, so it is not preserved beyond the raw text).
    Literal,
    /// A `//` line comment, with the full text including the slashes.
    /// Block comments are skipped (lint directives must be line comments).
    Comment,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenize `source`. Never fails: unterminated constructs simply run to
/// end-of-file, which is fine for a linter (rustc reports the real error).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string();
                self.push(TokKind::Literal, "\"…\"".into(), line);
            } else if c == '\'' {
                self.quote(line);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line);
            } else if c.is_ascii_digit() {
                self.number();
                self.push(TokKind::Literal, "0".into(), line);
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// A `"…"` string with escapes; the opening quote has not been consumed.
    fn string(&mut self) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// A raw string `r"…"` / `r#"…"#`, positioned after the `r`/`br` prefix,
    /// at the first `#` or `"`. Returns false if this is not actually a raw
    /// string opener (e.g. `r#foo` raw identifiers).
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        'outer: loop {
            match self.bump() {
                Some('"') => {
                    for n in 0..hashes {
                        if self.peek(n) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        true
    }

    /// `'` starts either a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a`). Lifetimes are emitted as nothing at all — no rule cares.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if is_ident_start(c)) && after != Some('\'');
        self.bump();
        if is_lifetime {
            while matches!(self.peek(0), Some(c) if is_ident_cont(c)) {
                self.bump();
            }
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::Literal, "'…'".into(), line);
        }
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_cont(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String/char prefixes: r"", r#""#, b"", br"", b''.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"' | '#')) if self.raw_string() => {
                self.push(TokKind::Literal, "r\"…\"".into(), line);
                return;
            }
            ("b", Some('"')) => {
                self.string();
                self.push(TokKind::Literal, "b\"…\"".into(), line);
                return;
            }
            ("b", Some('\'')) => {
                self.bump();
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokKind::Literal, "b'…'".into(), line);
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numbers are lexed loosely: leading digit, then identifier characters
    /// (covers hex, suffixes, exponents well enough). `.` is left to punct
    /// so `1..5` and `x.0.iter()` tokenize predictably.
    fn number(&mut self) {
        while matches!(self.peek(0), Some(c) if is_ident_cont(c)) {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("fn foo(x: u32) -> bool { x > 1 }");
        assert!(t.contains(&(TokKind::Ident, "foo".into())));
        assert!(t.contains(&(TokKind::Punct, "{".into())));
        assert!(t.contains(&(TokKind::Literal, "0".into())));
    }

    #[test]
    fn lifetime_vs_char() {
        let t = lex("&'a str; 'x'; '\\n'");
        let lits = t.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 2, "two char literals, zero lifetime tokens: {t:?}");
    }

    #[test]
    fn raw_and_escaped_strings() {
        let t = kinds(r####"let s = r#"has " quote"#; let u = "esc \" q"; b"x";"####);
        let lits = t.iter().filter(|(k, _)| *k == TokKind::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn nested_block_comment_and_line_comment() {
        let t = lex("/* a /* b */ c */ x // lint: allow(L1-iter) — why\ny");
        assert!(t[0].is_ident("x"));
        assert_eq!(t[1].kind, TokKind::Comment);
        assert!(t[1].text.contains("lint: allow"));
        assert!(t[2].is_ident("y"));
        assert_eq!(t[2].line, 2);
    }

    #[test]
    fn line_numbers() {
        let t = lex("a\nb\n\nc");
        assert_eq!(
            t.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn hash_string_not_confused_with_raw_ident() {
        // `r#type` raw identifiers must not swallow the rest of the file.
        let t = kinds("let r#type = 1; done");
        assert!(t.iter().any(|(_, s)| s == "type"));
        assert!(t.iter().any(|(_, s)| s == "done"));
    }
}
