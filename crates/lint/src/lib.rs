//! `encompass-lint` — repo-specific static analysis for the ENCOMPASS
//! reproduction. See DESIGN.md §D11 for the rule catalogue and workflow.
//!
//! The simulator's whole verification story (chaos sweeps, trace-hash
//! equivalence, flight-recorder neutrality) rests on properties clippy
//! cannot express: bit-for-bit determinism of sim-executed code and the
//! paper's checkpoint-before-update (WAL) discipline. This crate parses the
//! workspace with a small in-tree lexer/parser (the build is offline, so no
//! `syn`) and enforces them on every push.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules;

use baseline::Baseline;
use model::DirectiveKind;
use rules::{FileModel, Violation};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// An inline `// lint: allow` that suppressed at least one violation.
#[derive(Debug, Clone)]
pub struct UsedAllow {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
    pub suppressed: u32,
}

#[derive(Debug, Default)]
pub struct Report {
    /// Violations that fail the gate.
    pub new: Vec<Violation>,
    /// Violations covered by `lint-baseline.toml`.
    pub baselined: Vec<Violation>,
    /// Inline allows that fired, with their reasons.
    pub allows_used: Vec<UsedAllow>,
    /// Inline allows that suppressed nothing (candidates for removal).
    pub allows_unused: Vec<UsedAllow>,
    pub files_scanned: usize,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.new.is_empty()
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        for v in &self.new {
            let _ = writeln!(s, "error[{}]: {}\n  --> {}:{}", v.rule, v.msg, v.file, v.line);
        }
        for v in &self.baselined {
            let _ = writeln!(
                s,
                "baselined[{}]: {}\n  --> {}:{}",
                v.rule, v.msg, v.file, v.line
            );
        }
        if !self.allows_used.is_empty() {
            let _ = writeln!(s, "inline allows in effect:");
            for a in &self.allows_used {
                let _ = writeln!(
                    s,
                    "  {}:{} allow({}) x{} — {}",
                    a.file, a.line, a.rule, a.suppressed, a.reason
                );
            }
        }
        for a in &self.allows_unused {
            let _ = writeln!(
                s,
                "warning: unused allow({}) at {}:{} — remove it or fix the reason",
                a.rule, a.file, a.line
            );
        }
        let _ = writeln!(
            s,
            "encompass-lint: {} files scanned; {} new violation(s), {} baselined, {} allowed inline",
            self.files_scanned,
            self.new.len(),
            self.baselined.len(),
            self.allows_used.iter().map(|a| a.suppressed).sum::<u32>(),
        );
        s
    }
}

/// Apply inline allows and the baseline to raw violations.
pub fn evaluate(files: &[FileModel], baseline: &Baseline) -> Report {
    let raw = rules::check_workspace(files);

    // Inline allows: an `allow(<rule>)` directive suppresses violations of
    // that rule on its own line or the line directly below it.
    struct AllowSite {
        file: String,
        line: u32,
        rule: String,
        reason: String,
        suppressed: u32,
    }
    let mut allows: Vec<AllowSite> = Vec::new();
    for f in files {
        for d in &f.model.directives {
            if let DirectiveKind::Allow { rule, reason } = &d.kind {
                allows.push(AllowSite {
                    file: f.path.clone(),
                    line: d.line,
                    rule: rule.clone(),
                    reason: reason.clone(),
                    suppressed: 0,
                });
            }
        }
    }

    let mut budgets = baseline.budgets();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    'violations: for v in raw {
        for a in allows.iter_mut() {
            if a.file == v.file && a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line)
            {
                a.suppressed += 1;
                continue 'violations;
            }
        }
        if let Some(budget) = budgets.get_mut(&v.key()) {
            if *budget > 0 {
                *budget -= 1;
                report.baselined.push(v);
                continue;
            }
        }
        report.new.push(v);
    }

    for a in allows {
        let ua = UsedAllow {
            file: a.file,
            line: a.line,
            rule: a.rule,
            reason: a.reason,
            suppressed: a.suppressed,
        };
        if ua.suppressed > 0 {
            report.allows_used.push(ua);
        } else {
            report.allows_unused.push(ua);
        }
    }
    report
}

/// Build a baseline that grandfathers every currently-unsuppressed violation.
pub fn build_baseline(files: &[FileModel]) -> Baseline {
    let empty = Baseline::default();
    let report = evaluate(files, &empty);
    let mut entries: Vec<baseline::BaselineEntry> = Vec::new();
    for v in &report.new {
        if let Some(e) = entries
            .iter_mut()
            .find(|e| e.rule == v.rule && e.file == v.file && e.key == v.msg)
        {
            e.count += 1;
        } else {
            entries.push(baseline::BaselineEntry {
                rule: v.rule.to_string(),
                file: v.file.clone(),
                key: v.msg.clone(),
                count: 1,
            });
        }
    }
    Baseline { entries }
}

// ---- workspace walking -------------------------------------------------

/// Crate directories scanned under `crates/`. `lint` itself is excluded (its
/// fixture corpus contains deliberate violations), and `shims/` are offline
/// stand-ins for external crates — not our code.
const SKIP_CRATES: &[&str] = &["lint"];

/// Collect and parse every workspace source file the rules apply to:
/// `crates/*/src/**/*.rs` plus the root crate's `src/`.
pub fn load_workspace(root: &Path) -> Result<Vec<FileModel>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if SKIP_CRATES.contains(&name.as_str()) {
            continue;
        }
        collect_rs(&dir.join("src"), root, &name, &mut files)?;
    }
    collect_rs(&root.join("src"), root, "", &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<FileModel>,
) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // a crate without src/ (or root without src/) is fine
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, root, crate_name, out)?;
        } else if p.extension().and_then(|s| s.to_str()) == Some("rs") {
            let source = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(FileModel::new(&rel, crate_name, &source));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_allow_consumes_and_reports() {
        let f = FileModel::new(
            "crates/core/src/x.rs",
            "core",
            "struct S { a: HashMap<u32, u32> }\n\
             impl S { fn f(&self) {\n\
             // lint: allow(L1-iter) — order-independent min-fold\n\
             self.a.iter();\n\
             } }",
        );
        let r = evaluate(&[f], &Baseline::default());
        assert!(r.ok(), "{:?}", r.new);
        assert_eq!(r.allows_used.len(), 1);
        assert_eq!(r.allows_used[0].reason, "order-independent min-fold");
    }

    #[test]
    fn baseline_budget_is_exact() {
        let src = "struct S { a: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { self.a.iter(); self.a.iter(); } }";
        let f = FileModel::new("crates/core/src/x.rs", "core", src);
        let b = build_baseline(&[f]);
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].count, 2);
        // With the generated baseline the check is green…
        let f = FileModel::new("crates/core/src/x.rs", "core", src);
        assert!(evaluate(&[f], &b).ok());
        // …but a third identical violation is new.
        let src3 = "struct S { a: HashMap<u32, u32> }\n\
                    impl S { fn f(&self) { self.a.iter(); self.a.iter(); self.a.iter(); } }";
        let f = FileModel::new("crates/core/src/x.rs", "core", src3);
        let r = evaluate(&[f], &b);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.baselined.len(), 2);
    }

    #[test]
    fn unused_allow_warns() {
        let f = FileModel::new(
            "crates/core/src/x.rs",
            "core",
            "// lint: allow(L1-iter) — nothing here anymore\nfn f() {}",
        );
        let r = evaluate(&[f], &Baseline::default());
        assert!(r.ok());
        assert_eq!(r.allows_unused.len(), 1);
    }
}
