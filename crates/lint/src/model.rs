//! Structural source model: the subset of Rust syntax the rules need.
//!
//! Built on the token stream from [`crate::lexer`], this extracts
//! functions (with their `// lint:` markers), call sites with receivers
//! and argument spans, `match` expressions with parsed arms, `#[cfg(test)]`
//! module regions, and the set of identifiers declared with a
//! `HashMap`/`HashSet` type. It is deliberately approximate — a linter can
//! afford conservative heuristics where a compiler cannot — but it must
//! never panic on valid Rust, so every scan tolerates truncation.

use crate::lexer::{lex, TokKind, Token};
use std::collections::BTreeSet;
use std::ops::Range;

/// A parsed `// lint: …` directive.
#[derive(Debug, Clone)]
pub enum DirectiveKind {
    /// `// lint: mutates-db` or `// lint: checkpointed` — attaches to the
    /// next `fn` item.
    Marker(String),
    /// `// lint: allow(<rule>) — <reason>` — suppresses violations of
    /// `<rule>` on the same line or the next line.
    Allow { rule: String, reason: String },
    /// A `// lint:` comment the parser could not understand (reported as a
    /// violation so typos cannot silently disable a rule).
    Malformed(String),
}

#[derive(Debug, Clone)]
pub struct Directive {
    pub line: u32,
    pub kind: DirectiveKind,
}

#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Bare name, e.g. `put`.
    pub name: String,
    /// Qualified with the surrounding `impl`/`trait` type, e.g. `Overlay::put`.
    pub qualname: String,
    pub line: u32,
    /// Token range of the body including both braces; `None` for bodyless
    /// trait-method declarations.
    pub body: Option<Range<usize>>,
    /// `lint:` markers attached to this function (`mutates-db`, `checkpointed`).
    pub markers: Vec<String>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name: last path segment for `a::b::f(..)`, method name for
    /// `x.f(..)`.
    pub callee: String,
    /// For method calls, the identifier immediately before the dot
    /// (`self.overlay.put(..)` → receiver `overlay`). `None` for free calls
    /// and computed receivers like `foo().bar()`.
    pub receiver: Option<String>,
    pub line: u32,
    /// Token range of the argument list, excluding the parentheses.
    pub args: Range<usize>,
    /// Index into [`SourceModel::fns`] of the enclosing function, if any.
    pub in_fn: Option<usize>,
}

#[derive(Debug, Clone)]
pub struct Arm {
    pub line: u32,
    /// Token indices of the arm pattern, guard excluded.
    pub pattern: Vec<usize>,
}

#[derive(Debug, Clone)]
pub struct MatchExpr {
    pub line: u32,
    pub arms: Vec<Arm>,
}

/// A `for <pat> in <expr> {` loop header.
#[derive(Debug, Clone)]
pub struct ForLoop {
    pub line: u32,
    /// Token range of the iterated expression.
    pub expr: Range<usize>,
}

pub struct SourceModel {
    pub tokens: Vec<Token>,
    pub fns: Vec<FnDecl>,
    pub calls: Vec<Call>,
    pub matches: Vec<MatchExpr>,
    pub for_loops: Vec<ForLoop>,
    pub directives: Vec<Directive>,
    /// Token ranges inside `#[cfg(test)] mod … { … }` items.
    pub test_regions: Vec<Range<usize>>,
    /// Identifiers declared with a `HashMap`/`HashSet` type or initializer
    /// anywhere in this file (struct fields, lets, params, literal fields).
    pub hash_names: BTreeSet<String>,
}

impl SourceModel {
    pub fn parse(source: &str) -> SourceModel {
        let tokens = lex(source);
        let mut m = SourceModel {
            tokens,
            fns: Vec::new(),
            calls: Vec::new(),
            matches: Vec::new(),
            for_loops: Vec::new(),
            directives: Vec::new(),
            test_regions: Vec::new(),
            hash_names: BTreeSet::new(),
        };
        m.extract_directives();
        m.extract_items();
        m.extract_hash_names();
        m.extract_calls_and_loops();
        m.parse_matches();
        m
    }

    pub fn in_test_region(&self, tok_idx: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&tok_idx))
    }

    /// Line-based variant for violations that only carry a line.
    pub fn line_in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|r| {
            let (Some(a), Some(b)) = (self.tokens.get(r.start), self.tokens.get(r.end - 1))
            else {
                return false;
            };
            (a.line..=b.line).contains(&line)
        })
    }

    // ---- token helpers -------------------------------------------------

    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// Next non-comment token index at or after `i`.
    fn code_at(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.tokens.get(i) {
            if t.kind != TokKind::Comment {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    fn next_code(&self, i: usize) -> Option<usize> {
        self.code_at(i + 1)
    }

    /// Previous non-comment token index strictly before `i`.
    fn prev_code(&self, i: usize) -> Option<usize> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            if self.tokens[j].kind != TokKind::Comment {
                return Some(j);
            }
        }
        None
    }

    fn is_punct_at(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tok(i) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// Find the matching closer for the opener at `open` (`(`/`[`/`{`).
    /// Returns the index of the closing token. Comment-insensitive.
    fn match_delim(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.tokens.get(open)?.text.chars().next()? {
            '(' => ('(', ')'),
            '[' => ('[', ']'),
            '{' => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0isize;
        let mut i = open;
        while let Some(t) = self.tokens.get(i) {
            if t.kind == TokKind::Punct {
                if t.is_punct(o) {
                    depth += 1;
                } else if t.is_punct(c) {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
            }
            i += 1;
        }
        None
    }

    /// Scan forward from `i` for a `{` or `;` at bracket depth 0, skipping
    /// `(…)`, `[…]` and angle-bracket generics (with `->` arrows ignored).
    /// Returns `(index, is_brace)`.
    fn find_body_open(&self, mut i: usize) -> Option<(usize, bool)> {
        let mut angle = 0isize;
        while let Some(t) = self.tokens.get(i) {
            if t.kind == TokKind::Punct {
                match t.text.chars().next().unwrap() {
                    '(' | '[' => {
                        i = self.match_delim(i)?;
                    }
                    '<' => angle += 1,
                    '-' if self.is_punct_at(i + 1, '>') => {
                        i += 1; // arrow: skip the `>`
                    }
                    '>' => angle = (angle - 1).max(0),
                    '{' if angle == 0 => return Some((i, true)),
                    ';' if angle == 0 => return Some((i, false)),
                    _ => {}
                }
            }
            i += 1;
        }
        None
    }

    // ---- directives ----------------------------------------------------

    fn extract_directives(&mut self) {
        let mut out = Vec::new();
        for t in &self.tokens {
            if t.kind != TokKind::Comment {
                continue;
            }
            let body = t.text.trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("lint:") else {
                continue;
            };
            let rest = rest.trim();
            let kind = if rest == "mutates-db" || rest == "checkpointed" {
                DirectiveKind::Marker(rest.to_string())
            } else if let Some(after) = rest.strip_prefix("allow(") {
                match after.split_once(')') {
                    Some((rule, tail)) => {
                        let reason = tail
                            .trim_start()
                            .trim_start_matches(['—', '–', '-', ':'])
                            .trim();
                        if reason.is_empty() {
                            DirectiveKind::Malformed(format!(
                                "allow({rule}) is missing a reason (write `// lint: allow({rule}) — <why>`)"
                            ))
                        } else {
                            DirectiveKind::Allow {
                                rule: rule.trim().to_string(),
                                reason: reason.to_string(),
                            }
                        }
                    }
                    None => DirectiveKind::Malformed(format!("unclosed allow: `{rest}`")),
                }
            } else {
                DirectiveKind::Malformed(format!("unrecognized directive `{rest}`"))
            };
            out.push(Directive { line: t.line, kind });
        }
        self.directives = out;
    }

    // ---- items: impl/trait context, fns, cfg(test) mods ----------------

    fn extract_items(&mut self) {
        // First pass: find every `fn`/`impl`/`trait` header and the
        // `#[cfg(test)] mod` regions, recording which `{` opens what.
        #[derive(Clone)]
        enum Opens {
            Impl(String),
            Fn(usize),
        }
        let mut opens: Vec<(usize, Opens)> = Vec::new();
        let mut fns: Vec<FnDecl> = Vec::new();

        let mut i = 0usize;
        while let Some(idx) = self.code_at(i) {
            let Some(word) = self.ident_at(idx) else {
                i = idx + 1;
                continue;
            };
            match word {
                "impl" | "trait" => {
                    if let Some((name, body_open)) = self.parse_type_header(idx) {
                        opens.push((body_open, Opens::Impl(name)));
                    }
                }
                "fn" => {
                    if let Some(decl) = self.parse_fn_header(idx) {
                        if let Some(body) = &decl.body {
                            opens.push((body.start, Opens::Fn(fns.len())));
                        }
                        fns.push(decl);
                    }
                }
                "mod" if self.mod_is_cfg_test(idx) => {
                    if let Some(name_i) = self.next_code(idx) {
                        if let Some((open, true)) = self.find_body_open(name_i) {
                            if let Some(close) = self.match_delim(open) {
                                self.test_regions.push(open..close + 1);
                            }
                        }
                    }
                }
                _ => {}
            }
            i = idx + 1;
        }

        // Second pass: walk the brace tree to qualify fn names with their
        // impl/trait type.
        let mut stack: Vec<Option<String>> = Vec::new();
        for (k, t) in self.tokens.iter().enumerate() {
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.chars().next().unwrap() {
                '{' => {
                    let mut entry = None;
                    for (open, what) in &opens {
                        if *open == k {
                            match what {
                                Opens::Impl(name) => entry = Some(name.clone()),
                                Opens::Fn(fi) => {
                                    let ty = stack.iter().rev().flatten().next();
                                    if let Some(ty) = ty {
                                        fns[*fi].qualname =
                                            format!("{ty}::{}", fns[*fi].name);
                                    }
                                }
                            }
                        }
                    }
                    stack.push(entry);
                }
                '}' => {
                    stack.pop();
                }
                _ => {}
            }
        }

        self.attach_markers(&mut fns);
        self.fns = fns;
    }

    /// Parse an `impl …`/`trait …` header starting at `kw`; returns the
    /// self-type name (last path segment) and the index of the body `{`.
    fn parse_type_header(&self, kw: usize) -> Option<(String, usize)> {
        let mut i = self.next_code(kw)?;
        // Skip generic parameter list.
        if self.is_punct_at(i, '<') {
            let mut depth = 0isize;
            loop {
                let t = self.tok(i)?;
                if t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i = self.next_code(i)?;
        }
        let (open, is_brace) = self.find_body_open(i)?;
        if !is_brace {
            return None; // `trait Foo: Bar;` — nothing to do
        }
        // The self type is the first path after `for` if present (skipping
        // `&`, `mut`, `dyn`), otherwise the first path.
        let mut name_from = i;
        let mut j = i;
        while j < open {
            if self.ident_at(j) == Some("for") {
                name_from = self.next_code(j).unwrap_or(j + 1);
            }
            j += 1;
        }
        let name = self.last_path_segment(name_from, open)?;
        Some((name, open))
    }

    /// Last identifier of the path starting at `from` (bounded by `until`),
    /// skipping leading `&`/`mut`/`dyn` and stopping at generics.
    fn last_path_segment(&self, mut from: usize, until: usize) -> Option<String> {
        while from < until {
            match self.ident_at(from) {
                Some("mut" | "dyn") => from = self.next_code(from)?,
                _ if self.is_punct_at(from, '&') => from = self.next_code(from)?,
                _ => break,
            }
        }
        let mut last = None;
        let mut i = from;
        while i < until {
            match self.ident_at(i) {
                Some(id) => last = Some(id.to_string()),
                None => break,
            }
            // Continue only across `::`.
            let Some(a) = self.next_code(i) else { break };
            if self.is_punct_at(a, ':') && self.is_punct_at(a + 1, ':') {
                i = self.next_code(a + 1)?;
            } else {
                break;
            }
        }
        last
    }

    fn parse_fn_header(&self, kw: usize) -> Option<FnDecl> {
        let name_i = self.next_code(kw)?;
        let name = self.ident_at(name_i)?.to_string(); // `fn(` fn-pointer type → None
        let (open, is_brace) = self.find_body_open(name_i + 1)?;
        let body = if is_brace {
            let close = self.match_delim(open)?;
            Some(open..close + 1)
        } else {
            None
        };
        Some(FnDecl {
            qualname: name.clone(),
            name,
            line: self.tokens[kw].line,
            body,
            markers: Vec::new(),
        })
    }

    /// Does the `mod` keyword at `kw` carry a `#[cfg(test)]`-style attribute
    /// (any attribute group containing both `cfg` and `test`)?
    fn mod_is_cfg_test(&self, kw: usize) -> bool {
        // Walk backwards over attribute groups `#[ … ]`.
        let mut end = match self.prev_code(kw) {
            Some(i) => i,
            None => return false,
        };
        loop {
            if !self.is_punct_at(end, ']') {
                return false;
            }
            // Find the opening `[` by matching backwards.
            let mut depth = 0isize;
            let mut i = end;
            let open = loop {
                let t = match self.tok(i) {
                    Some(t) => t,
                    None => return false,
                };
                if t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break i;
                    }
                }
                if i == 0 {
                    return false;
                }
                i -= 1;
            };
            let hash = match self.prev_code(open) {
                Some(h) if self.is_punct_at(h, '#') => h,
                _ => return false,
            };
            let mut has_cfg = false;
            let mut has_test = false;
            for k in open..end {
                match self.ident_at(k) {
                    Some("cfg") => has_cfg = true,
                    Some("test") => has_test = true,
                    _ => {}
                }
            }
            if has_cfg && has_test {
                return true;
            }
            end = match self.prev_code(hash) {
                Some(i) => i,
                None => return false,
            };
        }
    }

    /// Attach `Marker` directives to the next `fn` item: the directive
    /// comment must be separated from the `fn` keyword only by other
    /// comments, attributes, and visibility/qualifier keywords.
    fn attach_markers(&self, fns: &mut [FnDecl]) {
        for d in &self.directives {
            let DirectiveKind::Marker(marker) = &d.kind else {
                continue;
            };
            // Find the directive's comment token, then scan forward.
            let Some(pos) = self.tokens.iter().position(|t| {
                t.kind == TokKind::Comment && t.line == d.line && t.text.contains("lint:")
            }) else {
                continue;
            };
            let mut i = pos + 1;
            let fn_line = loop {
                let Some(idx) = self.code_at(i) else { break None };
                match self.ident_at(idx) {
                    Some("fn") => break Some(self.tokens[idx].line),
                    Some("pub" | "async" | "const" | "unsafe" | "extern") => {
                        i = idx + 1;
                        // `pub(crate)` visibility scope
                        if self.is_punct_at(idx + 1, '(') {
                            if let Some(c) = self.match_delim(idx + 1) {
                                i = c + 1;
                            }
                        }
                    }
                    _ if self.is_punct_at(idx, '#') => {
                        let Some(open) = self.next_code(idx) else { break None };
                        let Some(close) = self.match_delim(open) else { break None };
                        i = close + 1;
                    }
                    _ => break None,
                }
            };
            if let Some(fn_line) = fn_line {
                for f in fns.iter_mut() {
                    if f.line == fn_line {
                        f.markers.push(marker.clone());
                    }
                }
            }
        }
    }

    // ---- hash-typed names ----------------------------------------------

    fn extract_hash_names(&mut self) {
        let mut names = BTreeSet::new();
        let n = self.tokens.len();
        let mut i = 0usize;
        while let Some(idx) = self.code_at(i) {
            i = idx + 1;
            let Some(name) = self.ident_at(idx) else { continue };
            if name == "let" {
                // `let [mut] x = HashMap::new()` / `HashSet::…`
                let mut j = match self.next_code(idx) {
                    Some(j) => j,
                    None => continue,
                };
                if self.ident_at(j) == Some("mut") {
                    j = match self.next_code(j) {
                        Some(j) => j,
                        None => continue,
                    };
                }
                let Some(bound) = self.ident_at(j).map(str::to_string) else {
                    continue;
                };
                let Some(eq) = self.next_code(j) else { continue };
                if !self.is_punct_at(eq, '=') {
                    continue; // typed lets are covered by the `name :` scan
                }
                if let Some(init) = self.next_code(eq) {
                    if matches!(self.ident_at(init), Some("HashMap" | "HashSet")) {
                        names.insert(bound);
                    }
                }
                continue;
            }
            // `name : … HashMap/HashSet …` up to a depth-0 terminator.
            let Some(colon) = self.next_code(idx) else { continue };
            if !self.is_punct_at(colon, ':')
                || self.is_punct_at(colon + 1, ':')
                || self
                    .prev_code(idx)
                    .is_some_and(|p| self.is_punct_at(p, ':'))
            {
                continue;
            }
            let mut depth = 0isize;
            let mut j = colon + 1;
            while j < n {
                let Some(t) = self.tok(j) else { break };
                if t.kind == TokKind::Punct {
                    match t.text.chars().next().unwrap() {
                        '<' | '(' | '[' => depth += 1,
                        '-' if self.is_punct_at(j + 1, '>') => {
                            j += 1;
                        }
                        '>' | ')' | ']' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ',' | ';' | '=' | '{' | '}' if depth == 0 => break,
                        _ => {}
                    }
                } else if depth <= 1 {
                    // Only the outermost type constructor counts: a
                    // `Vec<HashMap<…>>` *element* type is still hash-iterated
                    // through the Vec, so flag that too (depth 1 covers it).
                    if matches!(self.ident_at(j), Some("HashMap" | "HashSet")) {
                        names.insert(name.to_string());
                        break;
                    }
                }
                j += 1;
            }
        }
        self.hash_names = names;
    }

    // ---- calls and for-loops -------------------------------------------

    fn extract_calls_and_loops(&mut self) {
        const NOT_CALLS: &[&str] = &[
            "if", "while", "for", "match", "return", "loop", "else", "let", "mut",
            "ref", "move", "async", "await", "unsafe", "as", "in", "where", "impl",
            "fn", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
            "static", "crate", "super", "box", "dyn",
        ];
        let mut calls = Vec::new();
        let mut loops = Vec::new();
        for k in 0..self.tokens.len() {
            let Some(name) = self.ident_at(k) else { continue };
            if name == "for" {
                if let Some(l) = self.parse_for_header(k) {
                    loops.push(l);
                }
                continue;
            }
            if NOT_CALLS.contains(&name) {
                continue;
            }
            let Some(next) = self.next_code(k) else { continue };
            if !self.is_punct_at(next, '(') {
                continue;
            }
            let prev = self.prev_code(k);
            // `fn name(` is a declaration; `name!(…)` is a macro (the `!`
            // sits between the ident and `(`, so it never reaches here).
            if prev.is_some_and(|p| self.ident_at(p) == Some("fn")) {
                continue;
            }
            let receiver = match prev {
                Some(p) if self.is_punct_at(p, '.') => self
                    .prev_code(p)
                    .and_then(|r| self.ident_at(r))
                    .map(str::to_string),
                _ => None,
            };
            let is_method = prev.is_some_and(|p| self.is_punct_at(p, '.'));
            let Some(close) = self.match_delim(next) else { continue };
            calls.push(Call {
                callee: name.to_string(),
                receiver: if is_method { receiver } else { None },
                line: self.tokens[k].line,
                args: next + 1..close,
                in_fn: self.enclosing_fn(k),
            });
        }
        self.calls = calls;
        self.for_loops = loops;
    }

    fn enclosing_fn(&self, tok_idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (fi, f) in self.fns.iter().enumerate() {
            if let Some(b) = &f.body {
                if b.contains(&tok_idx) {
                    // Innermost body wins (nested fns).
                    let better = match best {
                        None => true,
                        Some(prev) => {
                            let pb = self.fns[prev].body.as_ref().unwrap();
                            b.len() < pb.len()
                        }
                    };
                    if better {
                        best = Some(fi);
                    }
                }
            }
        }
        best
    }

    /// `for <pat> in <expr> {` — captures the expression token range.
    /// Returns None for `for<…>` higher-ranked bounds and truncated input.
    fn parse_for_header(&self, kw: usize) -> Option<ForLoop> {
        let first = self.next_code(kw)?;
        if self.is_punct_at(first, '<') {
            return None;
        }
        // Find `in` at depth 0.
        let mut depth = 0isize;
        let mut i = first;
        let in_at = loop {
            let t = self.tok(i)?;
            if t.kind == TokKind::Punct {
                match t.text.chars().next().unwrap() {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' | '}' => return None, // not a loop header after all
                    _ => {}
                }
            } else if depth == 0 && t.is_ident("in") {
                break i;
            }
            i += 1;
        };
        let expr_start = self.next_code(in_at)?;
        let mut depth = 0isize;
        let mut j = expr_start;
        let expr_end = loop {
            let t = self.tok(j)?;
            if t.kind == TokKind::Punct {
                match t.text.chars().next().unwrap() {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' if depth == 0 => break j,
                    _ => {}
                }
            }
            j += 1;
        };
        Some(ForLoop {
            line: self.tokens[kw].line,
            expr: expr_start..expr_end,
        })
    }

    // ---- match arms ----------------------------------------------------

    fn parse_matches(&mut self) {
        let mut out = Vec::new();
        for k in 0..self.tokens.len() {
            if self.ident_at(k) != Some("match") {
                continue;
            }
            // Not the keyword if preceded by `.`/`::` (method or path seg).
            if let Some(p) = self.prev_code(k) {
                if self.is_punct_at(p, '.') || self.is_punct_at(p, ':') {
                    continue;
                }
            }
            let Some(scrut_start) = self.next_code(k) else { continue };
            // Body `{` at depth 0 past the scrutinee.
            let mut depth = 0isize;
            let mut i = scrut_start;
            let open = loop {
                let Some(t) = self.tok(i) else { break None };
                if t.kind == TokKind::Punct {
                    match t.text.chars().next().unwrap() {
                        '(' | '[' => depth += 1,
                        ')' | ']' => depth -= 1,
                        '{' if depth == 0 => break Some(i),
                        _ => {}
                    }
                }
                i += 1;
            };
            let Some(open) = open else { continue };
            let Some(close) = self.match_delim(open) else { continue };
            let arms = self.parse_arms(open + 1, close);
            out.push(MatchExpr {
                line: self.tokens[k].line,
                arms,
            });
        }
        self.matches = out;
    }

    fn parse_arms(&self, start: usize, end: usize) -> Vec<Arm> {
        let mut arms = Vec::new();
        let mut i = start;
        'arms: while let Some(idx) = self.code_at(i) {
            if idx >= end {
                break;
            }
            // ---- pattern: tokens until `=>` at depth 0, guard excluded
            let mut pattern = Vec::new();
            let mut depth = 0isize;
            let mut in_guard = false;
            let mut j = idx;
            let arrow = loop {
                if j >= end {
                    break 'arms;
                }
                let t = &self.tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text.chars().next().unwrap() {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth -= 1,
                        '=' if depth == 0 && self.is_punct_at(j + 1, '>') => break j,
                        _ => {}
                    }
                }
                if depth == 0 && t.is_ident("if") {
                    in_guard = true;
                }
                if !in_guard && t.kind != TokKind::Comment {
                    pattern.push(j);
                }
                j += 1;
            };
            arms.push(Arm {
                line: self.tokens[idx].line,
                pattern,
            });
            // ---- body: block or expression up to `,` at depth 0
            let Some(body_start) = self.next_code(arrow + 1) else { break };
            if body_start >= end {
                break;
            }
            if self.is_punct_at(body_start, '{') {
                let Some(c) = self.match_delim(body_start) else { break };
                i = c + 1;
                if let Some(comma) = self.code_at(i) {
                    if comma < end && self.is_punct_at(comma, ',') {
                        i = comma + 1;
                    }
                }
            } else {
                let mut depth = 0isize;
                let mut j = body_start;
                loop {
                    if j >= end {
                        i = j;
                        break;
                    }
                    let t = &self.tokens[j];
                    if t.kind == TokKind::Punct {
                        match t.text.chars().next().unwrap() {
                            '(' | '[' | '{' => depth += 1,
                            ')' | ']' | '}' => depth -= 1,
                            ',' if depth == 0 => {
                                i = j + 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
            }
        }
        arms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_extraction_with_impl_qualification() {
        let m = SourceModel::parse(
            "impl Overlay { pub fn put(&mut self) { self.x.insert(1); } }\nfn free() {}",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.qualname.as_str()).collect();
        assert_eq!(names, vec!["Overlay::put", "free"]);
    }

    #[test]
    fn trait_impl_for_type() {
        let m = SourceModel::parse("impl<T: Clone> Process for DiscProcess<T> { fn run(&mut self) {} }");
        assert_eq!(m.fns[0].qualname, "DiscProcess::run");
    }

    #[test]
    fn markers_attach_through_attributes() {
        let m = SourceModel::parse(
            "// lint: mutates-db\n#[allow(dead_code)]\npub fn apply() {}\nfn other() {}",
        );
        assert_eq!(m.fns[0].markers, vec!["mutates-db".to_string()]);
        assert!(m.fns[1].markers.is_empty());
    }

    #[test]
    fn hash_names_from_fields_and_lets() {
        let m = SourceModel::parse(
            "struct S { txns: HashMap<u64, T>, ok: BTreeMap<u64, T> }\n\
             fn f() { let mut seen = HashSet::new(); let open: HashSet<u32> = x.collect(); }",
        );
        let names: Vec<&str> = m.hash_names.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["open", "seen", "txns"]);
    }

    #[test]
    fn calls_with_receivers() {
        let m = SourceModel::parse("fn f() { self.overlay.put(1); helper(); x.iter(); }");
        let c: Vec<(String, Option<String>)> = m
            .calls
            .iter()
            .map(|c| (c.callee.clone(), c.receiver.clone()))
            .collect();
        assert!(c.contains(&("put".into(), Some("overlay".into()))));
        assert!(c.contains(&("helper".into(), None)));
        assert!(c.contains(&("iter".into(), Some("x".into()))));
    }

    #[test]
    fn match_arms_with_struct_patterns_and_guards() {
        let m = SourceModel::parse(
            "fn f(r: R) { match r { R::A { x, .. } if x > 0 => {}, R::B(_) => y(), _ => {} } }",
        );
        assert_eq!(m.matches.len(), 1);
        let arms = &m.matches[0].arms;
        assert_eq!(arms.len(), 3);
        // Wildcard arm is exactly one `_` token.
        let last = &arms[2];
        assert_eq!(last.pattern.len(), 1);
        assert!(m.tokens[last.pattern[0]].is_punct('_') || m.tokens[last.pattern[0]].text == "_");
    }

    #[test]
    fn cfg_test_region() {
        let m = SourceModel::parse(
            "fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { x.iter(); } }",
        );
        assert_eq!(m.test_regions.len(), 1);
        let call = m.calls.iter().find(|c| c.callee == "iter").unwrap();
        assert!(m.in_test_region(call.args.start));
    }

    #[test]
    fn for_loop_expr_range() {
        let m = SourceModel::parse("fn f() { for (k, v) in &self.txns { use_it(k, v); } }");
        assert_eq!(m.for_loops.len(), 1);
        let fl = &m.for_loops[0];
        let txt: Vec<&str> = fl.expr.clone().map(|i| m.tokens[i].text.as_str()).collect();
        assert_eq!(txt, vec!["&", "self", ".", "txns"]);
    }
}
