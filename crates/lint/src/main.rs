//! CLI for `encompass-lint`.
//!
//! Usage:
//!   cargo run -p encompass-lint -- check [--root <dir>] [--baseline <file>]
//!                                        [--write-baseline] [--report <file>]
//!
//! Exit status 0 when no new (non-baselined, non-allowed) violations exist,
//! 1 otherwise, 2 on usage or I/O errors.

use encompass_lint::baseline::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprintln!("usage: encompass-lint check [--root <dir>] [--baseline <file>] [--write-baseline] [--report <file>]");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}` (only `check` exists)");
        return ExitCode::from(2);
    }

    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut report_path: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--baseline" => baseline_path = it.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = true,
            "--report" => report_path = it.next().map(PathBuf::from),
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("cannot find workspace root (no Cargo.toml with [workspace] upward of cwd); pass --root");
                return ExitCode::from(2);
            }
        },
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.toml"));

    let files = match encompass_lint::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let b = encompass_lint::build_baseline(&files);
        if let Err(e) = std::fs::write(&baseline_path, b.serialize()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} with {} entr{}",
            baseline_path.display(),
            b.entries.len(),
            if b.entries.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline file: everything is new
    };

    let report = encompass_lint::evaluate(&files, &baseline);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, &rendered) {
            eprintln!("error: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if report.ok() {
        println!("OK");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: {} new violation(s)", report.new.len());
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first Cargo.toml containing a
/// `[workspace]` table.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
