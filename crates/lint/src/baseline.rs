//! `lint-baseline.toml`: grandfathered violations.
//!
//! The gate is zero-*new*-violations: anything recorded here is reported but
//! does not fail the build. Entries match on the violation's line-independent
//! key (rule + file + message), with a `count` budget so k grandfathered
//! instances of the same finding in a file do not mask a k+1'th new one.
//!
//! The format is a tiny TOML subset (array-of-tables with string/integer
//! values) parsed by hand — the offline build has no `toml` crate.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub key: String,
    pub count: u32,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse the baseline file. Unknown keys are ignored; a structurally
    /// broken file is an error (a silently-empty baseline would fail CI
    /// noisily, but better to say why).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut current: Option<BTreeMap<String, String>> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(map) = current.take() {
                    entries.push(Self::entry_from(map, lineno)?);
                }
                current = Some(BTreeMap::new());
            } else if let Some((k, v)) = line.split_once('=') {
                let Some(map) = current.as_mut() else {
                    return Err(format!(
                        "line {}: key outside [[allow]] table",
                        lineno + 1
                    ));
                };
                let v = v.trim();
                let v = v
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .map(|s| s.replace("\\\"", "\"").replace("\\\\", "\\"))
                    .unwrap_or_else(|| v.to_string());
                map.insert(k.trim().to_string(), v);
            } else {
                return Err(format!("line {}: unparseable `{line}`", lineno + 1));
            }
        }
        if let Some(map) = current.take() {
            entries.push(Self::entry_from(map, text.lines().count())?);
        }
        Ok(Baseline { entries })
    }

    fn entry_from(
        map: BTreeMap<String, String>,
        lineno: usize,
    ) -> Result<BaselineEntry, String> {
        let get = |k: &str| {
            map.get(k)
                .cloned()
                .ok_or_else(|| format!("[[allow]] ending at line {lineno}: missing `{k}`"))
        };
        Ok(BaselineEntry {
            rule: get("rule")?,
            file: get("file")?,
            key: get("key")?,
            count: map
                .get("count")
                .map(|c| c.parse::<u32>())
                .transpose()
                .map_err(|e| format!("bad count: {e}"))?
                .unwrap_or(1),
        })
    }

    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# lint-baseline.toml — violations grandfathered when encompass-lint was\n\
             # introduced. The CI gate is zero NEW violations: entries here are\n\
             # reported but do not fail the build. Shrink this file, never grow it;\n\
             # regenerate with `cargo run -p encompass-lint -- check --write-baseline`.\n",
        );
        for e in &self.entries {
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", e.rule));
            out.push_str(&format!("file = \"{}\"\n", e.file));
            out.push_str(&format!(
                "key = \"{}\"\n",
                e.key.replace('\\', "\\\\").replace('"', "\\\"")
            ));
            if e.count != 1 {
                out.push_str(&format!("count = {}\n", e.count));
            }
        }
        out
    }

    /// Remaining budget per violation key.
    pub fn budgets(&self) -> BTreeMap<String, u32> {
        let mut m = BTreeMap::new();
        for e in &self.entries {
            *m.entry(format!("{}|{}|{}", e.rule, e.file, e.key)).or_insert(0) += e.count;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    rule: "L1-iter".into(),
                    file: "crates/x/src/a.rs".into(),
                    key: "iteration over hash container `m` via `.iter()`".into(),
                    count: 2,
                },
                BaselineEntry {
                    rule: "L3-match".into(),
                    file: "crates/x/src/b.rs".into(),
                    key: "has a \"quoted\" part".into(),
                    count: 1,
                },
            ],
        };
        let text = b.serialize();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries, b.entries);
    }

    #[test]
    fn missing_field_is_error() {
        let err = Baseline::parse("[[allow]]\nrule = \"L1-iter\"\n").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn empty_ok() {
        assert!(Baseline::parse("# nothing\n").unwrap().entries.is_empty());
    }
}
