//! The four rule families (L1–L4) plus directive hygiene.
//!
//! Rule ids (used in `// lint: allow(<id>)` and `lint-baseline.toml`):
//! * `L1-iter` — iteration over `HashMap`/`HashSet` in sim-executed crates
//! * `L1-wallclock` — `Instant::now`/`SystemTime`/`thread_rng`/`thread::spawn`
//!   outside the kernel/bench/CLI boundary
//! * `L2-wal` — a `mutates-db` function reached from a caller without a
//!   `checkpointed` marker (checkpoint-as-WAL discipline)
//! * `L3-match` — wildcard `_` arm in a `match` over a protocol enum
//! * `L4-flightrec` — side-effecting call inside flight-recorder arguments
//! * `lint-directive` — malformed `// lint:` comment (so a typo cannot
//!   silently disable a rule)

use crate::model::{DirectiveKind, SourceModel};

/// Crates whose code executes inside the deterministic simulator; L1 applies.
pub const SIM_CRATES: &[&str] = &["sim", "core", "storage", "audit", "guardian", "chaos"];

/// Protocol enums whose `match`es must stay exhaustive (L3).
pub const PROTOCOL_ENUMS: &[&str] = &[
    "DiscRequest",
    "AuditMsg",
    "AuditDelta",
    "TmpMsg",
    "BackoutMsg",
    "DumpMsg",
    "TxState",
    "LockMode",
    "TxnClass",
];

/// Order-sensitive methods on hash containers (L1-iter).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Receivers whose method calls are side effects when they appear inside a
/// flight-recorder event expression (L4).
const IMPURE_RECEIVERS: &[&str] = &["ctx", "rng", "metrics", "world"];

pub const KNOWN_RULES: &[&str] = &[
    "L1-iter",
    "L1-wallclock",
    "L2-wal",
    "L3-match",
    "L4-flightrec",
    "lint-directive",
];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl Violation {
    /// Line-independent identity used for baseline matching, so baseline
    /// entries survive unrelated edits that shift line numbers.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.file, self.msg)
    }
}

/// One parsed source file plus its location in the workspace.
pub struct FileModel {
    /// Repo-relative path with forward slashes, e.g. `crates/core/src/tmp.rs`.
    pub path: String,
    /// Crate directory name (`core`, `storage`, …); empty for the root crate.
    pub crate_name: String,
    pub model: SourceModel,
}

impl FileModel {
    pub fn new(path: &str, crate_name: &str, source: &str) -> FileModel {
        FileModel {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            model: SourceModel::parse(source),
        }
    }

    fn is_sim_crate(&self) -> bool {
        SIM_CRATES.contains(&self.crate_name.as_str())
    }

    /// Binaries and CLIs are the boundary where wall-clock time and real
    /// threads are legitimate.
    fn is_boundary_file(&self) -> bool {
        self.path.ends_with("/main.rs") || self.path.contains("/bin/")
    }
}

/// Run every rule over the workspace. Violations are sorted by file/line.
pub fn check_workspace(files: &[FileModel]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        directive_hygiene(f, &mut out);
        if f.is_sim_crate() {
            l1_iteration(f, &mut out);
            if !f.is_boundary_file() {
                l1_wallclock(f, &mut out);
            }
        }
        l3_matches(f, &mut out);
        l4_flightrec(f, &mut out);
    }
    l2_wal(files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

// ---- directive hygiene -------------------------------------------------

fn directive_hygiene(f: &FileModel, out: &mut Vec<Violation>) {
    for d in &f.model.directives {
        match &d.kind {
            DirectiveKind::Malformed(msg) => out.push(Violation {
                rule: "lint-directive",
                file: f.path.clone(),
                line: d.line,
                msg: msg.clone(),
            }),
            DirectiveKind::Allow { rule, .. } if !KNOWN_RULES.contains(&rule.as_str()) => {
                out.push(Violation {
                    rule: "lint-directive",
                    file: f.path.clone(),
                    line: d.line,
                    msg: format!(
                        "allow({rule}) names an unknown rule (known: {})",
                        KNOWN_RULES.join(", ")
                    ),
                })
            }
            _ => {}
        }
    }
}

// ---- L1: determinism ---------------------------------------------------

fn l1_iteration(f: &FileModel, out: &mut Vec<Violation>) {
    let m = &f.model;
    for c in &m.calls {
        if !ITER_METHODS.contains(&c.callee.as_str()) {
            continue;
        }
        let Some(recv) = &c.receiver else { continue };
        if !m.hash_names.contains(recv) || m.in_test_region(c.args.start) {
            continue;
        }
        out.push(Violation {
            rule: "L1-iter",
            file: f.path.clone(),
            line: c.line,
            msg: format!(
                "iteration over hash container `{recv}` via `.{}()` — \
                 HashMap/HashSet order is nondeterministic; use BTreeMap/BTreeSet",
                c.callee
            ),
        });
    }
    for fl in &m.for_loops {
        if m.in_test_region(fl.expr.start) {
            continue;
        }
        // Only simple path expressions (`&self.txns`, `map`): a call in the
        // expression was already inspected via the method-call pass.
        let toks: Vec<&str> = fl
            .expr
            .clone()
            .map(|i| m.tokens[i].text.as_str())
            .collect();
        if toks.contains(&"(") {
            continue;
        }
        let Some(last_ident) = fl
            .expr
            .clone()
            .rev()
            .find_map(|i| match m.tokens[i].kind {
                crate::lexer::TokKind::Ident => Some(m.tokens[i].text.clone()),
                _ => None,
            })
        else {
            continue;
        };
        if last_ident != "_" && m.hash_names.contains(&last_ident) {
            out.push(Violation {
                rule: "L1-iter",
                file: f.path.clone(),
                line: fl.line,
                msg: format!(
                    "iteration over hash container `{last_ident}` via `for … in` — \
                     HashMap/HashSet order is nondeterministic; use BTreeMap/BTreeSet"
                ),
            });
        }
    }
}

fn l1_wallclock(f: &FileModel, out: &mut Vec<Violation>) {
    let m = &f.model;
    let toks = &m.tokens;
    let mut push = |line: u32, what: &str, i: usize| {
        if !m.in_test_region(i) {
            out.push(Violation {
                rule: "L1-wallclock",
                file: f.path.clone(),
                line,
                msg: format!(
                    "`{what}` in a sim-executed crate — simulated code must take \
                     time/randomness/concurrency from the kernel (ctx), not the host"
                ),
            });
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        let leads_to = |k: usize, name: &str| -> bool {
            toks.get(k + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(k + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(k + 3).is_some_and(|a| a.is_ident(name))
        };
        match t.text.as_str() {
            "Instant" if leads_to(i, "now") => push(t.line, "Instant::now", i),
            "SystemTime" => push(t.line, "SystemTime", i),
            "thread_rng" => push(t.line, "thread_rng", i),
            "thread" if leads_to(i, "spawn") => push(t.line, "thread::spawn", i),
            _ => {}
        }
    }
}

// ---- L2: checkpoint-as-WAL ordering ------------------------------------

fn l2_wal(files: &[FileModel], out: &mut Vec<Violation>) {
    // Collect marked functions across the workspace.
    let mut mutates: Vec<(&str, &str)> = Vec::new(); // (bare name, qualname)
    for f in files {
        for d in &f.model.fns {
            if d.markers.iter().any(|m| m == "mutates-db") {
                mutates.push((&d.name, &d.qualname));
            }
        }
    }
    if mutates.is_empty() {
        return;
    }
    for f in files {
        for c in &f.model.calls {
            let Some((_, qual)) = mutates.iter().find(|(n, _)| *n == c.callee) else {
                continue;
            };
            if f.model.in_test_region(c.args.start) {
                continue;
            }
            let Some(fi) = c.in_fn else { continue };
            let caller = &f.model.fns[fi];
            // Recursive/internal calls inside the marked function itself and
            // calls from other checkpointed/mutating paths are fine.
            if caller
                .markers
                .iter()
                .any(|m| m == "checkpointed" || m == "mutates-db")
            {
                continue;
            }
            out.push(Violation {
                rule: "L2-wal",
                file: f.path.clone(),
                line: c.line,
                msg: format!(
                    "`{}` calls `{qual}` (mutates-db) but carries no \
                     `// lint: checkpointed` marker — the checkpoint-before-update \
                     (WAL) discipline is unverified on this path",
                    caller.qualname
                ),
            });
        }
    }
}

// ---- L3: exhaustive protocol matches -----------------------------------

fn l3_matches(f: &FileModel, out: &mut Vec<Violation>) {
    let m = &f.model;
    for mx in &m.matches {
        // A "protocol match" has at least one arm whose pattern starts with
        // `Enum::…` for a protocol enum (after stripping `&`/`|`). Matching
        // `Option<TxState>` etc. via `Some(TxState::…)` is out of scope:
        // the wildcard there covers the `None` shape, not enum variants.
        let mut enum_name: Option<&str> = None;
        for arm in &mx.arms {
            let mut it = arm
                .pattern
                .iter()
                .map(|&i| &m.tokens[i])
                .skip_while(|t| t.is_punct('&') || t.is_punct('|'));
            let Some(first) = it.next() else { continue };
            if first.kind == crate::lexer::TokKind::Ident
                && PROTOCOL_ENUMS.contains(&first.text.as_str())
            {
                let sep: Vec<&crate::lexer::Token> = it.take(2).collect();
                if sep.len() == 2 && sep[0].is_punct(':') && sep[1].is_punct(':') {
                    enum_name = Some(PROTOCOL_ENUMS
                        .iter()
                        .find(|e| **e == first.text)
                        .unwrap());
                    break;
                }
            }
        }
        let Some(enum_name) = enum_name else { continue };
        if m.line_in_test_region(mx.line) {
            continue;
        }
        for arm in &mx.arms {
            if arm.pattern.len() == 1 && m.tokens[arm.pattern[0]].text == "_" {
                out.push(Violation {
                    rule: "L3-match",
                    file: f.path.clone(),
                    line: arm.line,
                    msg: format!(
                        "wildcard `_` arm in match over protocol enum `{enum_name}` — \
                         adding a variant must force every handler to decide; \
                         list the variants explicitly"
                    ),
                });
            }
        }
    }
}

// ---- L4: flight-recorder neutrality ------------------------------------

fn l4_flightrec(f: &FileModel, out: &mut Vec<Violation>) {
    let m = &f.model;
    for c in &m.calls {
        if c.callee != "flight" {
            continue;
        }
        if m.in_test_region(c.args.start) {
            continue;
        }
        // Inside the argument span, look for `<impure>.<method>(`.
        let mut i = c.args.start;
        while i + 2 < c.args.end {
            let (a, b, d) = (&m.tokens[i], &m.tokens[i + 1], &m.tokens[i + 2]);
            if a.kind == crate::lexer::TokKind::Ident
                && IMPURE_RECEIVERS.contains(&a.text.as_str())
                && b.is_punct('.')
                && d.kind == crate::lexer::TokKind::Ident
                && m.tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            {
                out.push(Violation {
                    rule: "L4-flightrec",
                    file: f.path.clone(),
                    line: a.line,
                    msg: format!(
                        "side-effecting call `{}.{}(…)` inside flight-recorder \
                         arguments — event expressions must be pure so the \
                         recorder stays trace-hash-neutral",
                        a.text, d.text
                    ),
                });
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_file(src: &str) -> FileModel {
        FileModel::new("crates/core/src/x.rs", "core", src)
    }

    #[test]
    fn l1_iter_flags_hash_not_btree() {
        let f = sim_file(
            "struct S { a: HashMap<u32, u32>, b: BTreeMap<u32, u32> }\n\
             impl S { fn f(&self) { self.a.iter(); self.b.iter(); self.a.get(&1); } }",
        );
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L1-iter");
        assert!(v[0].msg.contains("`a`"));
    }

    #[test]
    fn l1_for_loop_over_hash() {
        let f = sim_file(
            "struct S { a: HashSet<u32> }\n\
             impl S { fn f(&self) { for x in &self.a { use_it(x); } } }",
        );
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("for … in"));
    }

    #[test]
    fn l1_not_applied_outside_sim_crates() {
        let f = FileModel::new(
            "crates/bench/src/x.rs",
            "bench",
            "struct S { a: HashMap<u32, u32> }\nfn f(s: &S) { s.a.iter(); }",
        );
        assert!(check_workspace(&[f]).is_empty());
    }

    #[test]
    fn l1_wallclock() {
        let f = sim_file("fn f() { let t = Instant::now(); }");
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L1-wallclock");
    }

    #[test]
    fn l2_unmarked_caller_flagged() {
        let f = FileModel::new(
            "crates/storage/src/x.rs",
            "storage",
            "// lint: mutates-db\nfn apply_write() {}\n\
             // lint: checkpointed\nfn good() { apply_write(); }\n\
             fn bad() { apply_write(); }",
        );
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L2-wal");
        assert!(v[0].msg.contains("`bad`"));
    }

    #[test]
    fn l3_wildcard_in_protocol_match() {
        let f = sim_file(
            "fn f(r: DiscRequest) { match r { DiscRequest::Read { .. } => {}, _ => {} } }\n\
             fn g(o: Option<u32>) { match o { Some(1) => {}, _ => {} } }",
        );
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L3-match");
    }

    #[test]
    fn l4_impure_flight_args() {
        let f = sim_file(
            "fn f(ctx: &mut Ctx) { ctx.flight(t.flight_id(), FlightCause::Takeover); \
             ctx.flight(ctx.count(\"x\", 1), FlightCause::Takeover); }",
        );
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L4-flightrec");
        assert!(v[0].msg.contains("ctx.count"));
    }

    #[test]
    fn malformed_directive_reported() {
        let f = sim_file("// lint: allow(L1-iter)\nfn f() {}");
        let v = check_workspace(&[f]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lint-directive");
        assert!(v[0].msg.contains("missing a reason"));
    }
}
