//! End-to-end audit tests: DISCPROCESS + AUDITPROCESS + BACKOUTPROCESS in
//! one simulated node, including the Checkpoint-vs-WAL ablation and a full
//! archive → crash → ROLLFORWARD cycle.

use bytes::Bytes;
use encompass_audit::auditprocess::{spawn_audit_process, AuditConfig};
use encompass_audit::backout::{spawn_backout_process, BackoutMsg, BackoutReply};
use encompass_audit::monitor::MonitorTrail;
use encompass_audit::rollforward::rollforward_volume;
use encompass_audit::trail::{partition_trail_key, trail_key, TrailMedia};
use encompass_sim::{CpuId, Fault, NodeId, Payload, Pid, Process, SimConfig, SimDuration, World};
use encompass_storage::discprocess::{
    spawn_disc_process, DiscConfig, DiscReply, DiscRequest,
};
use encompass_storage::locks::LockMode;
use encompass_storage::media::{media_key, VolumeMedia};
use encompass_storage::testkit::run_script;
use encompass_storage::types::{FileDef, RecoveryMode, Transid, VolumeRef};
use encompass_storage::Catalog;
use guardian::{Rpc, Target, TimerOutcome};
use std::cell::RefCell;
use std::rc::Rc;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn txn(seq: u64) -> Transid {
    Transid {
        home_node: NodeId(0),
        cpu: 0,
        seq,
    }
}

const WAIT: SimDuration = SimDuration::from_millis(200);

fn setup(mode: RecoveryMode) -> (World, NodeId, Target) {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let vol = VolumeRef::new(n, "$DATA");
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", vol.clone()));
    spawn_audit_process(&mut w, n, 2, 3, AuditConfig::default());
    let cfg = DiscConfig {
        recovery_mode: mode,
        audit_service: Some("$AUDIT".into()),
        ..DiscConfig::default()
    };
    let h = spawn_disc_process(&mut w, 0, 1, vol, catalog, cfg);
    (w, n, h.target())
}

fn write_workload(t: Transid) -> Vec<DiscRequest> {
    vec![
        DiscRequest::Insert {
            file: "accounts".into(),
            key: b("a"),
            value: b("1"),
            transid: Some(t),
            lock_wait: WAIT,
        },
        DiscRequest::Update {
            file: "accounts".into(),
            key: b("a"),
            value: b("2"),
            transid: Some(t),
        },
        DiscRequest::Insert {
            file: "accounts".into(),
            key: b("b"),
            value: b("9"),
            transid: Some(t),
            lock_wait: WAIT,
        },
        DiscRequest::EndPhase1 { transid: t },
        DiscRequest::ReleaseLocks { transid: t, commit: true },
    ]
}

#[test]
fn nonstop_mode_defers_forces_to_phase_one() {
    let (mut w, n, target) = setup(RecoveryMode::NonStopCheckpoint);
    let replies = run_script(&mut w, n, 0, target, write_workload(txn(1)));
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(replies.borrow().len(), 5, "{:?}", replies.borrow());
    assert_eq!(replies.borrow()[3], DiscReply::Phase1Done);
    // exactly one group force for the whole transaction
    assert_eq!(w.metrics().get("audit.forces"), 1);
    // and the trail now has the three images
    let trail = w
        .stable()
        .get::<TrailMedia>(&trail_key(n, "$AUDIT"))
        .unwrap();
    assert_eq!(trail.txn_images(txn(1)).len(), 3);
}

#[test]
fn wal_mode_forces_every_update() {
    let (mut w, n, target) = setup(RecoveryMode::WalForce);
    let replies = run_script(&mut w, n, 0, target, write_workload(txn(1)));
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(replies.borrow().len(), 5, "{:?}", replies.borrow());
    // one force per write (3 writes), none needed at phase one
    assert_eq!(w.metrics().get("audit.forces"), 3);
    assert_eq!(w.metrics().get("disc.wal_forced_writes"), 3);
}

#[test]
fn group_commit_batches_concurrent_phase_ones() {
    let (mut w, n, target) = setup(RecoveryMode::NonStopCheckpoint);
    // four concurrent transactions from different client processes
    let mut all = Vec::new();
    for i in 0..4u64 {
        let t = txn(i + 1);
        let key = Bytes::from(format!("k{i}"));
        all.push(run_script(
            &mut w,
            n,
            (i % 4) as u8,
            target.clone(),
            vec![
                DiscRequest::Insert {
                    file: "accounts".into(),
                    key,
                    value: b("v"),
                    transid: Some(t),
                    lock_wait: WAIT,
                },
                DiscRequest::EndPhase1 { transid: t },
                DiscRequest::ReleaseLocks { transid: t, commit: true },
            ],
        ));
    }
    w.run_for(SimDuration::from_secs(5));
    for r in &all {
        assert_eq!(r.borrow().len(), 3);
    }
    // group commit: far fewer physical forces than transactions is the
    // point; with near-simultaneous arrivals we expect ≤ 2 forces
    assert!(
        w.metrics().get("audit.forces") <= 2,
        "forces = {}",
        w.metrics().get("audit.forces")
    );
}

#[test]
fn audit_takeover_with_half_filled_boxcar_loses_nothing() {
    // same shape as `setup`, but with a long boxcar window so the primary
    // dies while the window is still open and the boxcar half-filled
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let vol = VolumeRef::new(n, "$DATA");
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", vol.clone()));
    spawn_audit_process(
        &mut w,
        n,
        2,
        3,
        AuditConfig {
            group_commit_window: SimDuration::from_millis(300),
            ..AuditConfig::default()
        },
    );
    let cfg = DiscConfig {
        recovery_mode: RecoveryMode::NonStopCheckpoint,
        audit_service: Some("$AUDIT".into()),
        ..DiscConfig::default()
    };
    let h = spawn_disc_process(&mut w, 0, 1, vol, catalog, cfg);
    let target = h.target();

    // two transactions reach phase one inside the same window
    let mut scripts = Vec::new();
    for i in 0..2u64 {
        let t = txn(i + 1);
        scripts.push(run_script(
            &mut w,
            n,
            i as u8,
            target.clone(),
            vec![
                DiscRequest::Insert {
                    file: "accounts".into(),
                    key: Bytes::from(format!("k{i}")),
                    value: b("v"),
                    transid: Some(t),
                    lock_wait: WAIT,
                },
                DiscRequest::EndPhase1 { transid: t },
                DiscRequest::ReleaseLocks { transid: t, commit: true },
            ],
        ));
    }
    // both force requests have boarded, nothing forced yet: kill the primary
    w.run_for(SimDuration::from_millis(150));
    assert_eq!(
        w.metrics().get("audit.forces"),
        0,
        "window must still be open when the primary dies"
    );
    w.inject(Fault::KillCpu(n, CpuId(2)));
    w.run_for(SimDuration::from_secs(10));

    // every waiter was answered after the takeover
    for (i, r) in scripts.iter().enumerate() {
        assert_eq!(r.borrow().len(), 3, "txn {i}: {:?}", r.borrow());
        assert_eq!(r.borrow()[1], DiscReply::Phase1Done, "txn {i}");
    }
    assert!(w.metrics().get("audit.takeovers") >= 1);
    // the checkpointed boxcar records reached the trail exactly once each:
    // nothing lost with the primary, nothing double-forced on retransmit
    let trail = w
        .stable()
        .get::<TrailMedia>(&trail_key(n, "$AUDIT"))
        .unwrap();
    assert_eq!(trail.txn_images(txn(1)).len(), 1);
    assert_eq!(trail.txn_images(txn(2)).len(), 1);
}

#[test]
fn stale_window_timer_does_not_close_the_next_boxcar_early() {
    // Two force requests fill the boxcar to `group_commit_max`, so the
    // force starts *before* the armed window expires — leaving the window
    // timer live. A third transaction then opens a fresh window. The
    // stale timer from the first window fires mid-way through the new
    // window; it must be ignored, not close the new boxcar ~100ms early.
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let vol = VolumeRef::new(n, "$DATA");
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", vol.clone()));
    spawn_audit_process(
        &mut w,
        n,
        2,
        3,
        AuditConfig {
            group_commit_window: SimDuration::from_millis(300),
            group_commit_max: 2,
            ..AuditConfig::default()
        },
    );
    let cfg = DiscConfig {
        recovery_mode: RecoveryMode::NonStopCheckpoint,
        audit_service: Some("$AUDIT".into()),
        ..DiscConfig::default()
    };
    let h = spawn_disc_process(&mut w, 0, 1, vol, catalog, cfg);
    let target = h.target();

    let phase1 = |i: u64| {
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: Bytes::from(format!("k{i}")),
                value: b("v"),
                transid: Some(txn(i)),
                lock_wait: WAIT,
            },
            DiscRequest::EndPhase1 { transid: txn(i) },
            DiscRequest::ReleaseLocks { transid: txn(i), commit: true },
        ]
    };
    // t≈0: two transactions arm the window, then fill the boxcar to max —
    // the force starts early, stranding the window timer (fires ≈ t+300ms)
    let r1 = run_script(&mut w, n, 0, target.clone(), phase1(1));
    let r2 = run_script(&mut w, n, 1, target.clone(), phase1(2));
    w.run_for(SimDuration::from_millis(100));
    assert_eq!(w.metrics().get("audit.forces"), 1, "boxcar filled: forced early");
    // t≈100ms: a third transaction arms a fresh window (deadline ≈ 400ms)
    let r3 = run_script(&mut w, n, 2, target, phase1(3));
    // t≈360ms: the stale timer has fired (≈300ms) inside the new window;
    // the new boxcar must still be open
    w.run_for(SimDuration::from_millis(260));
    assert_eq!(
        w.metrics().get("audit.forces"),
        1,
        "stale window timer closed the new boxcar early"
    );
    assert_eq!(w.metrics().get("audit.stale_window_ignored"), 1);
    // and the new window still closes on its own deadline
    w.run_for(SimDuration::from_millis(200));
    assert_eq!(w.metrics().get("audit.forces"), 2);
    for (i, r) in [&r1, &r2, &r3].iter().enumerate() {
        assert_eq!(r.borrow().len(), 3, "txn {}: {:?}", i + 1, r.borrow());
        assert_eq!(r.borrow()[1], DiscReply::Phase1Done, "txn {}", i + 1);
    }
}

#[test]
fn partition_takeover_with_half_filled_boxcar_per_partition_loses_nothing() {
    // Two volumes mapped to two trail partitions, one transaction parked
    // in each partition's open boxcar, then the primary dies: the backup
    // must answer every waiter from its checkpointed per-partition state,
    // and each partition's trail must hold its images exactly once.
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let vol_a = VolumeRef::new(n, "$DATA");
    let vol_b = VolumeRef::new(n, "$DATB");
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", vol_a.clone()));
    catalog.add(FileDef::key_sequenced("ledger", vol_b.clone()));
    let mut partition_of = std::collections::BTreeMap::new();
    partition_of.insert("$DATA".to_string(), 0usize);
    partition_of.insert("$DATB".to_string(), 1usize);
    spawn_audit_process(
        &mut w,
        n,
        2,
        3,
        AuditConfig {
            group_commit_window: SimDuration::from_millis(300),
            partitions: 2,
            partition_of,
            ..AuditConfig::default()
        },
    );
    let cfg = DiscConfig {
        recovery_mode: RecoveryMode::NonStopCheckpoint,
        audit_service: Some("$AUDIT".into()),
        ..DiscConfig::default()
    };
    let ha = spawn_disc_process(&mut w, 0, 1, vol_a, catalog.clone(), cfg.clone());
    let hb = spawn_disc_process(&mut w, 1, 2, vol_b, catalog, cfg);

    // one transaction per volume, both boxcars half-filled and waiting
    let script = |file: &str, i: u64| {
        vec![
            DiscRequest::Insert {
                file: file.into(),
                key: Bytes::from(format!("k{i}")),
                value: b("v"),
                transid: Some(txn(i)),
                lock_wait: WAIT,
            },
            DiscRequest::EndPhase1 { transid: txn(i) },
            DiscRequest::ReleaseLocks { transid: txn(i), commit: true },
        ]
    };
    let ra = run_script(&mut w, n, 0, ha.target(), script("accounts", 1));
    let rb = run_script(&mut w, n, 1, hb.target(), script("ledger", 2));
    w.run_for(SimDuration::from_millis(150));
    assert_eq!(
        w.metrics().get("audit.forces"),
        0,
        "both windows must still be open when the primary dies"
    );
    w.inject(Fault::KillCpu(n, CpuId(2)));
    w.run_for(SimDuration::from_secs(10));

    for (name, r) in [("a", &ra), ("b", &rb)] {
        assert_eq!(r.borrow().len(), 3, "txn {name}: {:?}", r.borrow());
        assert_eq!(r.borrow()[1], DiscReply::Phase1Done, "txn {name}");
    }
    assert!(w.metrics().get("audit.takeovers") >= 1);
    // each partition trail holds exactly its own volume's image, once
    let p0 = w
        .stable()
        .get::<TrailMedia>(&partition_trail_key(n, "$AUDIT", 0))
        .unwrap();
    let p1 = w
        .stable()
        .get::<TrailMedia>(&partition_trail_key(n, "$AUDIT", 1))
        .unwrap();
    assert_eq!(p0.txn_images(txn(1)).len(), 1);
    assert_eq!(p0.txn_images(txn(2)).len(), 0);
    assert_eq!(p1.txn_images(txn(2)).len(), 1);
    assert_eq!(p1.txn_images(txn(1)).len(), 0);
}

/// Drives a Backout request and records the reply.
struct BackoutDriver {
    node: NodeId,
    transid: Transid,
    rpc: Rpc<BackoutMsg, BackoutReply>,
    done: Rc<RefCell<bool>>,
}
impl Process for BackoutDriver {
    fn on_start(&mut self, ctx: &mut encompass_sim::Ctx<'_>) {
        self.rpc.call_persistent(
            ctx,
            Target::Named(self.node, "$BACKOUT".into()),
            BackoutMsg::Backout {
                transid: self.transid,
                volumes: vec![VolumeRef::new(self.node, "$DATA")],
                audit_services: vec!["$AUDIT".into()],
            },
            SimDuration::from_millis(100),
            0,
        );
    }
    fn on_message(&mut self, ctx: &mut encompass_sim::Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(c) = self.rpc.accept(ctx, payload) {
            assert_eq!(c.body, BackoutReply::Done);
            *self.done.borrow_mut() = true;
        }
    }
    fn on_timer(&mut self, ctx: &mut encompass_sim::Ctx<'_>, _t: encompass_sim::TimerId, tag: u64) {
        let _ = matches!(self.rpc.on_timer(ctx, tag), TimerOutcome::Resent);
    }
}

#[test]
fn backout_restores_before_images_via_audit_trail() {
    let (mut w, n, target) = setup(RecoveryMode::NonStopCheckpoint);
    spawn_backout_process(&mut w, n, 0, 1);
    // committed base value
    let t1 = txn(1);
    let _ = run_script(
        &mut w,
        n,
        0,
        target.clone(),
        vec![
            DiscRequest::Insert {
                file: "accounts".into(),
                key: b("acct"),
                value: b("100"),
                transid: Some(t1),
                lock_wait: WAIT,
            },
            DiscRequest::EndPhase1 { transid: t1 },
            DiscRequest::ReleaseLocks { transid: t1, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    // t2 updates then is backed out
    let t2 = txn(2);
    let _ = run_script(
        &mut w,
        n,
        1,
        target.clone(),
        vec![
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("acct"),
                transid: t2,
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("acct"),
                value: b("999"),
                transid: Some(t2),
            },
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    let done = Rc::new(RefCell::new(false));
    w.spawn(
        n,
        2,
        Box::new(BackoutDriver {
            node: n,
            transid: t2,
            rpc: Rpc::new(7),
            done: done.clone(),
        }),
    );
    w.run_for(SimDuration::from_secs(2));
    assert!(*done.borrow(), "backout completed");
    // after lock release, the committed value is visible again
    let r = run_script(
        &mut w,
        n,
        3,
        target,
        vec![
            DiscRequest::ReleaseLocks { transid: t2, commit: false },
            DiscRequest::Read {
                file: "accounts".into(),
                key: b("acct"),
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(r.borrow()[1], DiscReply::Value(Some(b("100"))));
}

#[test]
fn archive_crash_rollforward_cycle() {
    let (mut w, n, target) = setup(RecoveryMode::NonStopCheckpoint);
    // committed transaction before the archive
    let t1 = txn(1);
    let mut script = write_workload(t1);
    script.push(DiscRequest::Archive { generation: 1 });
    let _ = run_script(&mut w, n, 0, target.clone(), script);
    w.run_for(SimDuration::from_secs(2));
    // record commit outcomes in the monitor trail (normally the TMP's job)
    let now = w.now();
    MonitorTrail::of(w.stable_mut(), n).record(t1, true, now);

    // post-archive: t2 commits, t3 updates but never commits
    let t2 = txn(2);
    let _ = run_script(
        &mut w,
        n,
        1,
        target.clone(),
        vec![
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("a"),
                transid: t2,
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("a"),
                value: b("42"),
                transid: Some(t2),
            },
            DiscRequest::EndPhase1 { transid: t2 },
            DiscRequest::ReleaseLocks { transid: t2, commit: true },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    let now = w.now();
    MonitorTrail::of(w.stable_mut(), n).record(t2, true, now);
    let t3 = txn(3);
    let _ = run_script(
        &mut w,
        n,
        2,
        target,
        vec![
            DiscRequest::ReadLock {
                file: "accounts".into(),
                key: b("b"),
                transid: t3,
                lock_wait: WAIT,
                mode: LockMode::Exclusive,
            },
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("b"),
                value: b("dirty"),
                transid: Some(t3),
            },
            // t3's images must reach the trail for rollforward to see them
            DiscRequest::EndPhase1 { transid: t3 },
        ],
    );
    w.run_for(SimDuration::from_secs(2));

    // total node failure: both DISCPROCESS CPUs die, volume content lost
    w.inject(Fault::KillCpu(n, CpuId(0)));
    w.inject(Fault::KillCpu(n, CpuId(1)));
    w.run_for(SimDuration::from_millis(100));
    {
        let media = w
            .stable_mut()
            .get_mut::<VolumeMedia>(&media_key(n, "$DATA"))
            .unwrap();
        media.fail_drive(0);
        media.fail_drive(1);
        media.revive_drive(0);
        media.revive_drive(1);
        assert!(!media.available());
    }

    let vol = VolumeRef::new(n, "$DATA");
    let report = rollforward_volume(&mut w, &vol, &[trail_key(n, "$AUDIT")], 1);
    assert!(report.redone >= 1, "t2's post-archive update redone: {report:?}");
    assert!(report.rolled_back_txns >= 1, "t3 rolled back: {report:?}");

    let media = w.stable().get::<VolumeMedia>(&media_key(n, "$DATA")).unwrap();
    let accounts = media.file("accounts").unwrap();
    assert_eq!(accounts.read(b"a"), Some(b("42")), "committed t2 survives");
    assert_eq!(accounts.read(b"b"), Some(b("9")), "t3's dirty update undone");
}
