//! The DUMPPROCESS: a process-pair that takes **online fuzzy dumps** of
//! audited volumes.
//!
//! "TMF's approach to recovery from total node failure is based on
//! occasional archived copies of audited data base files" — and taking
//! those copies must not stop transaction processing. The DUMPPROCESS
//! copies a volume file by file in bounded pages (`DiscRequest::DumpScan`)
//! while the DISCPROCESS keeps applying updates; the copy is *fuzzy*, and
//! the DumpBegin/DumpEnd markers it brackets onto the volume's audit trail
//! are what lets ROLLFORWARD converge the image to the committed state
//! (see DESIGN.md D10 and [`crate::rollforward`]).
//!
//! Protocol per dump:
//!
//! 1. `DumpBegin` — the DISCPROCESS cuts a begin marker into the audit
//!    stream and reports the dump's audit watermark, its purge floor, and
//!    the files to copy;
//! 2. `DumpScan` per file, resuming page by page until exhausted — each
//!    page costs one disc access and sees the live state of the volume;
//! 3. the [`ArchiveImage`] is written to archive media (stable storage);
//! 4. `DumpEnd` — the end marker is *forced*, so everything buffered
//!    before it (including any dirty value a page may have caught) is
//!    durable on the trail;
//! 5. only then is the [`DumpRegistry`] updated — the record the TMP's
//!    trail-capacity manager trusts when purging.
//!
//! The pair is deliberately stateless across failures, like the
//! BACKOUTPROCESS: a takeover drops the in-flight copy and the requester's
//! safe-delivery retry restarts the dump from scratch. Duplicate begin/end
//! markers from a restarted dump are harmless — recovery filters them.

use encompass_sim::{Payload, Pid, SimDuration, World};
use encompass_storage::discprocess::{DiscReply, DiscRequest};
use encompass_storage::media::{
    archive_key, dump_registry_key, superseded_archive_keys, ArchiveImage, DumpRegistry, FileImage,
};
use encompass_storage::types::{FileOrganization, VolumeRef};
use guardian::{reply, PairApp, PairCtx, PairHandle, ReplyCache, Request, Rpc, Target};
use std::collections::{BTreeMap, HashMap};

/// Requests to the DUMPPROCESS.
#[derive(Clone, Debug)]
pub enum DumpMsg {
    /// Take an online dump of `volume` as archive `generation`.
    DumpVolume { volume: VolumeRef, generation: u64 },
}

/// Reply from the DUMPPROCESS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DumpReply {
    /// Archive and registry are durable; the trail may now be purged below
    /// `purge_floor`.
    Done {
        watermark: u64,
        purge_floor: u64,
        records: u64,
    },
    /// The volume was unavailable; retry once it is back.
    Failed,
}

/// One dump being taken (primary-memory only; reconstructible).
struct Job {
    req_id: u64,
    from: Pid,
    volume: VolumeRef,
    generation: u64,
    watermark: u64,
    purge_floor: u64,
    /// Files still to copy, in deterministic (sorted) order; `current`
    /// indexes the one being paged.
    file_list: Vec<(String, FileOrganization)>,
    current: usize,
    /// Key to resume the current file's scan after.
    resume: Option<bytes::Bytes>,
    files: BTreeMap<String, FileImage>,
    records: u64,
}

/// The DUMPPROCESS application.
pub struct DumpProcess {
    service: String,
    disc_rpc: Rpc<DiscRequest, DiscReply>,
    /// In-flight dumps, keyed by originating request id.
    jobs: HashMap<u64, Job>,
    /// disc-rpc id → job request id.
    waits: HashMap<u64, u64>,
    replies: ReplyCache<DumpReply>,
    /// Archive generations retained per volume; older generations are
    /// deleted once the registry update supersedes them.
    archive_retain: u64,
}

impl DumpProcess {
    pub fn new(service: &str) -> DumpProcess {
        DumpProcess::with_retain(service, 2)
    }

    pub fn with_retain(service: &str, archive_retain: u64) -> DumpProcess {
        DumpProcess {
            service: service.to_string(),
            disc_rpc: Rpc::new(1),
            jobs: HashMap::new(),
            waits: HashMap::new(),
            replies: ReplyCache::new(4096),
            archive_retain: archive_retain.max(1),
        }
    }

    fn send_disc(&mut self, ctx: &mut PairCtx<'_, '_>, job_id: u64, req: DiscRequest) {
        let Some(job) = self.jobs.get(&job_id) else {
            return;
        };
        let target = Target::Named(job.volume.node, job.volume.service_name());
        let rpc_id =
            self.disc_rpc
                .call_persistent(ctx, target, req, SimDuration::from_millis(50), 0);
        self.waits.insert(rpc_id, job_id);
    }

    /// Request the next page, or move to archiving + DumpEnd when every
    /// file is copied.
    fn advance(&mut self, ctx: &mut PairCtx<'_, '_>, job_id: u64) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        if let Some((file, _)) = job.file_list.get(job.current).cloned() {
            let req = DiscRequest::DumpScan {
                generation: job.generation,
                file,
                resume: job.resume.clone(),
                limit: usize::MAX, // DISCPROCESS clamps to its page size
            };
            self.send_disc(ctx, job_id, req);
            return;
        }
        // every file copied: write the archive image, then cut the forced
        // end marker — the registry is only updated once that marker (and
        // with it every image the copy may have caught) is durable
        let akey = archive_key(&job.volume, job.generation);
        let snapshot = ArchiveImage {
            volume: job.volume.clone(),
            files: std::mem::take(&mut job.files),
            audit_watermark: job.watermark,
            purge_floor: job.purge_floor,
            generation: job.generation,
        };
        let generation = job.generation;
        ctx.stable().remove(&akey);
        ctx.stable()
            .get_or_create::<ArchiveImage, _>(&akey, move || snapshot);
        ctx.count("dump.archives", 1);
        self.send_disc(ctx, job_id, DiscRequest::DumpEnd { generation });
    }

    fn finish(&mut self, ctx: &mut PairCtx<'_, '_>, job_id: u64, r: DumpReply) {
        let Some(job) = self.jobs.remove(&job_id) else {
            return;
        };
        self.replies.store(job.req_id, r.clone());
        reply(ctx, job.req_id, job.from, r);
    }

    fn on_disc_reply(&mut self, ctx: &mut PairCtx<'_, '_>, rpc_id: u64, body: DiscReply) {
        let Some(job_id) = self.waits.remove(&rpc_id) else {
            return;
        };
        match body {
            DiscReply::DumpBegun {
                watermark,
                purge_floor,
                files,
            } => {
                let Some(job) = self.jobs.get_mut(&job_id) else {
                    return;
                };
                job.watermark = watermark;
                job.purge_floor = purge_floor;
                for (name, org) in &files {
                    job.files.insert(name.clone(), FileImage::new(*org));
                }
                job.file_list = files;
                job.current = 0;
                job.resume = None;
                self.advance(ctx, job_id);
            }
            DiscReply::DumpPage { entries, done } => {
                let Some(job) = self.jobs.get_mut(&job_id) else {
                    return;
                };
                job.records += entries.len() as u64;
                ctx.count("dump.records", entries.len() as u64);
                if let Some((file, _)) = job.file_list.get(job.current) {
                    let image = job.files.get_mut(file).expect("inserted at DumpBegun");
                    for (k, v) in &entries {
                        image.apply(k, Some(v.clone()));
                    }
                }
                job.resume = entries.last().map(|(k, _)| k.clone()).or(job.resume.take());
                if done {
                    job.current += 1;
                    job.resume = None;
                }
                self.advance(ctx, job_id);
            }
            DiscReply::Ok => {
                // DumpEnd acknowledged: register the completed dump
                let Some(job) = self.jobs.get(&job_id) else {
                    return;
                };
                let entry = DumpRegistry {
                    generation: job.generation,
                    watermark: job.watermark,
                    purge_floor: job.purge_floor,
                };
                let rkey = dump_registry_key(&job.volume);
                let current = ctx.stable().get::<DumpRegistry>(&rkey).copied();
                // never let a stale retried dump roll the registry back
                if current.is_none_or(|c| c.generation <= entry.generation) {
                    ctx.stable().remove(&rkey);
                    ctx.stable().get_or_create::<DumpRegistry, _>(&rkey, move || entry);
                    // the registry update above made this generation
                    // authoritative; archives older than the retention
                    // window can never again be the newest usable one
                    let mut deleted = 0u64;
                    for key in
                        superseded_archive_keys(&job.volume, job.generation, self.archive_retain)
                    {
                        if ctx.stable().get::<ArchiveImage>(&key).is_some() {
                            ctx.stable().remove(&key);
                            deleted += 1;
                        }
                    }
                    if deleted > 0 {
                        ctx.count("dump.archives_deleted", deleted);
                    }
                }
                ctx.count("dump.completed", 1);
                let done = DumpReply::Done {
                    watermark: job.watermark,
                    purge_floor: job.purge_floor,
                    records: job.records,
                };
                self.finish(ctx, job_id, done);
            }
            DiscReply::Err(_) => {
                // volume down mid-dump: abandon; the operator retries later
                ctx.count("dump.failed", 1);
                self.finish(ctx, job_id, DumpReply::Failed);
            }
            _ => {}
        }
    }
}

impl PairApp for DumpProcess {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn kind(&self) -> &'static str {
        "dumpprocess"
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
        let payload = match self.disc_rpc.accept(ctx, payload) {
            Ok(c) => {
                self.on_disc_reply(ctx, c.id, c.body);
                return;
            }
            Err(p) => p,
        };
        if !payload.is::<Request<DumpMsg>>() {
            return;
        }
        let req = payload.expect::<Request<DumpMsg>>();
        if let Some(cached) = self.replies.check(req.id) {
            reply(ctx, req.id, req.from, cached);
            return;
        }
        if self.jobs.contains_key(&req.id) {
            return; // retransmission of an in-flight dump
        }
        let DumpMsg::DumpVolume { volume, generation } = req.body;
        ctx.count("dump.requests", 1);
        self.jobs.insert(
            req.id,
            Job {
                req_id: req.id,
                from: req.from,
                volume,
                generation,
                watermark: 0,
                purge_floor: 1,
                file_list: Vec::new(),
                current: 0,
                resume: None,
                files: BTreeMap::new(),
                records: 0,
            },
        );
        self.send_disc(ctx, req.id, DiscRequest::DumpBegin { generation });
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        let _ = self.disc_rpc.on_timer(ctx, tag);
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        // the copy in progress died with the primary; the requester's
        // safe-delivery retry restarts the dump from DumpBegin
        self.jobs.clear();
        self.waits.clear();
        ctx.count("dump.takeovers", 1);
    }

    fn apply_checkpoint(&mut self, _delta: Payload) {
        // stateless by design: nothing to mirror
    }

    fn snapshot(&self) -> Payload {
        Payload::new(())
    }

    fn restore(&mut self, _snapshot: Payload) {}
}

/// Spawn a DUMPPROCESS pair named `$DUMP` on `node`, retaining the last
/// `archive_retain` (clamped to at least 1) archive generations per
/// volume.
pub fn spawn_dump_process(
    world: &mut World,
    node: encompass_sim::NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
    archive_retain: u64,
) -> PairHandle {
    guardian::spawn_pair(world, node, cpu_primary, cpu_backup, move || {
        DumpProcess::with_retain("$DUMP", archive_retain)
    })
}
