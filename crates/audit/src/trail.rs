//! Audit-trail media: "an audit trail is a numbered sequence of disc files
//! whose volume of residence is configurable and whose creation and purging
//! is managed by TMF".
//!
//! The media object lives in stable storage (it survives processor
//! failures, like any disc). Only *forced* records appear here; buffered
//! records live in the AUDITPROCESS pair's memory.

use encompass_sim::NodeId;
use encompass_storage::audit_api::ImageRecord;
use encompass_storage::types::{Transid, VolumeRef};

/// Stable-storage key of an audit trail owned by audit service `service`
/// on `node`.
pub fn trail_key(node: NodeId, service: &str) -> String {
    format!("{node}.{service}:trail")
}

/// Stable-storage key of partition `partition` of a partitioned audit
/// trail. Partition 0 is the legacy single trail — same key as
/// [`trail_key`] — so unpartitioned configurations keep their historical
/// stable-storage layout (and trace hashes) byte for byte.
pub fn partition_trail_key(node: NodeId, service: &str, partition: usize) -> String {
    if partition == 0 {
        trail_key(node, service)
    } else {
        format!("{node}.{service}:trail.p{partition}")
    }
}

/// One file in the numbered sequence.
#[derive(Clone, Debug, Default)]
pub struct TrailFile {
    pub number: u64,
    pub records: Vec<ImageRecord>,
}

/// The persistent audit trail.
pub struct TrailMedia {
    pub files: Vec<TrailFile>,
    /// Records per file before rotating to a new file.
    pub rotate_every: usize,
    /// Physical force operations performed (each models one disc write).
    pub forces: u64,
    /// Highest audit sequence number ever dropped by [`purge_below`]
    /// (0 = nothing purged). ROLLFORWARD compares this against an
    /// archive's `purge_floor` to fail loudly instead of silently
    /// replaying an incomplete trail.
    ///
    /// [`purge_below`]: TrailMedia::purge_below
    pub purged_through: u64,
    next_file_number: u64,
}

impl TrailMedia {
    pub fn new(rotate_every: usize) -> TrailMedia {
        TrailMedia {
            files: vec![TrailFile {
                number: 0,
                records: Vec::new(),
            }],
            rotate_every: rotate_every.max(1),
            forces: 0,
            purged_through: 0,
            next_file_number: 1,
        }
    }

    /// Total records on the trail.
    pub fn len(&self) -> usize {
        self.files.iter().map(|f| f.records.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a batch of records as one physical force.
    pub fn force(&mut self, records: Vec<ImageRecord>) {
        if records.is_empty() {
            return;
        }
        self.forces += 1;
        for rec in records {
            if self.files.last().expect("at least one file").records.len() >= self.rotate_every {
                self.files.push(TrailFile {
                    number: self.next_file_number,
                    records: Vec::new(),
                });
                self.next_file_number += 1;
            }
            self.files.last_mut().expect("just ensured").records.push(rec);
        }
    }

    /// All records of one transaction, in ascending sequence order.
    pub fn txn_images(&self, transid: Transid) -> Vec<ImageRecord> {
        let mut out: Vec<ImageRecord> = self
            .files
            .iter()
            .flat_map(|f| f.records.iter())
            .filter(|r| r.transid == transid)
            .cloned()
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// All records touching one volume, ascending by sequence.
    pub fn volume_images(&self, volume: &VolumeRef) -> Vec<ImageRecord> {
        let mut out: Vec<ImageRecord> = self
            .files
            .iter()
            .flat_map(|f| f.records.iter())
            .filter(|r| &r.volume == volume)
            .cloned()
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Drop trail files whose records are all below `seq` (safe once every
    /// image at or above `seq` covers everything a backout or rollforward
    /// could still need — see the capacity manager in `encompass-core`).
    ///
    /// Returns the number of files dropped. Empty files are dropped too,
    /// except the current tail file (the one new records append to); if
    /// every file is purged, a fresh empty file is created so the trail
    /// remains appendable.
    pub fn purge_below(&mut self, seq: u64) -> usize {
        let tail = self.files.last().map(|f| f.number);
        let mut dropped = 0usize;
        let mut purged_through = self.purged_through;
        self.files.retain(|f| {
            let keep = if f.records.is_empty() {
                // only the current tail may stay empty; older empty files
                // are stale leftovers and get purged
                Some(f.number) == tail
            } else {
                f.records.iter().any(|r| r.seq >= seq)
            };
            if !keep {
                dropped += 1;
                if let Some(hi) = f.records.iter().map(|r| r.seq).max() {
                    purged_through = purged_through.max(hi);
                }
            }
            keep
        });
        self.purged_through = purged_through;
        if self.files.is_empty() {
            self.files.push(TrailFile {
                number: self.next_file_number,
                records: Vec::new(),
            });
            self.next_file_number += 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use encompass_storage::types::FileOrganization;

    fn img(seq: u64, txn: u64, vol: &str) -> ImageRecord {
        ImageRecord {
            seq,
            transid: Transid {
                home_node: NodeId(0),
                cpu: 0,
                seq: txn,
            },
            volume: VolumeRef::new(NodeId(0), vol),
            file: "f".into(),
            organization: FileOrganization::KeySequenced,
            key: Bytes::from(format!("k{seq}")),
            before: None,
            after: Some(Bytes::from_static(b"v")),
        }
    }

    #[test]
    fn force_appends_and_rotates() {
        let mut t = TrailMedia::new(3);
        t.force(vec![img(1, 1, "$D"), img(2, 1, "$D")]);
        t.force(vec![img(3, 2, "$D"), img(4, 2, "$D")]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.forces, 2);
        assert_eq!(t.files.len(), 2, "rotated after 3 records");
        assert_eq!(t.files[1].number, 1);
        // empty force is free
        t.force(Vec::new());
        assert_eq!(t.forces, 2);
    }

    #[test]
    fn txn_and_volume_queries() {
        let mut t = TrailMedia::new(100);
        t.force(vec![img(2, 1, "$A"), img(1, 1, "$B"), img(3, 2, "$A")]);
        let txn1 = Transid {
            home_node: NodeId(0),
            cpu: 0,
            seq: 1,
        };
        let got = t.txn_images(txn1);
        assert_eq!(got.len(), 2);
        assert!(got[0].seq < got[1].seq, "ascending");
        assert_eq!(t.volume_images(&VolumeRef::new(NodeId(0), "$A")).len(), 2);
    }

    #[test]
    fn purge_drops_old_files() {
        let mut t = TrailMedia::new(2);
        t.force((1..=6).map(|i| img(i, 1, "$D")).collect());
        assert_eq!(t.files.len(), 3);
        let dropped = t.purge_below(5);
        assert_eq!(dropped, 2);
        assert_eq!(t.purged_through, 4);
        assert_eq!(t.txn_images(Transid { home_node: NodeId(0), cpu: 0, seq: 1 }).len(), 2);
        // purging everything drops the last data file (counted!) and
        // leaves one fresh empty file
        let dropped = t.purge_below(100);
        assert_eq!(dropped, 1);
        assert_eq!(t.purged_through, 6);
        assert_eq!(t.len(), 0);
        assert_eq!(t.files.len(), 1);
        // idempotent: the fresh tail file is not repeatedly churned
        assert_eq!(t.purge_below(100), 0);
        assert_eq!(t.files.len(), 1);
    }

    #[test]
    fn partition_zero_key_is_the_legacy_key() {
        let n = NodeId(2);
        assert_eq!(partition_trail_key(n, "$AUDIT", 0), trail_key(n, "$AUDIT"));
        assert_eq!(partition_trail_key(n, "$AUDIT", 1), "\\N2.$AUDIT:trail.p1");
        assert_ne!(
            partition_trail_key(n, "$AUDIT", 1),
            partition_trail_key(n, "$AUDIT", 2)
        );
    }

    #[test]
    fn force_rotating_mid_batch_keeps_order_and_purges_safely() {
        // one force whose batch spans a rotation boundary: records 1..=5
        // with rotate_every=2 land as files [1,2][3,4][5]
        let mut t = TrailMedia::new(2);
        t.force(vec![img(1, 1, "$D")]);
        // the second force starts mid-file and rotates twice while writing
        t.force(vec![img(2, 1, "$D"), img(3, 2, "$D"), img(4, 2, "$D"), img(5, 3, "$D")]);
        assert_eq!(t.forces, 2, "one physical write per batch, rotation or not");
        assert_eq!(t.files.len(), 3);
        assert_eq!(
            t.files.iter().map(|f| f.records.len()).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        // queries see ascending sequence order across the file boundary
        let txn2 = Transid { home_node: NodeId(0), cpu: 0, seq: 2 };
        let got = t.txn_images(txn2);
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        let vol = t.volume_images(&VolumeRef::new(NodeId(0), "$D"));
        assert_eq!(vol.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        // purging below 4 may only drop the first file: the second holds
        // seq 4 even though it also holds seq 3
        assert_eq!(t.purge_below(4), 1);
        assert_eq!(t.purged_through, 2);
        let vol = t.volume_images(&VolumeRef::new(NodeId(0), "$D"));
        assert_eq!(vol.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn purge_drops_stale_empty_files() {
        let mut t = TrailMedia::new(2);
        t.force((1..=4).map(|i| img(i, 1, "$D")).collect());
        // fabricate a stale empty file in the middle (e.g. left over from
        // an older purge implementation)
        t.files.insert(
            1,
            TrailFile {
                number: 99,
                records: Vec::new(),
            },
        );
        assert_eq!(t.files.len(), 3);
        // nothing is below seq 1, but the stale empty file still goes
        assert_eq!(t.purge_below(1), 1);
        assert_eq!(t.files.len(), 2);
        assert_eq!(t.len(), 4);
        assert_eq!(t.purged_through, 0, "no records were dropped");
    }
}
