//! The Monitor Audit Trail: the per-node history of transaction completion
//! statuses (commits and aborts).
//!
//! "A transaction commits at the time its commit record is written to the
//! Monitor Audit Trail." The TMP owns this trail and *forces* every
//! completion record — that single forced write is the commit point of the
//! whole (possibly distributed) transaction, which is why ROLLFORWARD can
//! resolve in-doubt transactions by consulting the home node's monitor
//! trail.

use encompass_sim::{NodeId, SimTime, StableStorage};
use encompass_storage::types::Transid;

/// Stable-storage key of a node's monitor audit trail.
pub fn monitor_key(node: NodeId) -> String {
    format!("{node}:monitor-trail")
}

/// One completion record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletionRecord {
    pub transid: Transid,
    pub committed: bool,
    pub at: SimTime,
}

/// The persistent monitor trail of one node.
#[derive(Default)]
pub struct MonitorTrail {
    pub records: Vec<CompletionRecord>,
    /// Every record is a forced write.
    pub forces: u64,
}

impl MonitorTrail {
    pub fn new() -> MonitorTrail {
        MonitorTrail::default()
    }

    /// Fetch (creating if needed) the trail of `node`.
    pub fn of(stable: &mut StableStorage, node: NodeId) -> &mut MonitorTrail {
        stable.get_or_create::<MonitorTrail, _>(&monitor_key(node), MonitorTrail::new)
    }

    /// Write a completion record (the commit point when `committed`).
    pub fn record(&mut self, transid: Transid, committed: bool, at: SimTime) {
        // idempotent against TMP retries: the first disposition stands
        if self.outcome(transid).is_none() {
            self.records.push(CompletionRecord {
                transid,
                committed,
                at,
            });
            self.forces += 1;
        }
    }

    /// Write a boxcar of completion records under a *single* physical
    /// force — the group-commit path. Every record in the batch becomes
    /// durable (and, for commits, committed) at the same instant; the
    /// write is still "force at phase one", there is just one of it.
    /// Returns how many records were new (retries are skipped, as in
    /// [`MonitorTrail::record`]). A fully-duplicate batch costs no force.
    pub fn record_group(&mut self, batch: &[(Transid, bool)], at: SimTime) -> usize {
        let mut written = 0;
        for &(transid, committed) in batch {
            if self.outcome(transid).is_none() {
                self.records.push(CompletionRecord {
                    transid,
                    committed,
                    at,
                });
                written += 1;
            }
        }
        if written > 0 {
            self.forces += 1;
        }
        written
    }

    /// The recorded outcome of a transaction, if it completed.
    pub fn outcome(&self, transid: Transid) -> Option<bool> {
        self.records
            .iter()
            .find(|r| r.transid == transid)
            .map(|r| r.committed)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of commit records (experiments).
    pub fn commits(&self) -> usize {
        self.records.iter().filter(|r| r.committed).count()
    }

    /// Count of abort records.
    pub fn aborts(&self) -> usize {
        self.records.iter().filter(|r| !r.committed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64) -> Transid {
        Transid {
            home_node: NodeId(1),
            cpu: 0,
            seq,
        }
    }

    #[test]
    fn records_and_outcomes() {
        let mut m = MonitorTrail::new();
        m.record(t(1), true, SimTime::from_micros(10));
        m.record(t(2), false, SimTime::from_micros(20));
        assert_eq!(m.outcome(t(1)), Some(true));
        assert_eq!(m.outcome(t(2)), Some(false));
        assert_eq!(m.outcome(t(3)), None);
        assert_eq!(m.commits(), 1);
        assert_eq!(m.aborts(), 1);
        assert_eq!(m.forces, 2);
    }

    #[test]
    fn first_disposition_is_final() {
        let mut m = MonitorTrail::new();
        m.record(t(1), true, SimTime::from_micros(10));
        // a retried (or conflicting) record cannot change the outcome
        m.record(t(1), false, SimTime::from_micros(30));
        assert_eq!(m.outcome(t(1)), Some(true));
        assert_eq!(m.len(), 1);
        assert_eq!(m.forces, 1);
    }

    #[test]
    fn group_record_is_one_force() {
        let mut m = MonitorTrail::new();
        let written = m.record_group(&[(t(1), true), (t(2), true), (t(3), false)], SimTime::ZERO);
        assert_eq!(written, 3);
        assert_eq!(m.forces, 1);
        assert_eq!(m.commits(), 2);
        assert_eq!(m.aborts(), 1);
        // a retried batch is absorbed without another force
        let written = m.record_group(&[(t(1), true), (t(2), true)], SimTime::from_micros(5));
        assert_eq!(written, 0);
        assert_eq!(m.forces, 1);
        // and a conflicting retry cannot flip an outcome
        m.record_group(&[(t(3), true)], SimTime::from_micros(6));
        assert_eq!(m.outcome(t(3)), Some(false));
    }

    #[test]
    fn lives_in_stable_storage() {
        let mut stable = StableStorage::new();
        MonitorTrail::of(&mut stable, NodeId(3)).record(t(9), true, SimTime::ZERO);
        assert_eq!(
            MonitorTrail::of(&mut stable, NodeId(3)).outcome(t(9)),
            Some(true)
        );
        assert!(stable.contains(&monitor_key(NodeId(3))));
    }
}
