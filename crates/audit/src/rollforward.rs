//! ROLLFORWARD: recovery from total node failure.
//!
//! "TMF's approach to recovery from total node failure is based on
//! occasional archived copies of audited data base files, plus an archive
//! of all audit trails written since the data base files were archived.
//! … TMF reconstructs any files open at the time of a total node failure
//! by using the after-images from the audit trail to reapply the updates
//! of committed transactions. ROLLFORWARD negotiates with other nodes of
//! the network about transactions which were in 'ending' state at the time
//! of the node failure."
//!
//! This is an offline utility run by the operator (the experiment driver):
//! it reads the archive and trail media directly from stable storage, and
//! resolves each transaction's outcome against the **home node's monitor
//! audit trail** — the "negotiation with other nodes" — since the commit
//! record there is the commit point.
//!
//! The algorithm is idempotent because images carry absolute values:
//!
//! 1. restore the volume's files from the archive;
//! 2. REDO: apply the after-images of every *committed* transaction whose
//!    sequence is **above the archive's audit watermark**, in ascending
//!    audit-sequence order;
//! 3. UNDO: apply the before-images of every *non-committed* transaction
//!    (aborted, or still in flight at the failure), in descending order —
//!    **except** where a committed write with a higher sequence touched
//!    the same record. Record locks serialize writers per record, so on
//!    the live volume BACKOUT restored the loser's before-image *before*
//!    the later transaction could lock the record; replaying that
//!    before-image after REDO would clobber the committed value.
//!
//! Record locks serialize writers per key, so this reconstructs exactly
//! the committed state.
//!
//! # Fuzzy ONLINEDUMP archives
//!
//! An archive produced by the DUMPPROCESS was copied page by page *while
//! transactions kept updating* (see DESIGN.md D10), so its image is fuzzy:
//!
//! * every write with `seq <= audit_watermark` is fully reflected (the
//!   watermark is taken when the DumpBegin marker is cut, before any page
//!   is read, and in the WAL design it is clamped below any assigned-but-
//!   unapplied sequence);
//! * a write above the watermark may or may not be in the image, depending
//!   on whether its page was copied before or after the update.
//!
//! REDO therefore starts *above* the watermark — images carry absolute
//! values, so reapplying an update the page already caught is a no-op.
//! UNDO replays all surviving loser before-images: a loser undone on the
//! live volume before the dump began replays idempotently (or is
//! superseded by a later committed write), and a loser whose dirty value
//! the page caught is exactly what the replay repairs. The archive's
//! `purge_floor` proves which trail prefix is dispensable; a trail that
//! purged at or above that floor may have dropped records recovery still
//! needs, so this utility fails loudly rather than silently reconstructing
//! a wrong state. ONLINEDUMP marker records are bookkeeping, not data,
//! and are filtered out before replay.

use crate::monitor::MonitorTrail;
use crate::trail::TrailMedia;
use encompass_sim::World;
use encompass_storage::audit_api::ImageRecord;
use encompass_storage::media::{archive_key, media_key, VolumeMedia};
use encompass_storage::types::{Transid, VolumeRef};
use std::collections::HashMap;

/// What a ROLLFORWARD run did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RollforwardReport {
    /// After-images reapplied (committed transactions).
    pub redone: usize,
    /// Before-images applied (non-committed transactions).
    pub undone: usize,
    /// Loser before-images skipped because a committed write with a higher
    /// audit sequence already rewrote the record.
    pub superseded: usize,
    /// Distinct committed transactions seen on the trails.
    pub committed_txns: usize,
    /// Distinct non-committed transactions rolled back.
    pub rolled_back_txns: usize,
    /// Records in the recovered volume, per file.
    pub file_sizes: Vec<(String, usize)>,
}

/// Recover `volume` from archive `generation` plus the audit trails whose
/// stable-storage keys are given (see [`crate::trail::trail_key`]).
///
/// Panics if the archive is missing — recovery without an archive is
/// impossible, which is an operator error worth failing loudly on.
pub fn rollforward_volume(
    world: &mut World,
    volume: &VolumeRef,
    trail_keys: &[String],
    generation: u64,
) -> RollforwardReport {
    // 1. the archived copy
    let akey = archive_key(volume, generation);
    let archive = world
        .stable()
        .get::<encompass_storage::media::ArchiveImage>(&akey)
        .unwrap_or_else(|| panic!("no archive {akey} — cannot roll forward"))
        .clone();
    let watermark = archive.audit_watermark;
    let floor = archive.purge_floor;

    // 2. gather this volume's images from the trails. Only trails on the
    // volume's own node can hold its images (each DISCPROCESS audits to an
    // AUDITPROCESS on its node); for those, the capacity manager must not
    // have purged any record recovery still needs — every sequence at or
    // above the archive's purge floor.
    let node_prefix = format!("{}.", volume.node);
    let mut images: Vec<ImageRecord> = Vec::new();
    for tk in trail_keys {
        if let Some(trail) = world.stable().get::<TrailMedia>(tk) {
            if tk.starts_with(&node_prefix) && trail.purged_through >= floor {
                panic!(
                    "trail {tk} purged through seq {} but archive {akey} needs \
                     every record from seq {floor} — cannot roll forward",
                    trail.purged_through
                );
            }
            images.extend(trail.volume_images(volume));
        }
    }
    // ONLINEDUMP begin/end markers are trail bookkeeping, not data images
    images.retain(|r| !r.is_dump_marker());
    images.sort_by_key(|r| r.seq);

    // 3. resolve outcomes against the home nodes' monitor trails
    let mut outcomes: HashMap<Transid, bool> = HashMap::new();
    for img in &images {
        let t = img.transid;
        if let std::collections::hash_map::Entry::Vacant(e) = outcomes.entry(t) {
            let committed = MonitorTrail::of(world.stable_mut(), t.home_node)
                .outcome(t)
                .unwrap_or(false); // no completion record ⇒ never committed
            e.insert(committed);
        }
    }

    // 4. rebuild
    let mut files = archive.files.clone();
    let mut report = RollforwardReport::default();
    let mut committed_seen: HashMap<Transid, ()> = HashMap::new();
    let mut rolled_seen: HashMap<Transid, ()> = HashMap::new();
    // REDO committed, ascending; remember the newest committed sequence
    // per record for the UNDO pass below. The committed-high map covers
    // *all* committed images — including those at or below the watermark,
    // whose values the fuzzy image already holds — because a loser's undo
    // is superseded by any later committed write, replayed or not.
    let mut committed_high: HashMap<(&str, &bytes::Bytes), u64> = HashMap::new();
    for img in &images {
        if outcomes[&img.transid] {
            committed_seen.insert(img.transid, ());
            committed_high.insert((img.file.as_str(), &img.key), img.seq);
            if img.seq <= watermark {
                // applied to the volume before the dump began reading
                // pages, so the archive image already reflects this write
                continue;
            }
            files
                .entry(img.file.clone())
                .or_insert_with(|| encompass_storage::media::FileImage::new(img.organization))
                .apply(&img.key, img.after.clone());
            report.redone += 1;
        }
    }
    // UNDO non-committed, descending. Record locks serialize writers per
    // record, so BACKOUT restored a loser's before-image on the live volume
    // *before* any later committed transaction could lock the record: a
    // before-image with a committed write at a higher sequence on the same
    // record is already compensated, and replaying it here would clobber
    // the committed value.
    for img in images.iter().rev() {
        if !outcomes[&img.transid] {
            rolled_seen.insert(img.transid, ());
            if committed_high
                .get(&(img.file.as_str(), &img.key))
                .is_some_and(|&s| s > img.seq)
            {
                report.superseded += 1;
                continue;
            }
            files
                .entry(img.file.clone())
                .or_insert_with(|| encompass_storage::media::FileImage::new(img.organization))
                .apply(&img.key, img.before.clone());
            report.undone += 1;
        }
    }
    report.committed_txns = committed_seen.len();
    report.rolled_back_txns = rolled_seen.len();

    // 5. install the rebuilt files on the volume media
    let mkey = media_key(volume.node, &volume.volume);
    let vname = volume.volume.clone();
    let media = world
        .stable_mut()
        .get_or_create::<VolumeMedia, _>(&mkey, move || VolumeMedia::new(&vname));
    media.files = files;
    media.mark_recovered();
    report.file_sizes = media
        .files
        .iter()
        .map(|(name, img)| (name.clone(), img.len()))
        .collect();
    world.metrics_mut().inc("rollforward.runs");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use encompass_sim::{NodeId, SimConfig, SimTime};
    use encompass_storage::media::ArchiveImage;
    use encompass_storage::types::FileOrganization;

    fn t(seq: u64) -> Transid {
        Transid {
            home_node: NodeId(0),
            cpu: 0,
            seq,
        }
    }

    fn img(
        seq: u64,
        txn: Transid,
        key: &str,
        before: Option<&str>,
        after: Option<&str>,
    ) -> ImageRecord {
        ImageRecord {
            seq,
            transid: txn,
            volume: VolumeRef::new(NodeId(0), "$D"),
            file: "accounts".into(),
            organization: FileOrganization::KeySequenced,
            key: Bytes::copy_from_slice(key.as_bytes()),
            before: before.map(|s| Bytes::copy_from_slice(s.as_bytes())),
            after: after.map(|s| Bytes::copy_from_slice(s.as_bytes())),
        }
    }

    /// Build a world with an archive, a trail, and monitor outcomes, then
    /// roll forward and inspect the result.
    #[test]
    fn redo_committed_undo_losers() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");

        // archive: one pre-existing record, watermark 0
        let mut archive_files = std::collections::BTreeMap::new();
        let mut f = encompass_storage::media::FileImage::new(FileOrganization::KeySequenced);
        f.apply(b"old", Some(Bytes::from_static(b"archived")));
        archive_files.insert("accounts".to_string(), f);
        let akey = archive_key(&vol, 1);
        w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, || ArchiveImage {
            volume: vol.clone(),
            files: archive_files,
            audit_watermark: 0,
            purge_floor: 1,
            generation: 1,
        });

        // trail: t1 commits (insert + update), t2 aborts (overwrote "old"),
        // t3 was in flight (inserted a record, no completion record)
        let tk = crate::trail::trail_key(n, "$AUDIT");
        let trail = w
            .stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(100));
        trail.force(vec![
            img(1, t(1), "a", None, Some("1")),
            img(2, t(2), "old", Some("archived"), Some("dirty")),
            img(3, t(1), "a", Some("1"), Some("2")),
            img(4, t(3), "ghost", None, Some("zzz")),
        ]);

        // monitor trail: t1 committed, t2 aborted, t3 has no record
        MonitorTrail::of(w.stable_mut(), n).record(t(1), true, SimTime::ZERO);
        MonitorTrail::of(w.stable_mut(), n).record(t(2), false, SimTime::ZERO);

        // simulate total loss of the volume
        let mkey = media_key(n, "$D");
        w.stable_mut()
            .get_or_create::<VolumeMedia, _>(&mkey, || VolumeMedia::new("$D"));
        let media = w.stable_mut().get_mut::<VolumeMedia>(&mkey).unwrap();
        media.fail_drive(0);
        media.fail_drive(1);
        media.revive_drive(0);
        media.revive_drive(1);
        assert!(!media.available(), "lost until recovered");

        let report = rollforward_volume(&mut w, &vol, &[tk], 1);
        assert_eq!(report.redone, 2);
        assert_eq!(report.undone, 2);
        assert_eq!(report.committed_txns, 1);
        assert_eq!(report.rolled_back_txns, 2);

        let media = w.stable().get::<VolumeMedia>(&mkey).unwrap();
        assert!(media.available());
        let accounts = media.file("accounts").unwrap();
        assert_eq!(accounts.read(b"a"), Some(Bytes::from_static(b"2")), "t1 redone");
        assert_eq!(
            accounts.read(b"old"),
            Some(Bytes::from_static(b"archived")),
            "t2 undone"
        );
        assert_eq!(accounts.read(b"ghost"), None, "t3 (in-flight) undone");
    }

    #[test]
    fn rollforward_is_idempotent() {
        // running recovery twice yields the same state
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");
        let akey = archive_key(&vol, 1);
        w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, || ArchiveImage {
            volume: vol.clone(),
            files: std::collections::BTreeMap::new(),
            audit_watermark: 0,
            purge_floor: 1,
            generation: 1,
        });
        let tk = crate::trail::trail_key(n, "$AUDIT");
        w.stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(100))
            .force(vec![img(1, t(1), "k", None, Some("v"))]);
        MonitorTrail::of(w.stable_mut(), n).record(t(1), true, SimTime::ZERO);

        let r1 = rollforward_volume(&mut w, &vol, std::slice::from_ref(&tk), 1);
        let r2 = rollforward_volume(&mut w, &vol, &[tk], 1);
        assert_eq!(r1, r2);
        let media = w
            .stable()
            .get::<VolumeMedia>(&media_key(n, "$D"))
            .unwrap();
        assert_eq!(
            media.file("accounts").unwrap().read(b"k"),
            Some(Bytes::from_static(b"v"))
        );
    }

    /// Regression: an aborted transaction's before-image must not clobber
    /// committed writes that landed on the record *after* BACKOUT undid the
    /// loser on the live volume. (Found by the chaos sweep: REDO produced
    /// the right value, then the descending UNDO pass replayed the loser's
    /// stale before-image over it.)
    #[test]
    fn superseded_loser_undo_is_skipped() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");
        let akey = archive_key(&vol, 0);
        w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, || ArchiveImage {
            volume: vol.clone(),
            files: std::collections::BTreeMap::new(),
            audit_watermark: 0,
            purge_floor: 1,
            generation: 0,
        });
        // Lock-serialized history of one record:
        //   t1 commits 1000 -> 900
        //   t2 writes 900 -> 850, aborts; BACKOUT restores 900 on the live
        //     volume before releasing the lock
        //   t3 commits 900 -> 870
        let tk = crate::trail::trail_key(n, "$AUDIT");
        w.stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(100))
            .force(vec![
                img(1, t(1), "k", Some("1000"), Some("900")),
                img(2, t(2), "k", Some("900"), Some("850")),
                img(3, t(3), "k", Some("900"), Some("870")),
            ]);
        MonitorTrail::of(w.stable_mut(), n).record(t(1), true, SimTime::ZERO);
        MonitorTrail::of(w.stable_mut(), n).record(t(2), false, SimTime::ZERO);
        MonitorTrail::of(w.stable_mut(), n).record(t(3), true, SimTime::ZERO);

        let report = rollforward_volume(&mut w, &vol, &[tk], 0);
        assert_eq!(report.redone, 2);
        assert_eq!(report.undone, 0, "loser undo superseded by t3's commit");
        assert_eq!(report.superseded, 1);
        let media = w.stable().get::<VolumeMedia>(&media_key(n, "$D")).unwrap();
        assert_eq!(
            media.file("accounts").unwrap().read(b"k"),
            Some(Bytes::from_static(b"870")),
            "committed value survives recovery"
        );
    }

    #[test]
    #[should_panic(expected = "no archive")]
    fn missing_archive_fails_loudly() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");
        let _ = rollforward_volume(&mut w, &vol, &[], 9);
    }

    /// Fuzzy ONLINEDUMP recovery: the archive was copied while
    /// transactions updated, so it holds a dirty value a loser wrote
    /// mid-dump and misses a committed write that landed after its page
    /// was read. The trail also carries the DumpBegin/DumpEnd markers,
    /// which must be filtered out, and rotates across several files.
    #[test]
    fn fuzzy_archive_recovers_committed_state() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");

        // History (audit sequence order):
        //   seq 1: t1 commits k1 1000 -> 900 before the dump
        //   seq 2: DumpBegin marker, watermark = 1
        //   seq 3: t2 writes k1 900 -> 850, later aborts; the dump page
        //          catches the dirty 850
        //   seq 4: t3 inserts k2 = 7 and commits after its page was read
        //   seq 5: DumpEnd marker
        let mut archive_files = std::collections::BTreeMap::new();
        let mut f = encompass_storage::media::FileImage::new(FileOrganization::KeySequenced);
        f.apply(b"k1", Some(Bytes::from_static(b"850"))); // dirty loser value
        archive_files.insert("accounts".to_string(), f);
        let akey = archive_key(&vol, 2);
        w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, || ArchiveImage {
            volume: vol.clone(),
            files: archive_files,
            audit_watermark: 1,
            purge_floor: 2,
            generation: 2,
        });

        let tk = crate::trail::trail_key(n, "$AUDIT");
        let trail = w
            .stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(2));
        trail.force(vec![
            img(1, t(1), "k1", Some("1000"), Some("900")),
            ImageRecord::dump_marker(2, vol.clone(), 2, false),
            img(3, t(2), "k1", Some("900"), Some("850")),
            img(4, t(3), "k2", None, Some("7")),
            ImageRecord::dump_marker(5, vol.clone(), 2, true),
        ]);
        assert!(trail.files.len() > 1, "trail rotated across files");
        MonitorTrail::of(w.stable_mut(), n).record(t(1), true, SimTime::ZERO);
        MonitorTrail::of(w.stable_mut(), n).record(t(2), false, SimTime::ZERO);
        MonitorTrail::of(w.stable_mut(), n).record(t(3), true, SimTime::ZERO);

        let report = rollforward_volume(&mut w, &vol, &[tk], 2);
        assert_eq!(report.redone, 1, "only t3's post-watermark write replays");
        assert_eq!(report.undone, 1, "t2's dirty write is repaired");
        assert_eq!(report.committed_txns, 2);
        let media = w.stable().get::<VolumeMedia>(&media_key(n, "$D")).unwrap();
        let accounts = media.file("accounts").unwrap();
        assert_eq!(accounts.read(b"k1"), Some(Bytes::from_static(b"900")));
        assert_eq!(accounts.read(b"k2"), Some(Bytes::from_static(b"7")));
        assert!(
            media
                .file(encompass_storage::audit_api::DUMP_MARKER_FILE)
                .is_none(),
            "marker records were filtered, not replayed"
        );
    }

    /// Capacity management interplay: once a dump's purge floor covers a
    /// trail prefix, purging that prefix must not break recovery from the
    /// dump — the purged records were all reflected in the archive image.
    #[test]
    fn purge_covered_by_dump_floor_recovers() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");

        // Everything committed before the dump; the fuzzy image holds the
        // final values and the floor proves seqs 1..=3 are dispensable.
        let mut archive_files = std::collections::BTreeMap::new();
        let mut f = encompass_storage::media::FileImage::new(FileOrganization::KeySequenced);
        f.apply(b"a", Some(Bytes::from_static(b"2")));
        f.apply(b"b", Some(Bytes::from_static(b"9")));
        archive_files.insert("accounts".to_string(), f);
        let akey = archive_key(&vol, 3);
        w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, || ArchiveImage {
            volume: vol.clone(),
            files: archive_files,
            audit_watermark: 3,
            purge_floor: 4,
            generation: 3,
        });

        let tk = crate::trail::trail_key(n, "$AUDIT");
        let trail = w
            .stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(2));
        trail.force(vec![
            img(1, t(1), "a", None, Some("1")),
            img(2, t(1), "a", Some("1"), Some("2")),
            img(3, t(2), "b", None, Some("9")),
        ]);
        let dropped = trail.purge_below(4);
        assert!(dropped >= 1, "old trail files purged");
        assert_eq!(trail.purged_through, 3);
        MonitorTrail::of(w.stable_mut(), n).record(t(1), true, SimTime::ZERO);
        MonitorTrail::of(w.stable_mut(), n).record(t(2), true, SimTime::ZERO);

        let report = rollforward_volume(&mut w, &vol, &[tk], 3);
        assert_eq!(report.redone, 0, "purged prefix was already in the image");
        let media = w.stable().get::<VolumeMedia>(&media_key(n, "$D")).unwrap();
        let accounts = media.file("accounts").unwrap();
        assert_eq!(accounts.read(b"a"), Some(Bytes::from_static(b"2")));
        assert_eq!(accounts.read(b"b"), Some(Bytes::from_static(b"9")));
    }

    /// A trail purged past the archive's floor may have dropped records
    /// recovery still needs: fail loudly, never reconstruct silently.
    #[test]
    #[should_panic(expected = "purged through")]
    fn purged_needed_trail_fails_loudly() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let vol = VolumeRef::new(n, "$D");
        let akey = archive_key(&vol, 0);
        w.stable_mut().get_or_create::<ArchiveImage, _>(&akey, || ArchiveImage {
            volume: vol.clone(),
            files: std::collections::BTreeMap::new(),
            audit_watermark: 0,
            purge_floor: 1,
            generation: 0,
        });
        let tk = crate::trail::trail_key(n, "$AUDIT");
        let trail = w
            .stable_mut()
            .get_or_create::<TrailMedia, _>(&tk, || TrailMedia::new(1));
        trail.force(vec![
            img(1, t(1), "a", None, Some("1")),
            img(2, t(1), "a", Some("1"), Some("2")),
        ]);
        trail.purge_below(2); // drops seq 1, which gen-0 recovery needs
        MonitorTrail::of(w.stable_mut(), n).record(t(1), true, SimTime::ZERO);
        let _ = rollforward_volume(&mut w, &vol, &[tk], 0);
    }
}
