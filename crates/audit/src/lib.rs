//! # encompass-audit
//!
//! TMF's recovery substrate, as the paper describes it:
//!
//! * **Distributed audit trails** ([`trail`]): numbered sequences of disc
//!   files holding before/after images of data-base updates. "For
//!   transactions that span data bases on multiple nodes of a network, all
//!   audit images for records residing on a particular node are contained
//!   in audit trails at that node" — each node's AUDITPROCESSes write only
//!   local trails, which is what lets backout run without network traffic.
//! * **The AUDITPROCESS** ([`auditprocess`]): a process-pair that buffers
//!   image records from the DISCPROCESSes sharing its trail and forces
//!   them to the trail media on demand — lazily in the NonStop design
//!   (group-committing concurrent force requests), eagerly per record in
//!   the Write-Ahead-Log baseline.
//! * **The Monitor Audit Trail** ([`monitor`]): the per-node history of
//!   transaction completion statuses. "A transaction commits at the time
//!   its commit record is written to the Monitor Audit Trail."
//! * **The BACKOUTPROCESS** ([`backout`]): a process-pair that backs out a
//!   transaction "using the transaction's before-images recorded in the
//!   audit trails".
//! * **The DUMPPROCESS** ([`dump`]): a process-pair that takes online
//!   *fuzzy* dumps — archived copies of audited volumes taken page by page
//!   while transactions keep updating, bracketed by DumpBegin/DumpEnd
//!   markers on the audit trail so recovery can converge the copy.
//! * **ROLLFORWARD** ([`rollforward`]): the utility that recovers a volume
//!   after total node failure from an archived copy plus the audit trails,
//!   reapplying the updates of committed transactions and consulting the
//!   (possibly remote) monitor trails for transactions that were still in
//!   "ending" state.

pub mod auditprocess;
pub mod backout;
pub mod dump;
pub mod monitor;
pub mod rollforward;
pub mod trail;

pub use auditprocess::{spawn_audit_process, AuditConfig, AuditProcess};
pub use backout::{spawn_backout_process, BackoutMsg, BackoutProcess, BackoutReply};
pub use dump::{spawn_dump_process, DumpMsg, DumpProcess, DumpReply};
pub use monitor::{monitor_key, CompletionRecord, MonitorTrail};
pub use rollforward::{rollforward_volume, RollforwardReport};
pub use trail::{trail_key, TrailFile, TrailMedia};
