//! The BACKOUTPROCESS: a process-pair that reverses a transaction's
//! data-base updates "using the transaction's before-images recorded in
//! the audit trails".
//!
//! Backout is strictly node-local: the images for records on this node are
//! in this node's trails, so no network communication is needed — exactly
//! the property the paper's distributed audit-trail placement buys.
//!
//! The process is deliberately stateless across failures: its jobs are
//! reconstructible, so a takeover simply drops them and the requesting TMP
//! retries (its Backout request is safe-delivery).

use encompass_sim::{Payload, Pid, SimDuration, World};
use encompass_storage::audit_api::{AuditMsg, AuditReply};
use encompass_storage::discprocess::{DiscReply, DiscRequest};
use encompass_storage::types::{Transid, VolumeRef};
use guardian::{reply, PairApp, PairCtx, PairHandle, ReplyCache, Request, Rpc, Target};
use std::collections::HashMap;

/// Requests to the BACKOUTPROCESS.
#[derive(Clone, Debug)]
pub enum BackoutMsg {
    /// Back out `transid` on the given local volumes, then reply `Done`.
    /// `audit_service_of[i]` is the audit service of `volumes[i]`.
    Backout {
        transid: Transid,
        volumes: Vec<VolumeRef>,
        audit_services: Vec<String>,
    },
}

/// Reply from the BACKOUTPROCESS.
#[derive(Clone, Debug, PartialEq)]
pub enum BackoutReply {
    Done,
}

struct Job {
    req_id: u64,
    from: Pid,
    outstanding: usize,
}

/// The BACKOUTPROCESS application.
pub struct BackoutProcess {
    service: String,
    audit_rpc: Rpc<AuditMsg, AuditReply>,
    disc_rpc: Rpc<DiscRequest, DiscReply>,
    jobs: HashMap<Transid, Job>,
    /// disc-rpc id → (transid, volume, audit service) awaiting the flush
    /// barrier (all of the volume's lazy appends acknowledged), without
    /// which the image read below could miss in-flight records and the
    /// undo would be partial
    flush_acks: HashMap<u64, (Transid, VolumeRef, String)>,
    /// audit-rpc id → (transid, volume) awaiting images
    image_reads: HashMap<u64, (Transid, VolumeRef)>,
    /// disc-rpc id → transid awaiting undo ack
    undo_acks: HashMap<u64, Transid>,
    replies: ReplyCache<BackoutReply>,
}

impl BackoutProcess {
    pub fn new(service: &str) -> BackoutProcess {
        BackoutProcess {
            service: service.to_string(),
            audit_rpc: Rpc::new(3),
            disc_rpc: Rpc::new(4),
            jobs: HashMap::new(),
            flush_acks: HashMap::new(),
            image_reads: HashMap::new(),
            undo_acks: HashMap::new(),
            replies: ReplyCache::new(4096),
        }
    }

    fn job_step_done(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(job) = self.jobs.get_mut(&transid) else {
            return;
        };
        job.outstanding -= 1;
        if job.outstanding == 0 {
            let job = self.jobs.remove(&transid).expect("present");
            ctx.count("backout.completed", 1);
            self.replies.store(job.req_id, BackoutReply::Done);
            reply(ctx, job.req_id, job.from, BackoutReply::Done);
        }
    }
}

impl PairApp for BackoutProcess {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn kind(&self) -> &'static str {
        "backoutprocess"
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
        // completions of our own sub-requests
        let payload = match self.audit_rpc.accept(ctx, payload) {
            Ok(c) => {
                if let Some((transid, volume)) = self.image_reads.remove(&c.id) {
                    let AuditReply::Images(images) = c.body else {
                        // protocol mismatch: treat as nothing to undo
                        self.job_step_done(ctx, transid);
                        return;
                    };
                    let local: Vec<_> = images
                        .into_iter()
                        .filter(|img| img.volume == volume)
                        .collect();
                    ctx.count("backout.images", local.len() as u64);
                    if local.is_empty() {
                        self.job_step_done(ctx, transid);
                        return;
                    }
                    let rpc_id = self.disc_rpc.call_persistent(
                        ctx,
                        Target::Named(volume.node, volume.volume.clone()),
                        DiscRequest::Undo { images: local },
                        SimDuration::from_millis(50),
                        0,
                    );
                    self.undo_acks.insert(rpc_id, transid);
                }
                return;
            }
            Err(p) => p,
        };
        let payload = match self.disc_rpc.accept(ctx, payload) {
            Ok(c) => {
                if let Some((transid, volume, svc)) = self.flush_acks.remove(&c.id) {
                    // the volume's appends have drained: the audit trail +
                    // buffer now hold every image, so read them
                    let rpc_id = self.audit_rpc.call_persistent(
                        ctx,
                        Target::Named(volume.node, svc),
                        AuditMsg::ReadTxnImages { transid },
                        SimDuration::from_millis(50),
                        0,
                    );
                    self.image_reads.insert(rpc_id, (transid, volume));
                    return;
                }
                if let Some(transid) = self.undo_acks.remove(&c.id) {
                    self.job_step_done(ctx, transid);
                }
                return;
            }
            Err(p) => p,
        };
        if !payload.is::<Request<BackoutMsg>>() {
            return;
        }
        let req = payload.expect::<Request<BackoutMsg>>();
        if let Some(cached) = self.replies.check(req.id) {
            reply(ctx, req.id, req.from, cached);
            return;
        }
        let BackoutMsg::Backout {
            transid,
            volumes,
            audit_services,
        } = req.body;
        if self.jobs.contains_key(&transid) {
            return; // duplicate request while in progress
        }
        ctx.count("backout.requests", 1);
        if volumes.is_empty() {
            self.replies.store(req.id, BackoutReply::Done);
            reply(ctx, req.id, req.from, BackoutReply::Done);
            return;
        }
        self.jobs.insert(
            transid,
            Job {
                req_id: req.id,
                from: req.from,
                outstanding: volumes.len(),
            },
        );
        for (volume, svc) in volumes.into_iter().zip(audit_services) {
            // barrier first: the DISCPROCESS answers once all its lazy
            // appends for the transaction are acknowledged by the audit
            let rpc_id = self.disc_rpc.call_persistent(
                ctx,
                Target::Named(volume.node, volume.volume.clone()),
                DiscRequest::FlushTxn { transid },
                SimDuration::from_millis(50),
                1,
            );
            self.flush_acks.insert(rpc_id, (transid, volume, svc));
        }
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        let _ = self.audit_rpc.on_timer(ctx, tag);
        let _ = self.disc_rpc.on_timer(ctx, tag);
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        // jobs are reconstructible: the TMP's request is safe-delivery and
        // will be retried against the new primary
        self.jobs.clear();
        self.flush_acks.clear();
        self.image_reads.clear();
        self.undo_acks.clear();
        ctx.count("backout.takeovers", 1);
    }

    fn apply_checkpoint(&mut self, _delta: Payload) {
        // stateless by design: nothing to mirror
    }

    fn snapshot(&self) -> Payload {
        Payload::new(())
    }

    fn restore(&mut self, _snapshot: Payload) {}
}

/// Spawn a BACKOUTPROCESS pair named `$BACKOUT` on `node`.
pub fn spawn_backout_process(
    world: &mut World,
    node: encompass_sim::NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
) -> PairHandle {
    guardian::spawn_pair(world, node, cpu_primary, cpu_backup, || {
        BackoutProcess::new("$BACKOUT")
    })
}
