//! The AUDITPROCESS: a process-pair that owns one audit trail.
//!
//! "All audited discs on a given controller share an AUDITPROCESS and an
//! audit trail" — several DISCPROCESSes send their image records here.
//! Records are *buffered* in the pair's memory (each append is checkpointed
//! to the backup, so a single processor failure loses nothing) and *forced*
//! to the trail media:
//!
//! * lazily, at phase one of commit (`ForceTxn`) — concurrent force
//!   requests are **group-committed** under a single physical write;
//! * eagerly, when a DISCPROCESS in the Write-Ahead-Log baseline appends
//!   with `force: true`.
//!
//! The trail may be **partitioned** by volume group (see DESIGN.md §D12):
//! each partition owns its own media sequence, boxcar buffer, waiter queue
//! and — critically — its own in-flight force slot, so independent volume
//! groups force in parallel instead of serializing behind one disc arm. A
//! `ForceTxn` fans out to exactly the partitions holding the transaction's
//! images and completes when all of them acknowledge. Partition 0 keeps
//! the legacy trail key and timer tags, so `partitions == 1` reproduces
//! the historical stable-storage layout.

use crate::trail::{partition_trail_key, TrailMedia};
use encompass_sim::NodeId;
use encompass_sim::{FlightCause, HistogramHandle, Payload, Pid, SimTime, World};
use encompass_storage::audit_api::{AuditMsg, AuditReply, ImageRecord};
use encompass_storage::types::Transid;
use guardian::{reply, PairApp, PairCtx, PairHandle, ReplyCache, Request};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Identity of one image record: duplicates arise when a DISCPROCESS
/// takeover re-sends retained images whose original append already
/// arrived. `seq` is only unique per volume, so the volume is part of
/// the key.
type ImageKey = (Transid, u64, NodeId, String);

fn image_key(r: &ImageRecord) -> ImageKey {
    (r.transid, r.seq, r.volume.node, r.volume.volume.clone())
}

/// Timer tag of partition `p`'s physical force completion. Partition 0
/// keeps the historical tag 1.
fn tag_force(p: usize) -> u64 {
    1 + 2 * p as u64
}

/// Timer tag of partition `p`'s group-commit window. Partition 0 keeps
/// the historical tag 2.
fn tag_window(p: usize) -> u64 {
    2 + 2 * p as u64
}

/// Cumulative bucket bounds for the boxcar-size histogram.
const BOXCAR_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Configuration for one AUDITPROCESS.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Service name, e.g. `"$AUDIT"`.
    pub service: String,
    /// Trail-file rotation threshold (records per file).
    pub rotate_every: usize,
    /// How long to hold an eligible force open so that later requesters can
    /// board the same boxcar. Zero forces immediately (the pre-boxcar
    /// behavior): a force starts as soon as one waiter is queued.
    pub group_commit_window: encompass_sim::SimDuration,
    /// Start the force early once this many waiters have boarded, even if
    /// the window has not elapsed.
    pub group_commit_max: usize,
    /// Number of trail partitions (volume groups forcing in parallel).
    pub partitions: usize,
    /// Volume name → partition index. Volumes not listed land on
    /// partition 0.
    pub partition_of: BTreeMap<String, usize>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            service: "$AUDIT".into(),
            rotate_every: 4096,
            group_commit_window: encompass_sim::SimDuration::ZERO,
            group_commit_max: 64,
            partitions: 1,
            partition_of: BTreeMap::new(),
        }
    }
}

struct Waiter {
    req_id: u64,
    /// Partition forced-record count that satisfies this waiter.
    needed: u64,
    /// The transaction this force is on behalf of (`ForceTxn` only; WAL
    /// appends force anonymously).
    transid: Option<Transid>,
}

/// A force request fanned out across partitions; the reply goes out when
/// every touched partition has acknowledged.
struct PendingForce {
    from: Pid,
    reply: AuditReply,
    remaining: usize,
    transid: Option<Transid>,
}

enum AuditDelta {
    Append {
        req_id: u64,
        partition: usize,
        records: Vec<ImageRecord>,
    },
    Forced {
        partition: usize,
        count: usize,
    },
}

struct AuditSnapshot {
    /// Per partition: (buffer, forced_count).
    partitions: Vec<(Vec<ImageRecord>, u64)>,
    replies: Vec<(u64, AuditReply)>,
}

/// One trail partition's force machinery.
struct Partition {
    /// Appended but not yet forced.
    buffer: Vec<ImageRecord>,
    /// Total records forced to this partition's trail over all time.
    forced_count: u64,
    force_in_progress: Option<usize>,
    /// Deadline of the window timer armed for the boxcar now
    /// accumulating. A firing before this deadline is a *stale* timer
    /// from an earlier, max-filled boxcar and must be ignored — closing
    /// the new boxcar early would defeat the group-commit window.
    /// Primary-memory only: the timer dies with the primary, and
    /// retransmitted requests re-arm it after a takeover.
    window_deadline: Option<SimTime>,
    waiters: Vec<Waiter>,
}

impl Partition {
    fn new() -> Partition {
        Partition {
            buffer: Vec::new(),
            forced_count: 0,
            force_in_progress: None,
            window_deadline: None,
            waiters: Vec::new(),
        }
    }
}

/// The AUDITPROCESS application.
pub struct AuditProcess {
    cfg: AuditConfig,
    parts: Vec<Partition>,
    /// Fanned-out force requests awaiting partition acknowledgements.
    pending: HashMap<u64, PendingForce>,
    replies: ReplyCache<AuditReply>,
    in_progress: HashSet<u64>,
    /// Keys of every record on the trails or in the buffers; `None` until
    /// first needed (rebuilt by scanning the trails after a takeover).
    seen: Option<HashSet<ImageKey>>,
    boxcar_hist: HistogramHandle,
}

impl AuditProcess {
    pub fn new(cfg: AuditConfig) -> AuditProcess {
        let n = cfg.partitions.max(1);
        AuditProcess {
            cfg,
            parts: (0..n).map(|_| Partition::new()).collect(),
            pending: HashMap::new(),
            replies: ReplyCache::new(8192),
            in_progress: HashSet::new(),
            seen: None,
            boxcar_hist: HistogramHandle::new("audit.boxcar_size", BOXCAR_BOUNDS),
        }
    }

    /// Which partition a record's volume belongs to.
    fn partition_of(&self, r: &ImageRecord) -> usize {
        self.cfg
            .partition_of
            .get(&r.volume.volume)
            .copied()
            .unwrap_or(0)
            .min(self.parts.len() - 1)
    }

    fn partition_of_volume(&self, volume: &str) -> usize {
        self.cfg
            .partition_of
            .get(volume)
            .copied()
            .unwrap_or(0)
            .min(self.parts.len() - 1)
    }

    /// Drop records already on a trail or in a buffer.
    fn dedup(&mut self, ctx: &mut PairCtx<'_, '_>, records: Vec<ImageRecord>) -> Vec<ImageRecord> {
        if self.seen.is_none() {
            let mut s: HashSet<ImageKey> = HashSet::new();
            for p in 0..self.parts.len() {
                self.with_trail(ctx, p, |t| {
                    for f in &t.files {
                        for r in &f.records {
                            s.insert(image_key(r));
                        }
                    }
                });
            }
            for part in &self.parts {
                for r in &part.buffer {
                    s.insert(image_key(r));
                }
            }
            self.seen = Some(s);
        }
        let seen = self.seen.as_mut().expect("built above");
        let before = records.len();
        let fresh: Vec<ImageRecord> = records
            .into_iter()
            .filter(|r| seen.insert(image_key(r)))
            .collect();
        ctx.count("audit.duplicate_records", (before - fresh.len()) as u64);
        fresh
    }

    fn with_trail<R>(
        &self,
        ctx: &mut PairCtx<'_, '_>,
        partition: usize,
        f: impl FnOnce(&mut TrailMedia) -> R,
    ) -> R {
        let key = partition_trail_key(ctx.node(), &self.cfg.service, partition);
        let rotate = self.cfg.rotate_every;
        let trail = ctx
            .stable()
            .get_or_create::<TrailMedia, _>(&key, move || TrailMedia::new(rotate));
        f(trail)
    }

    /// Partitions currently buffering records of `transid`.
    fn parts_buffering(&self, transid: Transid) -> Vec<usize> {
        (0..self.parts.len())
            .filter(|&p| self.parts[p].buffer.iter().any(|r| r.transid == transid))
            .collect()
    }

    /// Partitions with anything buffered at all.
    fn parts_nonempty(&self) -> Vec<usize> {
        (0..self.parts.len())
            .filter(|&p| !self.parts[p].buffer.is_empty())
            .collect()
    }

    /// Fan a force request out to `targets`, each partition completing
    /// when everything it currently buffers is on its trail.
    fn enqueue_force(
        &mut self,
        ctx: &mut PairCtx<'_, '_>,
        req_id: u64,
        from: Pid,
        r: AuditReply,
        transid: Option<Transid>,
        targets: Vec<usize>,
    ) {
        if targets.is_empty() {
            // nothing to force (e.g. an append fully deduplicated away)
            self.replies.store(req_id, r.clone());
            reply(ctx, req_id, from, r);
            return;
        }
        self.in_progress.insert(req_id);
        if let Some(t) = transid {
            ctx.flight(t.flight_id(), FlightCause::AuditForceStart);
        }
        self.pending.insert(
            req_id,
            PendingForce {
                from,
                reply: r,
                remaining: targets.len(),
                transid,
            },
        );
        for p in targets {
            let needed = self.parts[p].forced_count + self.parts[p].buffer.len() as u64;
            self.parts[p].waiters.push(Waiter {
                req_id,
                needed,
                transid,
            });
            self.maybe_start_force(ctx, p);
        }
    }

    fn maybe_start_force(&mut self, ctx: &mut PairCtx<'_, '_>, p: usize) {
        let part = &self.parts[p];
        if part.force_in_progress.is_some() || part.buffer.is_empty() || part.waiters.is_empty() {
            return;
        }
        if self.cfg.group_commit_window > encompass_sim::SimDuration::ZERO
            && part.waiters.len() < self.cfg.group_commit_max
        {
            // hold the boxcar open for late boarders; the recorded
            // deadline lets on_timer ignore stale firings from earlier,
            // max-filled boxcars
            if part.window_deadline.is_none() {
                let deadline = ctx.now() + self.cfg.group_commit_window;
                self.parts[p].window_deadline = Some(deadline);
                ctx.set_timer(self.cfg.group_commit_window, tag_window(p));
            }
            return;
        }
        self.start_force(ctx, p);
    }

    fn start_force(&mut self, ctx: &mut PairCtx<'_, '_>, p: usize) {
        self.parts[p].window_deadline = None;
        let upto = self.parts[p].buffer.len();
        self.parts[p].force_in_progress = Some(upto);
        ctx.count("audit.force_started", 1);
        let will_force = self.parts[p].forced_count + upto as u64;
        let boarding: Vec<Transid> = self.parts[p]
            .waiters
            .iter()
            .filter(|w| w.needed <= will_force)
            .filter_map(|w| w.transid)
            .collect();
        for t in boarding {
            ctx.flight(
                t.flight_id(),
                FlightCause::PartitionForceStart {
                    partition: p as u32,
                },
            );
        }
        // one rotating-media write per force, regardless of batch size:
        // this is the group commit
        let latency = ctx.config().disc_access;
        ctx.set_timer(latency, tag_force(p));
    }

    fn complete_force(&mut self, ctx: &mut PairCtx<'_, '_>, p: usize) {
        let Some(upto) = self.parts[p].force_in_progress.take() else {
            return;
        };
        let batch: Vec<ImageRecord> = self.parts[p].buffer.drain(..upto).collect();
        ctx.count("audit.forces", 1);
        ctx.count("audit.forced_records", batch.len() as u64);
        ctx.count("audit.group_size_total", batch.len() as u64);
        self.with_trail(ctx, p, |t| t.force(batch));
        self.parts[p].forced_count += upto as u64;
        ctx.checkpoint(Payload::new(AuditDelta::Forced {
            partition: p,
            count: upto,
        }));
        // satisfy waiters
        let forced = self.parts[p].forced_count;
        let (done, rest): (Vec<Waiter>, Vec<Waiter>) = self.parts[p]
            .waiters
            .drain(..)
            .partition(|w| w.needed <= forced);
        self.parts[p].waiters = rest;
        // an append-only force (no waiter satisfied) is not a boxcar:
        // observing 0 here would skew the group-size mean
        if !done.is_empty() {
            ctx.observe_handle(&self.boxcar_hist, done.len() as u64);
        }
        let boxcar = done.len() as u32;
        for w in done {
            if let Some(t) = w.transid {
                ctx.flight(
                    t.flight_id(),
                    FlightCause::PartitionForced {
                        partition: p as u32,
                    },
                );
            }
            self.partition_acked(ctx, w.req_id, boxcar);
        }
        self.maybe_start_force(ctx, p);
    }

    /// One partition acknowledged a fanned-out force; reply once all have.
    fn partition_acked(&mut self, ctx: &mut PairCtx<'_, '_>, req_id: u64, boxcar: u32) {
        let Some(pending) = self.pending.get_mut(&req_id) else {
            return;
        };
        pending.remaining = pending.remaining.saturating_sub(1);
        if pending.remaining > 0 {
            return;
        }
        let pending = self.pending.remove(&req_id).expect("present above");
        self.in_progress.remove(&req_id);
        if let Some(t) = pending.transid {
            ctx.flight(t.flight_id(), FlightCause::AuditForced { boxcar });
        }
        self.replies.store(req_id, pending.reply.clone());
        reply(ctx, req_id, pending.from, pending.reply);
    }
}

impl PairApp for AuditProcess {
    fn service_name(&self) -> String {
        self.cfg.service.clone()
    }

    fn kind(&self) -> &'static str {
        "auditprocess"
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
        if !payload.is::<Request<AuditMsg>>() {
            return;
        }
        let req = payload.expect::<Request<AuditMsg>>();
        if let Some(cached) = self.replies.check(req.id) {
            reply(ctx, req.id, req.from, cached);
            return;
        }
        if self.in_progress.contains(&req.id) {
            return;
        }
        match req.body {
            AuditMsg::Append { records, force } => {
                ctx.count("audit.appends", 1);
                let records = self.dedup(ctx, records);
                ctx.count("audit.records", records.len() as u64);
                let mut split: BTreeMap<usize, Vec<ImageRecord>> = BTreeMap::new();
                for r in records {
                    let p = self.partition_of(&r);
                    split.entry(p).or_default().push(r);
                }
                // an append that deduplicated away entirely still
                // checkpoints once, so the backup replicates the reply
                if split.is_empty() {
                    split.insert(0, Vec::new());
                }
                let mut per_txn: BTreeMap<Transid, u32> = BTreeMap::new();
                for (p, recs) in split {
                    ctx.checkpoint(Payload::new(AuditDelta::Append {
                        req_id: req.id,
                        partition: p,
                        records: recs.clone(),
                    }));
                    for r in &recs {
                        *per_txn.entry(r.transid).or_insert(0) += 1;
                    }
                    self.parts[p].buffer.extend(recs);
                }
                for (t, n) in per_txn {
                    ctx.flight(t.flight_id(), FlightCause::AuditAppend { records: n });
                }
                if force {
                    // a forced append is a flush barrier: everything
                    // queued before it, on every partition, must land
                    let targets = self.parts_nonempty();
                    self.enqueue_force(ctx, req.id, req.from, AuditReply::Appended, None, targets);
                } else {
                    self.replies.store(req.id, AuditReply::Appended);
                    reply(ctx, req.id, req.from, AuditReply::Appended);
                }
            }
            AuditMsg::ForceTxn { transid } => {
                ctx.count("audit.force_txn", 1);
                let targets = self.parts_buffering(transid);
                self.enqueue_force(
                    ctx,
                    req.id,
                    req.from,
                    AuditReply::Forced,
                    Some(transid),
                    targets,
                );
            }
            AuditMsg::Purge { floors, open } => {
                ctx.count("audit.purges", 1);
                // group the per-volume dump floors by partition: a
                // partition is purgeable only when *every* volume it
                // audits has a completed dump (Some floor)
                let mut cut: BTreeMap<usize, Option<u64>> = BTreeMap::new();
                for (volume, floor) in &floors {
                    let p = self.partition_of_volume(volume);
                    cut.entry(p)
                        .and_modify(|c| {
                            *c = match (*c, *floor) {
                                (Some(a), Some(b)) => Some(a.min(b)),
                                _ => None,
                            }
                        })
                        .or_insert(*floor);
                }
                let open: BTreeSet<Transid> = open.into_iter().collect();
                let mut total_files = 0u64;
                for (p, below) in cut {
                    let Some(below) = below else { continue };
                    if below <= 1 {
                        continue; // nothing purgeable yet
                    }
                    // belt and braces under the dump-floor proof: never
                    // cut past the first image of a transaction that is
                    // still open (its before-images may yet drive a
                    // backout)
                    let oldest_open = self.with_trail(ctx, p, |t| {
                        t.files
                            .iter()
                            .flat_map(|f| f.records.iter())
                            .filter(|r| open.contains(&r.transid))
                            .map(|r| r.seq)
                            .min()
                    });
                    let oldest_open = self.parts[p]
                        .buffer
                        .iter()
                        .filter(|r| open.contains(&r.transid))
                        .map(|r| r.seq)
                        .min()
                        .into_iter()
                        .chain(oldest_open)
                        .min();
                    let below = match oldest_open {
                        Some(first) => below.min(first),
                        None => below,
                    };
                    let files = self.with_trail(ctx, p, |t| t.purge_below(below)) as u64;
                    total_files += files;
                    let marker = Transid::dump_marker(ctx.node(), below);
                    ctx.flight(
                        marker.flight_id(),
                        FlightCause::TrailPurge {
                            files: files as u32,
                        },
                    );
                }
                ctx.count("audit.purged_files", total_files);
                // The seen-set (if built) still names purged records; that
                // is harmless — it only makes dedup drop re-sent copies of
                // records the capacity manager proved dispensable.
                let r = AuditReply::Purged { files: total_files };
                self.replies.store(req.id, r.clone());
                reply(ctx, req.id, req.from, r);
            }
            AuditMsg::StateAudit => {
                // utility query: not cached (idempotent), not checkpointed
                let report = encompass_storage::audit_api::AuditStateReport {
                    buffered: self.parts.iter().map(|p| p.buffer.len()).sum(),
                    waiters: self.parts.iter().map(|p| p.waiters.len()).sum(),
                    inflight_forces: self
                        .parts
                        .iter()
                        .filter(|p| p.force_in_progress.is_some())
                        .count(),
                    pending_forces: self.pending.len(),
                    reply_cache: self.replies.entries().len(),
                };
                reply(ctx, req.id, req.from, AuditReply::State(report));
            }
            AuditMsg::ReadTxnImages { transid } => {
                let mut images: Vec<ImageRecord> = Vec::new();
                for p in 0..self.parts.len() {
                    images.extend(self.with_trail(ctx, p, |t| t.txn_images(transid)));
                    images.extend(
                        self.parts[p]
                            .buffer
                            .iter()
                            .filter(|r| r.transid == transid)
                            .cloned(),
                    );
                }
                images.sort_by_key(|r| r.seq);
                reply(ctx, req.id, req.from, AuditReply::Images(images));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        if tag == 0 || tag > 2 * self.parts.len() as u64 {
            return;
        }
        let p = ((tag - 1) / 2) as usize;
        if tag % 2 == 1 {
            self.complete_force(ctx, p);
            return;
        }
        // window firing: ignore stale timers armed for an earlier boxcar
        // (one that filled to group_commit_max and forced before its
        // window elapsed) — the accumulating boxcar deserves its own full
        // window
        match self.parts[p].window_deadline {
            Some(deadline) if ctx.now() >= deadline => {
                self.parts[p].window_deadline = None;
                if self.parts[p].force_in_progress.is_none()
                    && !self.parts[p].buffer.is_empty()
                    && !self.parts[p].waiters.is_empty()
                {
                    self.start_force(ctx, p);
                }
            }
            _ => ctx.count("audit.stale_window_ignored", 1),
        }
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        // in-flight forces died with the primary; requesters retransmit
        for part in &mut self.parts {
            part.force_in_progress = None;
            part.window_deadline = None;
            part.waiters.clear();
        }
        self.pending.clear();
        self.in_progress.clear();
        // the seen-set was primary-memory state: rebuild from the trails
        // and buffers on the next append
        self.seen = None;
        ctx.count("audit.takeovers", 1);
    }

    fn apply_checkpoint(&mut self, delta: Payload) {
        match delta.expect::<AuditDelta>() {
            AuditDelta::Append {
                req_id,
                partition,
                records,
            } => {
                let p = partition.min(self.parts.len() - 1);
                self.parts[p].buffer.extend(records);
                self.replies.store(req_id, AuditReply::Appended);
            }
            AuditDelta::Forced { partition, count } => {
                let p = partition.min(self.parts.len() - 1);
                let n = count.min(self.parts[p].buffer.len());
                self.parts[p].buffer.drain(..n);
                self.parts[p].forced_count += count as u64;
            }
        }
    }

    fn snapshot(&self) -> Payload {
        Payload::new(AuditSnapshot {
            partitions: self
                .parts
                .iter()
                .map(|p| (p.buffer.clone(), p.forced_count))
                .collect(),
            replies: self.replies.entries(),
        })
    }

    fn restore(&mut self, snapshot: Payload) {
        let s = snapshot.expect::<AuditSnapshot>();
        for (i, (buffer, forced)) in s.partitions.into_iter().enumerate() {
            if let Some(p) = self.parts.get_mut(i) {
                p.buffer = buffer;
                p.forced_count = forced;
            }
        }
        self.replies = ReplyCache::restore(8192, s.replies);
    }
}

/// Spawn an AUDITPROCESS pair and create its trail media (one per
/// partition) if absent.
pub fn spawn_audit_process(
    world: &mut World,
    node: encompass_sim::NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
    cfg: AuditConfig,
) -> PairHandle {
    for p in 0..cfg.partitions.max(1) {
        let key = partition_trail_key(node, &cfg.service, p);
        let rotate = cfg.rotate_every;
        world
            .stable_mut()
            .get_or_create::<TrailMedia, _>(&key, move || TrailMedia::new(rotate));
    }
    guardian::spawn_pair(world, node, cpu_primary, cpu_backup, move || {
        AuditProcess::new(cfg.clone())
    })
}
