//! The AUDITPROCESS: a process-pair that owns one audit trail.
//!
//! "All audited discs on a given controller share an AUDITPROCESS and an
//! audit trail" — several DISCPROCESSes send their image records here.
//! Records are *buffered* in the pair's memory (each append is checkpointed
//! to the backup, so a single processor failure loses nothing) and *forced*
//! to the trail media:
//!
//! * lazily, at phase one of commit (`ForceTxn`) — concurrent force
//!   requests are **group-committed** under a single physical write;
//! * eagerly, when a DISCPROCESS in the Write-Ahead-Log baseline appends
//!   with `force: true`.

use crate::trail::{trail_key, TrailMedia};
use encompass_sim::NodeId;
use encompass_sim::{FlightCause, HistogramHandle, Payload, Pid, World};
use encompass_storage::audit_api::{AuditMsg, AuditReply, ImageRecord};
use encompass_storage::types::Transid;
use guardian::{reply, PairApp, PairCtx, PairHandle, ReplyCache, Request};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Identity of one image record: duplicates arise when a DISCPROCESS
/// takeover re-sends retained images whose original append already
/// arrived. `seq` is only unique per volume, so the volume is part of
/// the key.
type ImageKey = (Transid, u64, NodeId, String);

fn image_key(r: &ImageRecord) -> ImageKey {
    (r.transid, r.seq, r.volume.node, r.volume.volume.clone())
}

const TAG_FORCE: u64 = 1;
const TAG_WINDOW: u64 = 2;

/// Cumulative bucket bounds for the boxcar-size histogram.
const BOXCAR_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Configuration for one AUDITPROCESS.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Service name, e.g. `"$AUDIT"`.
    pub service: String,
    /// Trail-file rotation threshold (records per file).
    pub rotate_every: usize,
    /// How long to hold an eligible force open so that later requesters can
    /// board the same boxcar. Zero forces immediately (the pre-boxcar
    /// behavior): a force starts as soon as one waiter is queued.
    pub group_commit_window: encompass_sim::SimDuration,
    /// Start the force early once this many waiters have boarded, even if
    /// the window has not elapsed.
    pub group_commit_max: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            service: "$AUDIT".into(),
            rotate_every: 4096,
            group_commit_window: encompass_sim::SimDuration::ZERO,
            group_commit_max: 64,
        }
    }
}

struct Waiter {
    req_id: u64,
    from: Pid,
    /// Total forced-record count that satisfies this waiter.
    needed: u64,
    /// The reply to send when satisfied.
    reply: AuditReply,
    /// The transaction this force is on behalf of (`ForceTxn` only; WAL
    /// appends force anonymously).
    transid: Option<Transid>,
}

enum AuditDelta {
    Append { req_id: u64, records: Vec<ImageRecord> },
    Forced { count: usize },
}

struct AuditSnapshot {
    buffer: Vec<ImageRecord>,
    forced_count: u64,
    replies: Vec<(u64, AuditReply)>,
}

/// The AUDITPROCESS application.
pub struct AuditProcess {
    cfg: AuditConfig,
    /// Appended but not yet forced.
    buffer: Vec<ImageRecord>,
    /// Total records forced to the trail over all time.
    forced_count: u64,
    force_in_progress: Option<usize>,
    /// True while a `TAG_WINDOW` timer is outstanding for the boxcar now
    /// accumulating. Primary-memory only: the timer dies with the primary,
    /// and retransmitted requests re-arm it after a takeover.
    window_armed: bool,
    waiters: Vec<Waiter>,
    replies: ReplyCache<AuditReply>,
    in_progress: HashSet<u64>,
    /// Keys of every record on the trail or in the buffer; `None` until
    /// first needed (rebuilt by scanning the trail after a takeover).
    seen: Option<HashSet<ImageKey>>,
    boxcar_hist: HistogramHandle,
}

impl AuditProcess {
    pub fn new(cfg: AuditConfig) -> AuditProcess {
        AuditProcess {
            cfg,
            buffer: Vec::new(),
            forced_count: 0,
            force_in_progress: None,
            window_armed: false,
            waiters: Vec::new(),
            replies: ReplyCache::new(8192),
            in_progress: HashSet::new(),
            seen: None,
            boxcar_hist: HistogramHandle::new("audit.boxcar_size", BOXCAR_BOUNDS),
        }
    }

    /// Drop records already on the trail or in the buffer.
    fn dedup(&mut self, ctx: &mut PairCtx<'_, '_>, records: Vec<ImageRecord>) -> Vec<ImageRecord> {
        if self.seen.is_none() {
            let mut s: HashSet<ImageKey> = HashSet::new();
            self.with_trail(ctx, |t| {
                for f in &t.files {
                    for r in &f.records {
                        s.insert(image_key(r));
                    }
                }
            });
            for r in &self.buffer {
                s.insert(image_key(r));
            }
            self.seen = Some(s);
        }
        let seen = self.seen.as_mut().expect("built above");
        let before = records.len();
        let fresh: Vec<ImageRecord> = records
            .into_iter()
            .filter(|r| seen.insert(image_key(r)))
            .collect();
        ctx.count("audit.duplicate_records", (before - fresh.len()) as u64);
        fresh
    }

    fn with_trail<R>(&self, ctx: &mut PairCtx<'_, '_>, f: impl FnOnce(&mut TrailMedia) -> R) -> R {
        let key = trail_key(ctx.node(), &self.cfg.service);
        let rotate = self.cfg.rotate_every;
        let trail = ctx
            .stable()
            .get_or_create::<TrailMedia, _>(&key, move || TrailMedia::new(rotate));
        f(trail)
    }

    fn buffered_for(&self, transid: Transid) -> bool {
        self.buffer.iter().any(|r| r.transid == transid)
    }

    /// Enqueue a waiter that needs everything currently buffered to be on
    /// the trail, and kick the force machinery.
    fn enqueue_force(
        &mut self,
        ctx: &mut PairCtx<'_, '_>,
        req_id: u64,
        from: Pid,
        r: AuditReply,
        transid: Option<Transid>,
    ) {
        if self.buffer.is_empty() {
            // nothing to force (e.g. an append fully deduplicated away)
            self.replies.store(req_id, r.clone());
            reply(ctx, req_id, from, r);
            return;
        }
        let needed = self.forced_count + self.buffer.len() as u64;
        self.in_progress.insert(req_id);
        if let Some(t) = transid {
            ctx.flight(t.flight_id(), FlightCause::AuditForceStart);
        }
        self.waiters.push(Waiter {
            req_id,
            from,
            needed,
            reply: r,
            transid,
        });
        self.maybe_start_force(ctx);
    }

    fn maybe_start_force(&mut self, ctx: &mut PairCtx<'_, '_>) {
        if self.force_in_progress.is_some() || self.buffer.is_empty() || self.waiters.is_empty() {
            return;
        }
        if self.cfg.group_commit_window > encompass_sim::SimDuration::ZERO
            && self.waiters.len() < self.cfg.group_commit_max
        {
            // Hold the boxcar open for late boarders. A stale window timer
            // from an earlier, max-filled boxcar may close this one early;
            // that only shortens the wait, never loses a waiter.
            if !self.window_armed {
                self.window_armed = true;
                ctx.set_timer(self.cfg.group_commit_window, TAG_WINDOW);
            }
            return;
        }
        self.start_force(ctx);
    }

    fn start_force(&mut self, ctx: &mut PairCtx<'_, '_>) {
        self.window_armed = false;
        let upto = self.buffer.len();
        self.force_in_progress = Some(upto);
        ctx.count("audit.force_started", 1);
        // one rotating-media write per force, regardless of batch size:
        // this is the group commit
        let latency = ctx.config().disc_access;
        ctx.set_timer(latency, TAG_FORCE);
    }

    fn complete_force(&mut self, ctx: &mut PairCtx<'_, '_>) {
        let Some(upto) = self.force_in_progress.take() else {
            return;
        };
        let batch: Vec<ImageRecord> = self.buffer.drain(..upto).collect();
        ctx.count("audit.forces", 1);
        ctx.count("audit.forced_records", batch.len() as u64);
        ctx.count("audit.group_size_total", batch.len() as u64);
        self.with_trail(ctx, |t| t.force(batch));
        self.forced_count += upto as u64;
        ctx.checkpoint(Payload::new(AuditDelta::Forced { count: upto }));
        // satisfy waiters
        let forced = self.forced_count;
        let (done, rest): (Vec<Waiter>, Vec<Waiter>) =
            self.waiters.drain(..).partition(|w| w.needed <= forced);
        self.waiters = rest;
        ctx.observe_handle(&self.boxcar_hist, done.len() as u64);
        let boxcar = done.len() as u32;
        for w in done {
            self.in_progress.remove(&w.req_id);
            if let Some(t) = w.transid {
                ctx.flight(t.flight_id(), FlightCause::AuditForced { boxcar });
            }
            self.replies.store(w.req_id, w.reply.clone());
            reply(ctx, w.req_id, w.from, w.reply);
        }
        self.maybe_start_force(ctx);
    }
}

impl PairApp for AuditProcess {
    fn service_name(&self) -> String {
        self.cfg.service.clone()
    }

    fn kind(&self) -> &'static str {
        "auditprocess"
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
        if !payload.is::<Request<AuditMsg>>() {
            return;
        }
        let req = payload.expect::<Request<AuditMsg>>();
        if let Some(cached) = self.replies.check(req.id) {
            reply(ctx, req.id, req.from, cached);
            return;
        }
        if self.in_progress.contains(&req.id) {
            return;
        }
        match req.body {
            AuditMsg::Append { records, force } => {
                ctx.count("audit.appends", 1);
                let records = self.dedup(ctx, records);
                ctx.count("audit.records", records.len() as u64);
                ctx.checkpoint(Payload::new(AuditDelta::Append {
                    req_id: req.id,
                    records: records.clone(),
                }));
                let mut per_txn: BTreeMap<Transid, u32> = BTreeMap::new();
                for r in &records {
                    *per_txn.entry(r.transid).or_insert(0) += 1;
                }
                for (t, n) in per_txn {
                    ctx.flight(t.flight_id(), FlightCause::AuditAppend { records: n });
                }
                self.buffer.extend(records);
                if force {
                    self.enqueue_force(ctx, req.id, req.from, AuditReply::Appended, None);
                } else {
                    self.replies.store(req.id, AuditReply::Appended);
                    reply(ctx, req.id, req.from, AuditReply::Appended);
                }
            }
            AuditMsg::ForceTxn { transid } => {
                ctx.count("audit.force_txn", 1);
                if self.buffered_for(transid) {
                    self.enqueue_force(ctx, req.id, req.from, AuditReply::Forced, Some(transid));
                } else {
                    self.replies.store(req.id, AuditReply::Forced);
                    reply(ctx, req.id, req.from, AuditReply::Forced);
                }
            }
            AuditMsg::Purge { below, open } => {
                ctx.count("audit.purges", 1);
                // belt and braces under the dump-floor proof: never cut
                // past the first image of a transaction that is still open
                // (its before-images may yet drive a backout)
                let open: BTreeSet<Transid> = open.into_iter().collect();
                let oldest_open = self.with_trail(ctx, |t| {
                    t.files
                        .iter()
                        .flat_map(|f| f.records.iter())
                        .filter(|r| open.contains(&r.transid))
                        .map(|r| r.seq)
                        .min()
                });
                let oldest_open = self
                    .buffer
                    .iter()
                    .filter(|r| open.contains(&r.transid))
                    .map(|r| r.seq)
                    .min()
                    .into_iter()
                    .chain(oldest_open)
                    .min();
                let below = match oldest_open {
                    Some(first) => below.min(first),
                    None => below,
                };
                let files = self.with_trail(ctx, |t| t.purge_below(below)) as u64;
                ctx.count("audit.purged_files", files);
                let marker = Transid::dump_marker(ctx.node(), below);
                ctx.flight(
                    marker.flight_id(),
                    FlightCause::TrailPurge {
                        files: files as u32,
                    },
                );
                // The seen-set (if built) still names purged records; that
                // is harmless — it only makes dedup drop re-sent copies of
                // records the capacity manager proved dispensable.
                self.replies.store(req.id, AuditReply::Purged { files });
                reply(ctx, req.id, req.from, AuditReply::Purged { files });
            }
            AuditMsg::ReadTxnImages { transid } => {
                let mut images = self.with_trail(ctx, |t| t.txn_images(transid));
                images.extend(
                    self.buffer
                        .iter()
                        .filter(|r| r.transid == transid)
                        .cloned(),
                );
                images.sort_by_key(|r| r.seq);
                reply(ctx, req.id, req.from, AuditReply::Images(images));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        match tag {
            TAG_FORCE => self.complete_force(ctx),
            TAG_WINDOW => {
                self.window_armed = false;
                if self.force_in_progress.is_none()
                    && !self.buffer.is_empty()
                    && !self.waiters.is_empty()
                {
                    self.start_force(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        // an in-flight force died with the primary; requesters retransmit
        self.force_in_progress = None;
        self.window_armed = false;
        self.waiters.clear();
        self.in_progress.clear();
        // the seen-set was primary-memory state: rebuild from the trail
        // and buffer on the next append
        self.seen = None;
        ctx.count("audit.takeovers", 1);
    }

    fn apply_checkpoint(&mut self, delta: Payload) {
        match delta.expect::<AuditDelta>() {
            AuditDelta::Append { req_id, records } => {
                self.buffer.extend(records);
                self.replies.store(req_id, AuditReply::Appended);
            }
            AuditDelta::Forced { count } => {
                self.buffer.drain(..count.min(self.buffer.len()));
                self.forced_count += count as u64;
            }
        }
    }

    fn snapshot(&self) -> Payload {
        Payload::new(AuditSnapshot {
            buffer: self.buffer.clone(),
            forced_count: self.forced_count,
            replies: self.replies.entries(),
        })
    }

    fn restore(&mut self, snapshot: Payload) {
        let s = snapshot.expect::<AuditSnapshot>();
        self.buffer = s.buffer;
        self.forced_count = s.forced_count;
        self.replies = ReplyCache::restore(8192, s.replies);
    }
}

/// Spawn an AUDITPROCESS pair and create its trail media if absent.
pub fn spawn_audit_process(
    world: &mut World,
    node: encompass_sim::NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
    cfg: AuditConfig,
) -> PairHandle {
    let key = trail_key(node, &cfg.service);
    let rotate = cfg.rotate_every;
    world
        .stable_mut()
        .get_or_create::<TrailMedia, _>(&key, move || TrailMedia::new(rotate));
    guardian::spawn_pair(world, node, cpu_primary, cpu_backup, move || {
        AuditProcess::new(cfg.clone())
    })
}
