//! Edge-case tests for the guardian RPC layer: cancellation, cookies,
//! duplicate replies after retransmission, and in-flight accounting.

use encompass_sim::{Ctx, Payload, Pid, Process, SimConfig, SimDuration, TimerId, World};
use guardian::{reply, Request, Rpc, Target, TimerOutcome};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Clone, Debug)]
struct Ping(u32);
#[derive(Clone, Debug, PartialEq)]
struct Pong(u32);

/// Echo server that replies to every request `n` times (duplicates model
/// replies racing with retransmissions).
struct MultiEcho {
    replies_per_request: u32,
}
impl Process for MultiEcho {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let req = payload.expect::<Request<Ping>>();
        for _ in 0..self.replies_per_request {
            reply(ctx, req.id, req.from, Pong(req.body.0));
        }
    }
}

struct Client {
    server: Pid,
    cancel_after_send: bool,
    events: Rc<RefCell<Vec<String>>>,
    rpc: Rpc<Ping, Pong>,
}
impl Process for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let id = self
            .rpc
            .call(
                ctx,
                Target::Pid(self.server),
                Ping(5),
                SimDuration::from_millis(50),
                3,
                77,
            )
            .expect("send ok");
        assert_eq!(self.rpc.in_flight(), 1);
        if self.cancel_after_send {
            self.rpc.cancel(ctx, id);
            assert_eq!(self.rpc.in_flight(), 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        match self.rpc.accept(ctx, payload) {
            Ok(c) => self
                .events
                .borrow_mut()
                .push(format!("ok:{}:cookie{}", c.body.0, c.cookie)),
            Err(_) => self.events.borrow_mut().push("stray".into()),
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let TimerOutcome::Expired { cookie, .. } = self.rpc.on_timer(ctx, tag) {
            self.events.borrow_mut().push(format!("expired:{cookie}"));
        }
    }
}

fn run(cancel: bool, dup_replies: u32) -> Vec<String> {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(2);
    let server = w.spawn(
        n,
        0,
        Box::new(MultiEcho {
            replies_per_request: dup_replies,
        }),
    );
    let events = Rc::new(RefCell::new(Vec::new()));
    w.spawn(
        n,
        1,
        Box::new(Client {
            server,
            cancel_after_send: cancel,
            events: events.clone(),
            rpc: Rpc::new(0),
        }),
    );
    w.run_for(SimDuration::from_secs(2));
    let out = events.borrow().clone();
    out
}

#[test]
fn completion_carries_the_cookie() {
    assert_eq!(run(false, 1), vec!["ok:5:cookie77".to_string()]);
}

#[test]
fn duplicate_replies_surface_as_stray_not_double_completion() {
    assert_eq!(
        run(false, 3),
        vec![
            "ok:5:cookie77".to_string(),
            "stray".to_string(),
            "stray".to_string()
        ]
    );
}

#[test]
fn cancelled_call_neither_completes_nor_expires() {
    // the reply still arrives at the process, but the rpc no longer owns
    // the id, so it surfaces as stray; no timeout fires either
    assert_eq!(run(true, 1), vec!["stray".to_string()]);
}
