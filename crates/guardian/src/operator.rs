//! The operator process: the paper's example of a non-I/O process-pair,
//! "responsible for formatting and printing error messages on the system
//! console". Here it subscribes to hardware events and tallies them into
//! the metrics, giving experiments a node-local availability log.

use encompass_sim::{Ctx, Payload, Pid, Process, SystemEvent};

/// Spawn one per node (plain process; its state is reconstructible, so a
/// pair adds nothing in the simulation).
#[derive(Default)]
pub struct OperatorProcess {
    seen: u64,
}

impl Process for OperatorProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.subscribe_system();
        ctx.register_name("$OPR");
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _src: Pid, _payload: Payload) {
        // console messages from other processes would be printed here
    }

    fn on_system(&mut self, ctx: &mut Ctx<'_>, ev: SystemEvent) {
        self.seen += 1;
        let counter = match ev {
            SystemEvent::CpuDown(..) => "operator.cpu_down",
            SystemEvent::CpuUp(..) => "operator.cpu_up",
            SystemEvent::LinkDown(..) => "operator.link_down",
            SystemEvent::LinkUp(..) => "operator.link_up",
        };
        ctx.count(counter, 1);
        ctx.trace("operator", || format!("{ev:?}"));
    }

    fn kind(&self) -> &'static str {
        "operator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::{CpuId, Fault, SimConfig, SimDuration, World};

    #[test]
    fn tallies_hardware_events() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(4);
        let b = w.add_node(2);
        let l = w.add_link(a, b, SimDuration::from_millis(1));
        w.spawn(a, 0, Box::new(OperatorProcess::default()));
        w.run_until_quiescent();
        w.inject(Fault::KillCpu(a, CpuId(2)));
        w.inject(Fault::CutLink(l));
        w.inject(Fault::HealLink(l));
        w.run_for(SimDuration::from_millis(100));
        assert_eq!(w.metrics().get("operator.cpu_down"), 1);
        assert_eq!(w.metrics().get("operator.link_down"), 1);
        assert_eq!(w.metrics().get("operator.link_up"), 1);
        assert!(w.lookup_name(a, "$OPR").is_some());
    }
}
