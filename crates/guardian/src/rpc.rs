//! Request/reply messaging with correlation, timeouts, and retransmission.
//!
//! GUARDIAN/EXPAND gave every message an end-to-end acknowledgment; software
//! layered request/reply on top. [`Rpc`] packages that pattern for simulated
//! processes: the caller gets a correlation id, a per-attempt timeout, and a
//! bounded or unbounded retry budget.
//!
//! The two retry policies map onto the paper's distributed-commit message
//! classes:
//!
//! * **critical response** — `retries` is finite; when the budget is
//!   exhausted (or the destination is immediately unreachable) the caller
//!   is told, and can e.g. abort the transaction;
//! * **safe delivery** — `retries = u32::MAX`; the message is re-offered
//!   "whenever transmission becomes possible", which is exactly how
//!   phase-two and backout notifications behave.
//!
//! Retransmission implies at-least-once delivery; receivers that are not
//! naturally idempotent deduplicate with a [`ReplyCache`].

use encompass_sim::{Ctx, NodeId, Payload, Pid, SendError, SimDuration, TimerId};
use std::collections::HashMap;

/// Timer tags at or above this value are reserved for `Rpc`; processes must
/// keep their own tags below it.
pub const RPC_TAG_BASE: u64 = 1 << 48;

/// Where a request is addressed. Named targets are re-resolved on every
/// attempt, so a retry finds the new primary after a process-pair takeover.
#[derive(Clone, Debug)]
pub enum Target {
    Pid(Pid),
    Named(NodeId, String),
}

impl Target {
    fn resolve(&self, ctx: &Ctx<'_>) -> Option<Pid> {
        match self {
            Target::Pid(p) => Some(*p),
            Target::Named(node, name) => ctx.lookup_name(*node, name),
        }
    }

    pub fn node(&self) -> NodeId {
        match self {
            Target::Pid(p) => p.node,
            Target::Named(n, _) => *n,
        }
    }
}

/// The wire form of a request.
#[derive(Clone, Debug)]
pub struct Request<M> {
    pub id: u64,
    pub from: Pid,
    pub body: M,
}

/// The wire form of a reply.
#[derive(Clone, Debug)]
pub struct RpcReply<R> {
    pub id: u64,
    pub body: R,
}

/// Send a reply to a previously received [`Request`].
pub fn reply<R: Send + 'static>(ctx: &mut Ctx<'_>, req_id: u64, to: Pid, body: R) {
    let _ = ctx.send(
        to,
        Payload::new(RpcReply {
            id: req_id,
            body,
        }),
    );
}

struct Pending<M> {
    target: Target,
    body: M,
    timeout: SimDuration,
    retries_left: u32,
    timer: TimerId,
    /// user cookie carried back on completion/timeout
    cookie: u64,
}

/// What `on_timer` decided about an RPC timer.
#[derive(Debug)]
pub enum TimerOutcome<M> {
    /// The tag did not belong to this `Rpc`.
    NotMine,
    /// A retransmission was sent; keep waiting.
    Resent,
    /// The retry budget is exhausted; the request has been abandoned.
    Expired { id: u64, body: M, cookie: u64 },
}

/// A completed call, returned by [`Rpc::accept`].
#[derive(Debug)]
pub struct Completion<R> {
    pub id: u64,
    pub body: R,
    pub cookie: u64,
}

/// Client-side state for request/reply exchanges carrying request bodies of
/// type `M` and replies of type `R`.
///
/// Owning process responsibilities:
/// * forward unknown timer tags `>= RPC_TAG_BASE` to [`Rpc::on_timer`];
/// * offer incoming payloads to [`Rpc::accept`] before other decoding.
pub struct Rpc<M, R> {
    id_space: u64,
    /// Lazily derived from the owning process's pid so that request ids —
    /// which servers use for retry deduplication — never collide across
    /// processes.
    salt: Option<u64>,
    counter: u64,
    pending: HashMap<u64, Pending<M>>,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<M: Clone + Send + 'static, R: Send + 'static> Rpc<M, R> {
    /// `id_space` disambiguates correlation ids between several `Rpc`
    /// instances inside one process (use distinct small integers, < 128).
    pub fn new(id_space: u64) -> Rpc<M, R> {
        Rpc {
            id_space,
            salt: None,
            counter: 0,
            pending: HashMap::new(),
            _r: std::marker::PhantomData,
        }
    }

    /// Number of requests still awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Issue a request with a bounded retry budget (critical-response
    /// style). Fails fast if the target is dead or unreachable *now*.
    pub fn call(
        &mut self,
        ctx: &mut Ctx<'_>,
        target: Target,
        body: M,
        timeout: SimDuration,
        retries: u32,
        cookie: u64,
    ) -> Result<u64, SendError> {
        let id = self.fresh_id(ctx);
        let dst = target.resolve(ctx).ok_or(SendError::UnknownName)?;
        ctx.send(
            dst,
            Payload::new(Request {
                id,
                from: ctx.pid(),
                body: body.clone(),
            }),
        )?;
        let timer = ctx.set_timer(timeout, RPC_TAG_BASE + id);
        self.pending.insert(
            id,
            Pending {
                target,
                body,
                timeout,
                retries_left: retries,
                timer,
                cookie,
            },
        );
        Ok(id)
    }

    /// Issue a request that is retried until it can be delivered and
    /// answered (safe-delivery style). Never fails at call time: if the
    /// target is unreachable the first attempt simply becomes a retry.
    pub fn call_persistent(
        &mut self,
        ctx: &mut Ctx<'_>,
        target: Target,
        body: M,
        retry_interval: SimDuration,
        cookie: u64,
    ) -> u64 {
        let id = self.fresh_id(ctx);
        if let Some(dst) = target.resolve(ctx) {
            let _ = ctx.send(
                dst,
                Payload::new(Request {
                    id,
                    from: ctx.pid(),
                    body: body.clone(),
                }),
            );
        }
        let timer = ctx.set_timer(retry_interval, RPC_TAG_BASE + id);
        self.pending.insert(
            id,
            Pending {
                target,
                body,
                timeout: retry_interval,
                retries_left: u32::MAX,
                timer,
                cookie,
            },
        );
        id
    }

    /// Offer an incoming payload. If it is a reply to one of our pending
    /// requests, the call completes. Non-replies and stale replies are
    /// given back as `Err`.
    pub fn accept(&mut self, ctx: &mut Ctx<'_>, payload: Payload) -> Result<Completion<R>, Payload> {
        if !payload.is::<RpcReply<R>>() {
            return Err(payload);
        }
        let reply = payload.downcast::<RpcReply<R>>().expect("checked above");
        match self.pending.remove(&reply.id) {
            Some(p) => {
                ctx.cancel_timer(p.timer);
                Ok(Completion {
                    id: reply.id,
                    body: reply.body,
                    cookie: p.cookie,
                })
            }
            // duplicate or stale reply (e.g. answered after a retry)
            None => Err(Payload::new(reply)),
        }
    }

    /// Drive timeouts. Call for any timer tag `>= RPC_TAG_BASE`.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> TimerOutcome<M> {
        if tag < RPC_TAG_BASE {
            return TimerOutcome::NotMine;
        }
        let id = tag - RPC_TAG_BASE;
        let Some(p) = self.pending.get_mut(&id) else {
            return TimerOutcome::NotMine;
        };
        if p.retries_left == 0 {
            let p = self.pending.remove(&id).expect("present above");
            return TimerOutcome::Expired {
                id,
                body: p.body,
                cookie: p.cookie,
            };
        }
        if p.retries_left != u32::MAX {
            p.retries_left -= 1;
        }
        let body = p.body.clone();
        let target = p.target.clone();
        let timeout = p.timeout;
        if let Some(dst) = target.resolve(ctx) {
            let _ = ctx.send(
                dst,
                Payload::new(Request {
                    id,
                    from: ctx.pid(),
                    body,
                }),
            );
        }
        let timer = ctx.set_timer(timeout, RPC_TAG_BASE + id);
        self.pending.get_mut(&id).expect("still present").timer = timer;
        TimerOutcome::Resent
    }

    /// Abandon a pending request (e.g. the transaction it served aborted).
    pub fn cancel(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        if let Some(p) = self.pending.remove(&id) {
            ctx.cancel_timer(p.timer);
        }
    }

    fn fresh_id(&mut self, ctx: &Ctx<'_>) -> u64 {
        let salt = *self.salt.get_or_insert_with(|| {
            (self.id_space << 56) | ((ctx.pid().index as u64) << 24)
        });
        let id = salt + self.counter;
        self.counter += 1;
        id
    }
}

/// Bounded memory of recent replies, for deduplicating retried requests on
/// the server side. `check` before executing; `store` after replying.
pub struct ReplyCache<R> {
    capacity: usize,
    order: std::collections::VecDeque<u64>,
    replies: HashMap<u64, R>,
}

impl<R: Clone> ReplyCache<R> {
    pub fn new(capacity: usize) -> ReplyCache<R> {
        ReplyCache {
            capacity: capacity.max(1),
            order: std::collections::VecDeque::new(),
            replies: HashMap::new(),
        }
    }

    /// If this request id was already answered, return the cached reply.
    pub fn check(&self, id: u64) -> Option<R> {
        self.replies.get(&id).cloned()
    }

    /// Remember the reply sent for `id`.
    pub fn store(&mut self, id: u64, reply: R) {
        if self.replies.insert(id, reply).is_none() {
            self.order.push_back(id);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.replies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }

    /// All cached `(id, reply)` pairs in insertion order (for snapshotting
    /// a process-pair's state).
    pub fn entries(&self) -> Vec<(u64, R)> {
        self.order
            .iter()
            .filter_map(|id| self.replies.get(id).map(|r| (*id, r.clone())))
            .collect()
    }

    /// Rebuild a cache from `entries` (the inverse of [`Self::entries`]).
    pub fn restore(capacity: usize, entries: Vec<(u64, R)>) -> ReplyCache<R> {
        let mut c = ReplyCache::new(capacity);
        for (id, r) in entries {
            c.store(id, r);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::{Fault, Process, SimConfig, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Clone, Debug)]
    struct Ping(u32);
    #[derive(Debug, Clone, PartialEq)]
    struct Pong(u32);

    /// Echo server that can be configured to ignore the first `drop_first`
    /// requests (simulating loss) while still counting them.
    struct FlakyServer {
        drop_first: u32,
        seen: Rc<RefCell<u32>>,
    }
    impl Process for FlakyServer {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            let req = payload.expect::<Request<Ping>>();
            *self.seen.borrow_mut() += 1;
            if self.drop_first > 0 {
                self.drop_first -= 1;
                return;
            }
            reply(ctx, req.id, req.from, Pong(req.body.0 * 2));
        }
    }

    struct Client {
        server: Target,
        rpc: Rpc<Ping, Pong>,
        retries: u32,
        outcome: Rc<RefCell<Vec<String>>>,
    }
    impl Process for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let r = self.rpc.call(
                ctx,
                self.server.clone(),
                Ping(21),
                SimDuration::from_millis(10),
                self.retries,
                7,
            );
            if r.is_err() {
                self.outcome.borrow_mut().push("send-error".into());
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            match self.rpc.accept(ctx, payload) {
                Ok(c) => self
                    .outcome
                    .borrow_mut()
                    .push(format!("ok:{}:{}", c.body.0, c.cookie)),
                Err(_) => self.outcome.borrow_mut().push("stray".into()),
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            match self.rpc.on_timer(ctx, tag) {
                TimerOutcome::Expired { cookie, .. } => {
                    self.outcome.borrow_mut().push(format!("expired:{cookie}"))
                }
                TimerOutcome::Resent => self.outcome.borrow_mut().push("resent".into()),
                TimerOutcome::NotMine => {}
            }
        }
    }

    fn world() -> (World, NodeId) {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(4);
        (w, n)
    }

    #[test]
    fn call_completes() {
        let (mut w, n) = world();
        let seen = Rc::new(RefCell::new(0));
        let srv = w.spawn(
            n,
            0,
            Box::new(FlakyServer {
                drop_first: 0,
                seen: seen.clone(),
            }),
        );
        let outcome = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            n,
            1,
            Box::new(Client {
                server: Target::Pid(srv),
                rpc: Rpc::new(0),
                retries: 0,
                outcome: outcome.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(outcome.borrow().as_slice(), &["ok:42:7".to_string()]);
    }

    #[test]
    fn retransmits_until_answered() {
        let (mut w, n) = world();
        let seen = Rc::new(RefCell::new(0));
        let srv = w.spawn(
            n,
            0,
            Box::new(FlakyServer {
                drop_first: 2,
                seen: seen.clone(),
            }),
        );
        let outcome = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            n,
            1,
            Box::new(Client {
                server: Target::Pid(srv),
                rpc: Rpc::new(0),
                retries: 5,
                outcome: outcome.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(*seen.borrow(), 3, "two dropped + one answered");
        assert_eq!(
            outcome.borrow().as_slice(),
            &[
                "resent".to_string(),
                "resent".to_string(),
                "ok:42:7".to_string()
            ]
        );
    }

    #[test]
    fn bounded_retries_expire() {
        let (mut w, n) = world();
        let seen = Rc::new(RefCell::new(0));
        let srv = w.spawn(
            n,
            0,
            Box::new(FlakyServer {
                drop_first: u32::MAX,
                seen,
            }),
        );
        let outcome = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            n,
            1,
            Box::new(Client {
                server: Target::Pid(srv),
                rpc: Rpc::new(0),
                retries: 2,
                outcome: outcome.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(
            outcome.borrow().as_slice(),
            &[
                "resent".to_string(),
                "resent".to_string(),
                "expired:7".to_string()
            ]
        );
    }

    #[test]
    fn named_target_follows_reregistration() {
        // a "takeover": the name moves to a second server between retries
        struct NamedServer {
            answer: bool,
        }
        impl Process for NamedServer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                if !self.answer {
                    ctx.register_name("$SVC");
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
                let req = payload.expect::<Request<Ping>>();
                if self.answer {
                    reply(ctx, req.id, req.from, Pong(req.body.0));
                }
            }
        }
        let (mut w, n) = world();
        let silent = w.spawn(n, 0, Box::new(NamedServer { answer: false }));
        let answering = w.spawn(n, 2, Box::new(NamedServer { answer: true }));
        w.run_until_quiescent();
        let outcome = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            n,
            1,
            Box::new(Client {
                server: Target::Named(n, "$SVC".into()),
                rpc: Rpc::new(0),
                retries: 10,
                outcome: outcome.clone(),
            }),
        );
        // after 15ms, kill the silent primary and move the name
        w.run_for(SimDuration::from_millis(15));
        w.inject(Fault::KillProcess(silent));
        w.register_name(n, "$SVC", answering);
        w.run_until_quiescent();
        assert_eq!(outcome.borrow().last().unwrap(), "ok:21:7");
    }

    #[test]
    fn persistent_call_survives_partition() {
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(2);
        let b = w.add_node(2);
        let _l = w.add_link(a, b, SimDuration::from_millis(1));
        let seen = Rc::new(RefCell::new(0));
        let srv = w.spawn(
            b,
            0,
            Box::new(FlakyServer {
                drop_first: 0,
                seen: seen.clone(),
            }),
        );

        struct PersistentClient {
            server: Pid,
            rpc: Rpc<Ping, Pong>,
            done: Rc<RefCell<bool>>,
        }
        impl Process for PersistentClient {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.rpc.call_persistent(
                    ctx,
                    Target::Pid(self.server),
                    Ping(1),
                    SimDuration::from_millis(20),
                    0,
                );
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
                if self.rpc.accept(ctx, payload).is_ok() {
                    *self.done.borrow_mut() = true;
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
                let _ = self.rpc.on_timer(ctx, tag);
            }
        }
        let done = Rc::new(RefCell::new(false));
        // partition before the client even starts
        w.inject(Fault::Partition(vec![b]));
        w.spawn(
            a,
            0,
            Box::new(PersistentClient {
                server: srv,
                rpc: Rpc::new(0),
                done: done.clone(),
            }),
        );
        w.run_for(SimDuration::from_millis(200));
        assert!(!*done.borrow(), "unreachable while partitioned");
        w.inject(Fault::HealAllLinks);
        w.run_for(SimDuration::from_millis(200));
        assert!(*done.borrow(), "delivered after the partition healed");
    }

    #[test]
    fn reply_cache_dedups_and_evicts() {
        let mut c: ReplyCache<u32> = ReplyCache::new(2);
        assert!(c.is_empty());
        c.store(1, 10);
        c.store(2, 20);
        assert_eq!(c.check(1), Some(10));
        c.store(3, 30); // evicts 1
        assert_eq!(c.check(1), None);
        assert_eq!(c.check(2), Some(20));
        assert_eq!(c.check(3), Some(30));
        assert_eq!(c.len(), 2);
        // re-storing an existing id does not grow the cache
        c.store(3, 31);
        assert_eq!(c.len(), 2);
        assert_eq!(c.check(3), Some(31));
    }

    #[test]
    fn distinct_id_spaces_do_not_collide() {
        let a: Rpc<Ping, Pong> = Rpc::new(1);
        let b: Rpc<Ping, Pong> = Rpc::new(2);
        assert_ne!(a.id_space, b.id_space);
    }
}
