//! Process-pairs: the NonStop fault-tolerance mechanism.
//!
//! A pair is two processes running the same application logic in two
//! different CPUs of one node. The **primary** serves requests and sends
//! the **backup** *checkpoints* — deltas that keep the backup's state close
//! enough to finish anything the primary started. When the primary's CPU
//! fails, the backup takes over: it assumes the service name, runs the
//! application's takeover hook (e.g. redo in-doubt disc writes), and serves
//! on. When the failed CPU is reloaded, the surviving primary re-creates a
//! backup there and brings it up to date with a full state snapshot.
//!
//! Checkpoint granularity is chosen by the application: the paper's
//! DISCPROCESS checkpoints audit records *before* performing an update,
//! which is what lets TMF replace Write-Ahead-Log with checkpointing.
//!
//! A caveat the paper shares: a pair protects against *single*-module
//! failure. If both CPUs hosting the pair fail, the service is lost and
//! recovery falls to ROLLFORWARD (see `encompass-audit`).

use encompass_sim::{
    Ctx, CpuId, NodeId, Payload, Pid, Process, SystemEvent, TimerId,
};
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Which half of the pair a process currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    Primary,
    Backup,
}

/// Internal pair-coordination messages.
enum PairMsg {
    /// A new backup announces itself to the primary.
    BackupHello,
    /// Full application state, sent to a (re)created backup.
    Snapshot(Payload),
    /// An incremental state delta.
    Checkpoint(Payload),
}

/// Application logic hosted inside a process-pair.
pub trait PairApp: 'static {
    /// The service name the pair registers (e.g. `"$DATA1"`, `"$TMP"`).
    fn service_name(&self) -> String;

    /// Label for traces.
    fn kind(&self) -> &'static str {
        "pair-app"
    }

    /// Called when this process assumes the primary role — at initial spawn
    /// and again right after [`PairApp::on_takeover`]. Arm periodic timers
    /// here.
    fn on_primary_start(&mut self, _ctx: &mut PairCtx<'_, '_>) {}

    /// Handle a request (primary only).
    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, src: Pid, payload: Payload);

    /// Handle an application timer (primary only).
    fn on_timer(&mut self, _ctx: &mut PairCtx<'_, '_>, _tag: u64) {}

    /// Called on the backup when it becomes primary, before any new request
    /// is served: finish in-doubt work recorded by checkpoints.
    fn on_takeover(&mut self, _ctx: &mut PairCtx<'_, '_>) {}

    /// Apply a checkpoint delta (backup only).
    fn apply_checkpoint(&mut self, delta: Payload);

    /// Produce the full state for initializing a fresh backup.
    fn snapshot(&self) -> Payload;

    /// Replace state from a snapshot (backup only).
    fn restore(&mut self, snapshot: Payload);

    /// Extra system events (link failures etc.), primary only.
    fn on_system(&mut self, _ctx: &mut PairCtx<'_, '_>, _ev: SystemEvent) {}
}

/// The context handed to [`PairApp`] handlers: everything [`Ctx`] offers,
/// plus checkpointing to the backup.
pub struct PairCtx<'a, 'b> {
    inner: &'a mut Ctx<'b>,
    peer: Option<Pid>,
}

impl<'b> Deref for PairCtx<'_, 'b> {
    type Target = Ctx<'b>;
    fn deref(&self) -> &Self::Target {
        self.inner
    }
}

impl<'b> DerefMut for PairCtx<'_, 'b> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.inner
    }
}

impl PairCtx<'_, '_> {
    /// Send a state delta to the backup (no-op while no backup exists —
    /// the pair is then running exposed, as real pairs do between a CPU
    /// failure and its reload).
    pub fn checkpoint(&mut self, delta: Payload) {
        if let Some(peer) = self.peer {
            self.inner.count("pair.checkpoints", 1);
            let _ = self.inner.send(peer, Payload::new(PairMsg::Checkpoint(delta)));
        }
    }

    /// Is a backup currently in place?
    pub fn has_backup(&self) -> bool {
        self.peer.is_some()
    }
}

/// The [`Process`] wrapper that turns a [`PairApp`] into one half of a pair.
pub struct PairProcess<A: PairApp> {
    app: A,
    factory: Rc<dyn Fn() -> A>,
    role: Role,
    peer: Option<Pid>,
    /// The two CPUs this pair is bound to (primary's first at creation).
    home: (CpuId, CpuId),
}

impl<A: PairApp> PairProcess<A> {
    fn other_home(&self, mine: CpuId) -> CpuId {
        if self.home.0 == mine {
            self.home.1
        } else {
            self.home.0
        }
    }

    fn pair_ctx<'a, 'b>(&self, ctx: &'a mut Ctx<'b>) -> PairCtx<'a, 'b> {
        PairCtx {
            inner: ctx,
            peer: self.peer,
        }
    }
}

impl<A: PairApp> Process for PairProcess<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.subscribe_system();
        match self.role {
            Role::Primary => {
                ctx.register_name(&self.app.service_name());
                let mut pctx = self.pair_ctx(ctx);
                self.app.on_primary_start(&mut pctx);
            }
            Role::Backup => {
                if let Some(primary) = self.peer {
                    let _ = ctx.send(primary, Payload::new(PairMsg::BackupHello));
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, src: Pid, payload: Payload) {
        let payload = match payload.downcast::<PairMsg>() {
            Ok(PairMsg::BackupHello) => {
                // a backup (re)announced itself: adopt it and sync it
                self.peer = Some(src);
                let snap = self.app.snapshot();
                let _ = ctx.send(src, Payload::new(PairMsg::Snapshot(snap)));
                return;
            }
            Ok(PairMsg::Snapshot(snapshot)) => {
                self.app.restore(snapshot);
                return;
            }
            Ok(PairMsg::Checkpoint(delta)) => {
                self.app.apply_checkpoint(delta);
                return;
            }
            Err(other) => other,
        };
        match self.role {
            Role::Primary => {
                let mut pctx = self.pair_ctx(ctx);
                self.app.on_request(&mut pctx, src, payload);
            }
            Role::Backup => {
                // stale name resolution: pass it along to the primary
                if let Some(primary) = self.peer {
                    let _ = ctx.send(primary, payload);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, tag: u64) {
        if self.role == Role::Primary {
            let mut pctx = self.pair_ctx(ctx);
            self.app.on_timer(&mut pctx, tag);
        }
    }

    fn on_system(&mut self, ctx: &mut Ctx<'_>, ev: SystemEvent) {
        match ev {
            SystemEvent::CpuDown(node, cpu) if node == ctx.node() => {
                match self.role {
                    Role::Backup if self.peer.map(|p| p.cpu) == Some(cpu) => {
                        // the primary died with its CPU: take over
                        self.role = Role::Primary;
                        self.peer = None;
                        ctx.register_name(&self.app.service_name());
                        ctx.count("pair.takeovers", 1);
                        ctx.trace("pair.takeover", || self.app.service_name());
                        let mut pctx = self.pair_ctx(ctx);
                        self.app.on_takeover(&mut pctx);
                        let mut pctx = self.pair_ctx(ctx);
                        self.app.on_primary_start(&mut pctx);
                    }
                    Role::Primary if self.peer.map(|p| p.cpu) == Some(cpu) => {
                        // lost the backup: run exposed until the CPU reloads
                        self.peer = None;
                        ctx.count("pair.backup_lost", 1);
                    }
                    _ => {}
                }
            }
            SystemEvent::CpuUp(node, cpu)
                if node == ctx.node()
                    && self.role == Role::Primary
                    && self.peer.is_none()
                    && cpu == self.other_home(ctx.pid().cpu) =>
            {
                // the peer CPU is back: re-create our backup there
                let factory = Rc::clone(&self.factory);
                let backup = PairProcess {
                    app: (factory)(),
                    factory: Rc::clone(&self.factory),
                    role: Role::Backup,
                    peer: Some(ctx.pid()),
                    home: self.home,
                };
                if ctx.try_spawn(node, cpu, Box::new(backup)).is_some() {
                    ctx.count("pair.backup_respawned", 1);
                }
                // peer is set when the new backup's BackupHello arrives
            }
            _ => {}
        }
        if self.role == Role::Primary {
            let mut pctx = self.pair_ctx(ctx);
            self.app.on_system(&mut pctx, ev);
        }
    }

    fn kind(&self) -> &'static str {
        self.app.kind()
    }
}

/// A handle describing a spawned pair; requests are addressed by name so
/// they follow takeovers.
#[derive(Clone, Debug)]
pub struct PairHandle {
    pub node: NodeId,
    pub name: String,
    pub primary: Pid,
    pub backup: Pid,
}

impl PairHandle {
    /// The [`crate::rpc::Target`] for requests to this service.
    pub fn target(&self) -> crate::rpc::Target {
        crate::rpc::Target::Named(self.node, self.name.clone())
    }
}

/// Spawn a process-pair on `node`, primary on `cpu_primary`, backup on
/// `cpu_backup`. The factory must produce identical initial state each
/// time; it is retained so the pair can re-create a backup after a reload.
pub fn spawn_pair<A: PairApp>(
    world: &mut encompass_sim::World,
    node: NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
    factory: impl Fn() -> A + 'static,
) -> PairHandle {
    assert_ne!(
        cpu_primary, cpu_backup,
        "a pair must span two different CPUs"
    );
    let factory: Rc<dyn Fn() -> A> = Rc::new(factory);
    let home = (CpuId(cpu_primary), CpuId(cpu_backup));
    let app = (factory)();
    let name = app.service_name();
    let primary = world.spawn(
        node,
        cpu_primary,
        Box::new(PairProcess {
            app,
            factory: Rc::clone(&factory),
            role: Role::Primary,
            peer: None, // learned from the backup's hello
            home,
        }),
    );
    let backup = world.spawn(
        node,
        cpu_backup,
        Box::new(PairProcess {
            app: (factory)(),
            factory,
            role: Role::Backup,
            peer: Some(primary),
            home,
        }),
    );
    // make the name resolvable before the first simulated event runs
    world.register_name(node, &name, primary);
    PairHandle {
        node,
        name,
        primary,
        backup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{reply, ReplyCache, Request, Rpc, Target, TimerOutcome};
    use encompass_sim::{Fault, SimConfig, SimDuration, World};
    use std::cell::RefCell;
    use std::rc::Rc as StdRc;

    /// A replicated counter: add requests are checkpointed to the backup.
    struct Counter {
        name: String,
        value: u64,
        applied: ReplyCache<u64>,
    }

    #[derive(Clone)]
    struct Add(u64);

    impl Counter {
        fn new(name: &str) -> Counter {
            Counter {
                name: name.to_string(),
                value: 0,
                applied: ReplyCache::new(1024),
            }
        }
    }

    impl PairApp for Counter {
        fn service_name(&self) -> String {
            self.name.clone()
        }
        fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
            let req = payload.expect::<Request<Add>>();
            // dedup retried requests so at-least-once delivery stays exactly-once
            let value = if let Some(v) = self.applied.check(req.id) {
                v
            } else {
                self.value += req.body.0;
                self.applied.store(req.id, self.value);
                // checkpoint the *applied request*, not the raw value, so a
                // backup can dedup retries that arrive after takeover too
                ctx.checkpoint(Payload::new((req.id, req.body.0)));
                self.value
            };
            reply(ctx, req.id, req.from, value);
        }
        fn apply_checkpoint(&mut self, delta: Payload) {
            let (id, add) = delta.expect::<(u64, u64)>();
            if self.applied.check(id).is_none() {
                self.value += add;
                self.applied.store(id, self.value);
            }
        }
        fn snapshot(&self) -> Payload {
            Payload::new(self.value)
        }
        fn restore(&mut self, snapshot: Payload) {
            self.value = snapshot.expect::<u64>();
        }
    }

    /// Client that sends `n` Add(1) requests, one after the other, with
    /// aggressive retries, and records the final counter value.
    struct AddClient {
        target: Target,
        rpc: Rpc<Add, u64>,
        remaining: u64,
        last: StdRc<RefCell<Option<u64>>>,
    }
    impl Process for AddClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.kick(ctx);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            if let Ok(c) = self.rpc.accept(ctx, payload) {
                *self.last.borrow_mut() = Some(c.body);
                self.kick(ctx);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if matches!(self.rpc.on_timer(ctx, tag), TimerOutcome::Expired { .. }) {
                // name may be mid-takeover; try again
                self.kick_retry(ctx);
            }
        }
    }
    impl AddClient {
        fn kick(&mut self, ctx: &mut Ctx<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            self.kick_retry(ctx);
        }
        fn kick_retry(&mut self, ctx: &mut Ctx<'_>) {
            // bounded per-call retries; on expiry we re-issue a fresh call
            if self
                .rpc
                .call(
                    ctx,
                    self.target.clone(),
                    Add(1),
                    SimDuration::from_millis(20),
                    8,
                    0,
                )
                .is_err()
            {
                // name unresolvable during takeover: fall back to a
                // safe-delivery call that keeps retrying until it lands
                self.rpc.call_persistent(
                    ctx,
                    self.target.clone(),
                    Add(1),
                    SimDuration::from_millis(20),
                    0,
                );
            }
        }
    }

    #[test]
    fn pair_serves_requests() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(4);
        let h = spawn_pair(&mut w, n, 0, 1, || Counter::new("$CTR"));
        let last = StdRc::new(RefCell::new(None));
        w.spawn(
            n,
            2,
            Box::new(AddClient {
                target: h.target(),
                rpc: Rpc::new(0),
                remaining: 10,
                last: last.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(*last.borrow(), Some(10));
        assert_eq!(w.metrics().get("pair.checkpoints"), 10);
    }

    #[test]
    fn takeover_preserves_state_and_service() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(4);
        let h = spawn_pair(&mut w, n, 0, 1, || Counter::new("$CTR"));
        let last = StdRc::new(RefCell::new(None));
        w.spawn(
            n,
            2,
            Box::new(AddClient {
                target: h.target(),
                rpc: Rpc::new(0),
                remaining: 200,
                last: last.clone(),
            }),
        );
        // kill the primary's CPU mid-workload
        w.schedule_fault(
            encompass_sim::SimTime::from_micros(20_000),
            Fault::KillCpu(n, CpuId(0)),
        );
        w.run_until_quiescent();
        assert_eq!(w.metrics().get("pair.takeovers"), 1);
        // every one of the 200 adds is reflected exactly once
        assert_eq!(*last.borrow(), Some(200));
    }

    #[test]
    fn backup_respawns_after_reload_and_second_takeover_works() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(4);
        let h = spawn_pair(&mut w, n, 0, 1, || Counter::new("$CTR"));
        let last = StdRc::new(RefCell::new(None));
        w.spawn(
            n,
            2,
            Box::new(AddClient {
                target: h.target(),
                rpc: Rpc::new(0),
                remaining: 300,
                last: last.clone(),
            }),
        );
        use encompass_sim::SimTime;
        // primary dies; backup (cpu1) takes over
        w.schedule_fault(SimTime::from_micros(20_000), Fault::KillCpu(n, CpuId(0)));
        // cpu0 reloads; new backup is created there
        w.schedule_fault(SimTime::from_micros(60_000), Fault::RestoreCpu(n, CpuId(0)));
        // then the new primary (cpu1) dies; the re-created backup takes over
        w.schedule_fault(SimTime::from_micros(120_000), Fault::KillCpu(n, CpuId(1)));
        w.run_until_quiescent();
        assert_eq!(w.metrics().get("pair.takeovers"), 2);
        assert_eq!(w.metrics().get("pair.backup_respawned"), 1);
        assert_eq!(*last.borrow(), Some(300));
    }

    #[test]
    fn double_failure_loses_the_service() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(4);
        let h = spawn_pair(&mut w, n, 0, 1, || Counter::new("$CTR"));
        w.run_until_quiescent();
        w.inject(Fault::KillCpu(n, CpuId(0)));
        w.inject(Fault::KillCpu(n, CpuId(1)));
        w.run_for(SimDuration::from_millis(100));
        assert_eq!(w.lookup_name(n, &h.name), None, "service lost: both CPUs down");
    }

    #[test]
    #[should_panic(expected = "two different CPUs")]
    fn pair_must_span_two_cpus() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(4);
        let _ = spawn_pair(&mut w, n, 1, 1, || Counter::new("$X"));
    }
}
