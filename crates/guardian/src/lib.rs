//! # guardian
//!
//! The software abstractions the paper's GUARDIAN operating system provides
//! on top of the raw hardware, built here on `encompass-sim`:
//!
//! * **Process-pairs** ([`pair`]): a primary and a backup process in two
//!   different CPUs. The primary sends the backup *checkpoints* so that, if
//!   the primary's processor fails, the backup "has all the information it
//!   would need … to assume control … and carry through to completion any
//!   operation initiated by the primary". This is the NonStop mechanism the
//!   paper's DISCPROCESS, AUDITPROCESS, TMP, BACKOUTPROCESS, and TCP are all
//!   built from — and the reason TMF can treat checkpointing as the
//!   functional equivalent of Write-Ahead-Log.
//! * **Request/reply messaging** ([`rpc`]): correlation ids, timeouts and
//!   retransmission — the end-to-end protocol that "assures that data
//!   transmissions are reliably received". The two retry policies mirror
//!   the paper's two network message classes: *critical response* (bounded
//!   retries, caller is told of failure) and *safe delivery* (retried
//!   until deliverable).
//! * **An operator process** ([`operator`]): subscribes to hardware events
//!   and tallies them, standing in for the paper's console-printing
//!   operator pair.

pub mod operator;
pub mod pair;
pub mod rpc;

pub use operator::OperatorProcess;
pub use pair::{spawn_pair, PairApp, PairCtx, PairHandle, Role};
pub use rpc::{
    reply, Completion, ReplyCache, Request, Rpc, RpcReply, Target, TimerOutcome, RPC_TAG_BASE,
};
