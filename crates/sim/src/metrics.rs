//! Named counters aggregated over a simulation run.
//!
//! The experiment harnesses (message counts for the commit protocols, disc
//! forces for the WAL ablation, …) read these after a run. Counters are
//! created on first use; reading an absent counter yields zero.

use std::collections::BTreeMap;

/// Pre-resolved counter keys for one histogram: the hot observation path
/// (`Metrics::observe_handle`) must not build `format!` strings per bucket
/// per observation, so call sites intern the keys once at construction and
/// observe against the handle.
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    bounds: Vec<u64>,
    bucket_keys: Vec<String>,
    inf_key: String,
    count_key: String,
    sum_key: String,
}

impl HistogramHandle {
    /// Intern the counter keys for `name` over ascending `bounds`.
    pub fn new(name: &str, bounds: &[u64]) -> HistogramHandle {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        HistogramHandle {
            bounds: bounds.to_vec(),
            bucket_keys: bounds.iter().map(|b| format!("{name}.le_{b}")).collect(),
            inf_key: format!("{name}.le_inf"),
            count_key: format!("{name}.count"),
            sum_key: format!("{name}.sum"),
        }
    }
}

/// A set of named monotonic counters.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Increment the counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if it was never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Reset every counter to zero (keeps names; used between experiment
    /// phases to measure one phase in isolation).
    pub fn reset(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
    }

    /// Record one observation into a fixed-bound histogram built from plain
    /// counters: cumulative buckets `<name>.le_<bound>` (plus the implicit
    /// `<name>.le_inf`), an observation count `<name>.count`, and a running
    /// `<name>.sum`. Bounds must be ascending; the experiment harnesses
    /// read the buckets back with [`Metrics::with_prefix`].
    pub fn observe(&mut self, name: &str, value: u64, bounds: &[u64]) {
        // thin convenience wrapper; hot paths hold a pre-built handle
        self.observe_handle(&HistogramHandle::new(name, bounds), value);
    }

    /// Record one observation against interned keys (the hot path —
    /// allocates nothing).
    pub fn observe_handle(&mut self, h: &HistogramHandle, value: u64) {
        for (b, key) in h.bounds.iter().zip(&h.bucket_keys) {
            if value <= *b {
                self.add(key, 1);
            }
        }
        self.add(&h.inf_key, 1);
        self.add(&h.count_key, 1);
        self.add(&h.sum_key, value);
    }

    /// Mean of every observation recorded with [`Metrics::observe`] under
    /// `name` (zero if nothing was observed).
    pub fn observed_mean(&self, name: &str) -> f64 {
        let count = self.get(&format!("{name}.count"));
        if count == 0 {
            0.0
        } else {
            self.get(&format!("{name}.sum")) as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get() {
        let mut m = Metrics::new();
        assert_eq!(m.get("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.get("x"), 5);
    }

    #[test]
    fn prefix_query() {
        let mut m = Metrics::new();
        m.inc("net.msgs");
        m.inc("net.drops");
        m.inc("bus.msgs");
        let net = m.with_prefix("net.");
        assert_eq!(net.len(), 2);
        assert_eq!(net[0].0, "net.drops");
        assert_eq!(net[1].0, "net.msgs");
    }

    #[test]
    fn handle_observation_matches_string_api() {
        let mut by_name = Metrics::new();
        let mut by_handle = Metrics::new();
        let bounds = [10, 100, 1000];
        let h = HistogramHandle::new("lat", &bounds);
        for v in [3, 10, 11, 5_000] {
            by_name.observe("lat", v, &bounds);
            by_handle.observe_handle(&h, v);
        }
        assert_eq!(by_name.snapshot(), by_handle.snapshot());
        assert_eq!(by_handle.get("lat.le_10"), 2);
        assert_eq!(by_handle.get("lat.le_inf"), 4);
        assert_eq!(by_handle.get("lat.sum"), 3 + 10 + 11 + 5_000);
    }

    #[test]
    fn reset_keeps_names() {
        let mut m = Metrics::new();
        m.add("a", 3);
        m.reset();
        assert_eq!(m.get("a"), 0);
        assert_eq!(m.snapshot().len(), 1);
    }
}
