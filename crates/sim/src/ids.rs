//! Identifiers for the simulated hardware and software entities.
//!
//! A [`Pid`] identifies a process for the lifetime of the simulation; it
//! records which node and CPU the process runs on (mirroring GUARDIAN's
//! `<cpu,pin>` addressing, extended with the node number as EXPAND did).

use std::fmt;

/// A network node (a complete Tandem "system" of up to 16 processors).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

/// A processor module within a node (0-based, at most 16 per node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u8);

/// A point-to-point communications link between two nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// A process identifier: the node and CPU it lives on plus a
/// simulation-unique index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid {
    pub node: NodeId,
    pub cpu: CpuId,
    /// Simulation-global process index; unique across all nodes and never
    /// reused, so a `Pid` held after the process dies can never alias a
    /// different process.
    pub index: u32,
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\\N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\\N{}.{}.p{}", self.node.0, self.cpu.0, self.index)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_formatting() {
        let pid = Pid {
            node: NodeId(2),
            cpu: CpuId(5),
            index: 17,
        };
        assert_eq!(format!("{pid}"), "\\N2.5.p17");
        assert_eq!(format!("{}", NodeId(3)), "\\N3");
        assert_eq!(format!("{}", CpuId(7)), "cpu7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        assert_eq!(set.len(), 1);
        assert!(CpuId(0) < CpuId(1));
    }
}
