//! Failure injection.
//!
//! Every failure mode the paper discusses is injectable, either immediately
//! ([`crate::World::inject`]) or at a scheduled virtual time
//! ([`crate::World::schedule_fault`]):
//!
//! * processor-module failure (and restoration),
//! * interprocessor-bus failure — each node has two buses; intra-node
//!   messages flow while at least one is up,
//! * communication-line failure and network partition,
//! * individual process failure,
//! * mirrored-disc drive failure is injected at the storage layer (the disc
//!   model lives in stable storage), see `encompass-storage`.

use crate::ids::{CpuId, LinkId, NodeId, Pid};

/// A single injectable failure or repair action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Crash a processor module: every process on it dies instantly; other
    /// CPUs on the node are notified via `SystemEvent::CpuDown` after the
    /// failure-detection delay.
    KillCpu(NodeId, CpuId),
    /// Bring a crashed processor back (empty — a reload; processes must be
    /// respawned by software, e.g. a process-pair respawning its backup).
    RestoreCpu(NodeId, CpuId),
    /// Fail one of the two interprocessor buses of a node (`bus` is 0 or 1).
    KillBus(NodeId, u8),
    /// Repair an interprocessor bus.
    HealBus(NodeId, u8),
    /// Cut one network link. In-flight messages routed over it are lost.
    CutLink(LinkId),
    /// Restore a network link.
    HealLink(LinkId),
    /// Cut every link whose endpoints fall on opposite sides of the given
    /// node set, partitioning `group` from the rest of the network.
    Partition(Vec<NodeId>),
    /// Heal every link (undoes any combination of cuts/partitions).
    HealAllLinks,
    /// Kill a single process (models an application process failure, as
    /// distinct from a whole-CPU failure).
    KillProcess(Pid),
}

impl Fault {
    /// Human-readable label used in traces and experiment output.
    pub fn label(&self) -> String {
        match self {
            Fault::KillCpu(n, c) => format!("kill-cpu {n} {c}"),
            Fault::RestoreCpu(n, c) => format!("restore-cpu {n} {c}"),
            Fault::KillBus(n, b) => format!("kill-bus {n} bus{b}"),
            Fault::HealBus(n, b) => format!("heal-bus {n} bus{b}"),
            Fault::CutLink(l) => format!("cut-{l:?}"),
            Fault::HealLink(l) => format!("heal-{l:?}"),
            Fault::Partition(g) => format!("partition {g:?}"),
            Fault::HealAllLinks => "heal-all-links".to_string(),
            Fault::KillProcess(p) => format!("kill-process {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(
            Fault::KillCpu(NodeId(1), CpuId(2)).label(),
            "kill-cpu \\N1 cpu2"
        );
        assert_eq!(Fault::HealAllLinks.label(), "heal-all-links");
        assert!(Fault::Partition(vec![NodeId(0)]).label().contains("N0"));
    }
}
