//! Simulation configuration: the virtual-hardware cost model and the RNG
//! seed that makes a run reproducible.
//!
//! The latency constants are loosely calibrated to the hardware the paper
//! describes (13.5 MB/s dual interprocessor bus, early-1980s discs, 9.6 kb/s
//! to 56 kb/s network trunks), but their *ratios* are what the experiments
//! depend on: local < bus < network, and disc I/O dominating everything.

use crate::time::SimDuration;

/// Tunable cost model and determinism knobs for a [`crate::World`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the kernel RNG. Same seed + same fault schedule = same trace.
    pub seed: u64,
    /// Latency of a message between two processes on the same CPU.
    pub local_latency: SimDuration,
    /// Latency of a message across the interprocessor bus (same node,
    /// different CPU).
    pub bus_latency: SimDuration,
    /// Fixed per-hop latency added by each network link in the message path
    /// (on top of the per-link latency configured when the link is created).
    pub net_hop_overhead: SimDuration,
    /// Random jitter added to every message delivery, drawn uniformly from
    /// `0..=jitter` microseconds. Zero disables jitter entirely.
    pub jitter: SimDuration,
    /// Time for a rotating-media access (seek + latency); charged by the
    /// disc model per physical I/O.
    pub disc_access: SimDuration,
    /// Additional transfer time per block of a physical disc I/O.
    pub disc_transfer_per_block: SimDuration,
    /// How long after a CPU failure the remaining CPUs of the node learn of
    /// it (the "I'm alive" protocol period in real GUARDIAN).
    pub failure_detect_delay: SimDuration,
    /// Keep a human-readable trace of every event (expensive; for tests and
    /// debugging). The rolling [`crate::World::trace_hash`] is kept always.
    pub trace_enabled: bool,
    /// Maximum number of retained trace events (oldest dropped first).
    pub trace_capacity: usize,
    /// Record per-transaction flight events (see [`crate::FlightRecorder`]).
    /// A pure side channel: on or off, the trace hash is identical.
    pub flight_recorder: bool,
    /// Flight-event ring capacity per node (oldest dropped first).
    pub flight_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xE0C0_1981,
            local_latency: SimDuration::from_micros(50),
            bus_latency: SimDuration::from_micros(150),
            net_hop_overhead: SimDuration::from_micros(500),
            jitter: SimDuration::ZERO,
            disc_access: SimDuration::from_micros(25_000),
            disc_transfer_per_block: SimDuration::from_micros(500),
            failure_detect_delay: SimDuration::from_millis(5),
            trace_enabled: false,
            trace_capacity: 65_536,
            flight_recorder: false,
            flight_capacity: 65_536,
        }
    }
}

impl SimConfig {
    /// A config with the given seed and all other values at their defaults.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Enable the human-readable trace (builder style).
    pub fn traced(mut self) -> Self {
        self.trace_enabled = true;
        self
    }

    /// Enable the transaction flight recorder (builder style).
    pub fn flight_recording(mut self) -> Self {
        self.flight_recorder = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let c = SimConfig::default();
        assert!(c.local_latency < c.bus_latency);
        assert!(c.bus_latency < c.net_hop_overhead);
        assert!(c.net_hop_overhead < c.disc_access);
    }

    #[test]
    fn builders() {
        let c = SimConfig::with_seed(7).traced().flight_recording();
        assert_eq!(c.seed, 7);
        assert!(c.trace_enabled);
        assert!(c.flight_recorder);
        assert!(!SimConfig::default().flight_recorder, "off by default");
    }
}
