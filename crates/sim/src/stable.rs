//! Stable storage: simulated disc media that survive processor failures.
//!
//! A `DISCPROCESS` pair can lose both of its processors, but the bits on the
//! platters remain. Modeling that correctly is essential for ROLLFORWARD
//! (recovery from total node failure). The kernel therefore owns a
//! type-erased key/value store of "media" objects; storage-layer processes
//! access their volume's media through [`crate::Ctx::stable`], and the media
//! outlive any process.
//!
//! Media objects are plain Rust values (e.g. the storage crate's block
//! arrays); the type is chosen by the layer that creates them.

use std::any::Any;
use std::collections::BTreeMap;

/// Type-erased store of persistent media, keyed by name
/// (e.g. `"\\N0.$DATA1"` for a disc volume).
#[derive(Default)]
pub struct StableStorage {
    media: BTreeMap<String, Box<dyn Any>>,
}

impl StableStorage {
    pub fn new() -> StableStorage {
        StableStorage::default()
    }

    /// Create the media object `key` with `init` if absent, then borrow it.
    /// Panics if a media object with the same key exists under a different
    /// type — that is a wiring bug, not a runtime condition.
    pub fn get_or_create<T: Any, F: FnOnce() -> T>(&mut self, key: &str, init: F) -> &mut T {
        self.media
            .entry(key.to_string())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("stable media {key:?} exists with a different type"))
    }

    /// Borrow existing media, if present and of type `T`.
    pub fn get_mut<T: Any>(&mut self, key: &str) -> Option<&mut T> {
        self.media.get_mut(key)?.downcast_mut::<T>()
    }

    /// Borrow existing media immutably.
    pub fn get<T: Any>(&self, key: &str) -> Option<&T> {
        self.media.get(key)?.downcast_ref::<T>()
    }

    /// True if a media object with this key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.media.contains_key(key)
    }

    /// Destroy a media object (models scratching a disc pack). Returns true
    /// if something was removed.
    pub fn remove(&mut self, key: &str) -> bool {
        self.media.remove(key).is_some()
    }

    /// Names of all media, in order.
    pub fn keys(&self) -> Vec<String> {
        self.media.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_mutate() {
        let mut s = StableStorage::new();
        *s.get_or_create("v", || 0u32) += 5;
        *s.get_or_create("v", || 0u32) += 2;
        assert_eq!(*s.get::<u32>("v").unwrap(), 7);
    }

    #[test]
    fn type_isolation() {
        let mut s = StableStorage::new();
        s.get_or_create("v", || 1u32);
        assert!(s.get::<String>("v").is_none());
        assert!(s.get_mut::<String>("v").is_none());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn conflicting_create_panics() {
        let mut s = StableStorage::new();
        s.get_or_create("v", || 1u32);
        s.get_or_create("v", String::new);
    }

    #[test]
    fn remove_and_keys() {
        let mut s = StableStorage::new();
        s.get_or_create("a", || 1u8);
        s.get_or_create("b", || 2u8);
        assert_eq!(s.keys(), vec!["a".to_string(), "b".to_string()]);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert!(!s.contains("a"));
    }
}
