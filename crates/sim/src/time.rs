//! Virtual time. The simulation clock counts microseconds from the start of
//! the run; all latencies in [`crate::SimConfig`] are expressed in the same
//! unit. `SimTime` is a point on the clock, `SimDuration` a distance.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// Saturating difference between two points in time.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// Scale by an integer factor (used for retry backoff).
    pub const fn mul(self, k: u64) -> Self {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!(t.since(SimTime::from_micros(3)).as_micros(), 12);
        // saturating, never panics
        assert_eq!(SimTime::from_micros(3).since(t), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_micros(2_500_000).as_millis(), 2_500);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "1.500000s");
        assert_eq!(SimTime::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }

    #[test]
    fn ordering_and_mul() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimDuration::from_micros(3).mul(4).as_micros(), 12);
        assert_eq!(
            (SimDuration::from_micros(9) - SimDuration::from_micros(4)).as_micros(),
            5
        );
    }
}
