//! The simulated hardware topology: nodes (each a multiprocessor with dual
//! interprocessor buses), and the network links connecting them.
//!
//! Inter-node routing follows the paper's EXPAND description: dynamic
//! best-path routing with automatic re-routing when a line fails. The
//! kernel recomputes shortest paths (Dijkstra over link latencies) whenever
//! the topology changes.

use crate::ids::{CpuId, LinkId, NodeId};
use crate::time::SimDuration;
use std::collections::{BinaryHeap, HashMap};

pub(crate) struct CpuState {
    pub up: bool,
}

pub(crate) struct NodeState {
    pub cpus: Vec<CpuState>,
    /// Dual interprocessor buses; intra-node traffic flows while either is up.
    pub buses: [bool; 2],
}

impl NodeState {
    pub fn new(cpu_count: u8) -> NodeState {
        assert!(
            (2..=16).contains(&cpu_count),
            "a Tandem node has 2..=16 processors, got {cpu_count}"
        );
        NodeState {
            cpus: (0..cpu_count).map(|_| CpuState { up: true }).collect(),
            buses: [true, true],
        }
    }

    pub fn bus_up(&self) -> bool {
        self.buses[0] || self.buses[1]
    }

    pub fn cpu_up(&self, cpu: CpuId) -> bool {
        self.cpus.get(cpu.0 as usize).map(|c| c.up).unwrap_or(false)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct LinkState {
    pub a: NodeId,
    pub b: NodeId,
    pub latency: SimDuration,
    pub up: bool,
    /// Probability (0.0..=1.0) that a message routed over this link is lost.
    pub loss_prob: f64,
}

/// A computed route: the links to traverse and the total link latency.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Route {
    pub links: Vec<LinkId>,
    pub latency: SimDuration,
}

/// The full hardware graph plus a lazily rebuilt routing table.
#[derive(Default)]
pub(crate) struct Topology {
    pub nodes: Vec<NodeState>,
    pub links: Vec<LinkState>,
    routes: HashMap<(NodeId, NodeId), Option<Route>>,
    dirty: bool,
}

impl Topology {
    pub fn new() -> Topology {
        Topology {
            nodes: Vec::new(),
            links: Vec::new(),
            routes: HashMap::new(),
            dirty: false,
        }
    }

    pub fn add_node(&mut self, cpus: u8) -> NodeId {
        assert!(self.nodes.len() < 255, "too many nodes");
        self.nodes.push(NodeState::new(cpus));
        NodeId((self.nodes.len() - 1) as u8)
    }

    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> LinkId {
        assert!(a != b, "a link must join two distinct nodes");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        self.links.push(LinkState {
            a,
            b,
            latency,
            up: true,
            loss_prob: 0.0,
        });
        self.dirty = true;
        LinkId((self.links.len() - 1) as u32)
    }

    pub fn node(&self, id: NodeId) -> &NodeState {
        &self.nodes[id.0 as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeState {
        &mut self.nodes[id.0 as usize]
    }

    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        let link = &mut self.links[id.0 as usize];
        if link.up != up {
            link.up = up;
            self.dirty = true;
        }
    }

    pub fn set_link_loss(&mut self, id: LinkId, prob: f64) {
        self.links[id.0 as usize].loss_prob = prob.clamp(0.0, 1.0);
    }

    pub fn link(&self, id: LinkId) -> &LinkState {
        &self.links[id.0 as usize]
    }

    /// Links that cross the boundary between `group` and the rest.
    pub fn crossing_links(&self, group: &[NodeId]) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| group.contains(&l.a) != group.contains(&l.b))
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// All currently-down links.
    pub fn down_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.up)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Best route between two nodes over up links, or `None` if partitioned.
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Option<Route> {
        if self.dirty {
            self.routes.clear();
            self.dirty = false;
        }
        if let Some(cached) = self.routes.get(&(from, to)) {
            return cached.clone();
        }
        let computed = self.dijkstra(from, to);
        self.routes.insert((from, to), computed.clone());
        computed
    }

    fn dijkstra(&self, from: NodeId, to: NodeId) -> Option<Route> {
        if from == to {
            return Some(Route {
                links: Vec::new(),
                latency: SimDuration::ZERO,
            });
        }
        let n = self.nodes.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.0 as usize] = 0;
        // (Reverse(dist), node) — ties broken by node id for determinism
        heap.push(std::cmp::Reverse((0u64, from.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for (i, l) in self.links.iter().enumerate() {
                if !l.up {
                    continue;
                }
                let v = if l.a.0 == u {
                    l.b
                } else if l.b.0 == u {
                    l.a
                } else {
                    continue;
                };
                let nd = d.saturating_add(l.latency.as_micros().max(1));
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    prev[v.0 as usize] = Some((NodeId(u), LinkId(i as u32)));
                    heap.push(std::cmp::Reverse((nd, v.0)));
                }
            }
        }
        if dist[to.0 as usize] == u64::MAX {
            return None;
        }
        let mut links = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, l) = prev[cur.0 as usize].expect("path chain broken");
            links.push(l);
            cur = p;
        }
        links.reverse();
        Some(Route {
            links,
            latency: SimDuration::from_micros(dist[to.0 as usize]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn direct_route() {
        let mut t = Topology::new();
        let a = t.add_node(2);
        let b = t.add_node(2);
        let l = t.add_link(a, b, ms(5));
        let r = t.route(a, b).unwrap();
        assert_eq!(r.links, vec![l]);
        assert_eq!(r.latency, ms(5));
    }

    #[test]
    fn reroutes_around_failed_link() {
        let mut t = Topology::new();
        let a = t.add_node(2);
        let b = t.add_node(2);
        let c = t.add_node(2);
        let ab = t.add_link(a, b, ms(1));
        let ac = t.add_link(a, c, ms(1));
        let cb = t.add_link(c, b, ms(1));
        // direct path wins first
        assert_eq!(t.route(a, b).unwrap().links, vec![ab]);
        // after the direct line fails, traffic re-routes via c
        t.set_link_up(ab, false);
        assert_eq!(t.route(a, b).unwrap().links, vec![ac, cb]);
        // full partition
        t.set_link_up(ac, false);
        assert!(t.route(a, b).is_none());
        // heal
        t.set_link_up(ab, true);
        assert_eq!(t.route(a, b).unwrap().links, vec![ab]);
    }

    #[test]
    fn picks_lowest_latency_path() {
        let mut t = Topology::new();
        let a = t.add_node(2);
        let b = t.add_node(2);
        let c = t.add_node(2);
        let _slow = t.add_link(a, b, ms(100));
        let ac = t.add_link(a, c, ms(1));
        let cb = t.add_link(c, b, ms(1));
        assert_eq!(t.route(a, b).unwrap().links, vec![ac, cb]);
    }

    #[test]
    fn self_route_is_empty() {
        let mut t = Topology::new();
        let a = t.add_node(2);
        let r = t.route(a, a).unwrap();
        assert!(r.links.is_empty());
        assert_eq!(r.latency, SimDuration::ZERO);
    }

    #[test]
    fn crossing_links_identifies_partition_boundary() {
        let mut t = Topology::new();
        let a = t.add_node(2);
        let b = t.add_node(2);
        let c = t.add_node(2);
        let ab = t.add_link(a, b, ms(1));
        let ac = t.add_link(a, c, ms(1));
        let bc = t.add_link(b, c, ms(1));
        let crossing = t.crossing_links(&[a]);
        assert_eq!(crossing, vec![ab, ac]);
        let crossing = t.crossing_links(&[a, b]);
        assert_eq!(crossing, vec![ac, bc]);
    }

    #[test]
    fn bus_and_cpu_state() {
        let mut n = NodeState::new(4);
        assert!(n.bus_up());
        n.buses[0] = false;
        assert!(n.bus_up());
        n.buses[1] = false;
        assert!(!n.bus_up());
        assert!(n.cpu_up(CpuId(3)));
        assert!(!n.cpu_up(CpuId(4)));
    }

    #[test]
    #[should_panic(expected = "2..=16")]
    fn node_size_validated() {
        NodeState::new(1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Reference: Bellman-Ford distances over up links.
        fn reference_dists(t: &Topology, from: NodeId) -> Vec<Option<u64>> {
            let n = t.nodes.len();
            let mut d: Vec<Option<u64>> = vec![None; n];
            d[from.0 as usize] = Some(0);
            for _ in 0..n {
                for l in &t.links {
                    if !l.up {
                        continue;
                    }
                    for (a, b) in [(l.a, l.b), (l.b, l.a)] {
                        if let Some(da) = d[a.0 as usize] {
                            let nd = da + l.latency.as_micros().max(1);
                            if d[b.0 as usize].map(|x| nd < x).unwrap_or(true) {
                                d[b.0 as usize] = Some(nd);
                            }
                        }
                    }
                }
            }
            d
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn routing_matches_reference(
                n in 2usize..7,
                edges in prop::collection::vec((0u8..7, 0u8..7, 1u64..50, any::<bool>()), 0..15)
            ) {
                let mut t = Topology::new();
                for _ in 0..n {
                    t.add_node(2);
                }
                for (a, b, lat, up) in edges {
                    let (a, b) = (a % n as u8, b % n as u8);
                    if a == b {
                        continue;
                    }
                    let l = t.add_link(NodeId(a), NodeId(b), SimDuration::from_micros(lat));
                    t.set_link_up(l, up);
                }
                let refd = reference_dists(&t, NodeId(0));
                for to in 0..n as u8 {
                    let route = t.route(NodeId(0), NodeId(to));
                    match (route, refd[to as usize]) {
                        (Some(r), Some(d)) => {
                            prop_assert_eq!(r.latency.as_micros(), d, "distance to {}", to);
                            // the returned path is connected and uses up links
                            let mut cur = NodeId(0);
                            for link in &r.links {
                                let l = t.link(*link);
                                prop_assert!(l.up);
                                prop_assert!(l.a == cur || l.b == cur, "path connected");
                                cur = if l.a == cur { l.b } else { l.a };
                            }
                            prop_assert_eq!(cur, NodeId(to), "path ends at the destination");
                        }
                        (None, None) => {}
                        (got, want) => prop_assert!(false, "to {}: got {:?}, want {:?}", to, got, want),
                    }
                }
            }
        }
    }
}
