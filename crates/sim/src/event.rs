//! The kernel's internal event queue.
//!
//! Events are strictly ordered by `(time, sequence)`: two events scheduled
//! for the same virtual instant fire in the order they were scheduled. This
//! total order is the root of the simulator's determinism.

use crate::fault::Fault;
use crate::ids::{LinkId, Pid};
use crate::msg::Payload;
use crate::process::{SystemEvent, TimerId};
use crate::time::SimTime;
use std::cmp::Ordering;

/// What happens when an event fires.
pub(crate) enum EventKind {
    /// Deliver a message. `via` lists the network links the message was
    /// routed over when it was sent; if any has since gone down, the message
    /// is lost in flight.
    Deliver {
        dst: Pid,
        src: Pid,
        payload: Payload,
        via: Vec<LinkId>,
    },
    /// Fire a timer owned by `pid` (ignored if cancelled or the owner died).
    Timer { pid: Pid, timer: TimerId, tag: u64 },
    /// Deliver a system notification to a subscriber.
    System { dst: Pid, ev: SystemEvent },
    /// Apply a scheduled fault.
    Fault(Fault),
    /// Run `on_start` for a freshly spawned process.
    Start { pid: Pid },
}

pub(crate) struct QueuedEvent {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(at: u64, seq: u64) -> QueuedEvent {
        QueuedEvent {
            at: SimTime::from_micros(at),
            seq,
            kind: EventKind::Fault(Fault::HealAllLinks),
        }
    }

    #[test]
    fn pops_earliest_first_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(10, 2));
        heap.push(ev(5, 3));
        heap.push(ev(10, 1));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.at.as_micros(), e.seq))
            .collect();
        assert_eq!(order, vec![(5, 3), (10, 1), (10, 2)]);
    }
}
