//! The process abstraction and the context handle given to handlers.
//!
//! A [`Process`] is the unit of software in the simulated GUARDIAN world:
//! it lives on one CPU, owns private state, and reacts to messages, timers,
//! and system notifications. Handlers run atomically with respect to
//! failures — a CPU crash happens *between* events, never in the middle of
//! a handler — mirroring the paper's model in which a process either
//! completes an operation or disappears.

use crate::ids::{CpuId, NodeId, Pid};
use crate::kernel::World;
use crate::msg::Payload;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// A timer handle, unique for the lifetime of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

/// Why a send failed. GUARDIAN surfaced equivalent errors through File
/// System error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The destination process is dead (or was never spawned).
    NoSuchProcess,
    /// No network path currently exists to the destination node.
    Unreachable,
    /// Both interprocessor buses of the node are down.
    BusDown,
    /// No process is registered under the requested name.
    UnknownName,
}

/// Hardware notifications delivered to subscribed processes
/// (see [`Ctx::subscribe_system`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemEvent {
    /// A processor in the subscriber's own node failed (the "I'm alive"
    /// protocol noticed a missing heartbeat). Delivered after the
    /// failure-detection delay.
    CpuDown(NodeId, CpuId),
    /// A processor in the subscriber's own node was reloaded.
    CpuUp(NodeId, CpuId),
    /// A network link failed (delivered to subscribers on all nodes; remote
    /// software normally learns of partitions through send errors and
    /// timeouts instead, but the operator process wants to log this).
    LinkDown(crate::ids::LinkId),
    /// A network link was restored.
    LinkUp(crate::ids::LinkId),
}

/// Behaviour of a simulated process. All methods have default no-op
/// implementations except [`Process::on_message`].
pub trait Process: 'static {
    /// Called once, when the process is scheduled for the first time.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called for every message delivered to this process.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, src: Pid, payload: Payload);

    /// Called when a timer set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId, _tag: u64) {}

    /// Called for system notifications, if subscribed.
    fn on_system(&mut self, _ctx: &mut Ctx<'_>, _ev: SystemEvent) {}

    /// Human-readable process kind for traces.
    fn kind(&self) -> &'static str {
        "process"
    }
}

/// The handle a process uses to interact with the world while handling an
/// event. Everything a process can observe or effect goes through here.
pub struct Ctx<'a> {
    pub(crate) world: &'a mut World,
    pub(crate) pid: Pid,
    pub(crate) exited: bool,
}

impl<'a> Ctx<'a> {
    /// This process's identity.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.pid.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The simulation cost model.
    pub fn config(&self) -> &crate::SimConfig {
        self.world.config()
    }

    /// Send a message. Latency is chosen by locality (same CPU, bus, or
    /// network route); see the crate docs for the failure semantics.
    pub fn send(&mut self, dst: Pid, payload: Payload) -> Result<(), SendError> {
        self.world.kernel_send(self.pid, dst, payload)
    }

    /// Send to the process registered under `name` on `node`.
    /// Returns the resolved pid so the caller can await a reply from it.
    pub fn send_named(
        &mut self,
        node: NodeId,
        name: &str,
        payload: Payload,
    ) -> Result<Pid, SendError> {
        let dst = self
            .world
            .lookup_name(node, name)
            .ok_or(SendError::UnknownName)?;
        self.world.kernel_send(self.pid, dst, payload)?;
        Ok(dst)
    }

    /// Resolve a registered process name (only returns live processes).
    pub fn lookup_name(&self, node: NodeId, name: &str) -> Option<Pid> {
        self.world.lookup_name(node, name)
    }

    /// Register this process under `name` on its own node, replacing any
    /// previous registrant (used by a backup taking over a service name).
    pub fn register_name(&mut self, name: &str) {
        self.world.register_name(self.pid.node, name, self.pid);
    }

    /// Arm a one-shot timer; `tag` is returned to `on_timer` for dispatch.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.world.kernel_set_timer(self.pid, delay, tag)
    }

    /// Cancel a previously armed timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.world.kernel_cancel_timer(timer);
    }

    /// Subscribe to [`SystemEvent`] notifications.
    pub fn subscribe_system(&mut self) {
        self.world.subscribe_system(self.pid);
    }

    /// Spawn a new process on any node/CPU. Fails if the CPU is down.
    pub fn try_spawn(
        &mut self,
        node: NodeId,
        cpu: CpuId,
        process: Box<dyn Process>,
    ) -> Option<Pid> {
        self.world.try_spawn(node, cpu, process)
    }

    /// Terminate this process after the current handler returns.
    pub fn exit(&mut self) {
        self.exited = true;
    }

    /// Is the given process alive?
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.world.is_alive(pid)
    }

    /// Is the given CPU up?
    pub fn cpu_up(&self, node: NodeId, cpu: CpuId) -> bool {
        self.world.cpu_up(node, cpu)
    }

    /// Does a network path to `node` currently exist?
    pub fn reachable(&mut self, node: NodeId) -> bool {
        self.world.reachable(self.pid.node, node)
    }

    /// Number of CPUs configured on a node.
    pub fn cpu_count(&self, node: NodeId) -> u8 {
        self.world.cpu_count(node)
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> u8 {
        self.world.node_count()
    }

    /// The kernel RNG (deterministic per seed).
    pub fn rng(&mut self) -> &mut StdRng {
        self.world.rng()
    }

    /// Access stable (crash-surviving) media.
    pub fn stable(&mut self) -> &mut crate::StableStorage {
        self.world.stable_mut()
    }

    /// Bump a named metric counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.world.metrics_mut().add(name, delta);
    }

    /// Record one observation into a counter-backed histogram (see
    /// [`crate::Metrics::observe`]).
    pub fn observe(&mut self, name: &str, value: u64, bounds: &[u64]) {
        self.world.metrics_mut().observe(name, value, bounds);
    }

    /// Record one observation against a pre-resolved histogram handle
    /// (the allocation-free hot path; see [`crate::HistogramHandle`]).
    pub fn observe_handle(&mut self, h: &crate::HistogramHandle, value: u64) {
        self.world.metrics_mut().observe_handle(h, value);
    }

    /// Record a transaction flight event attributed to this process
    /// (no-op unless [`crate::SimConfig::flight_recorder`] is on).
    pub fn flight(&mut self, transid: crate::FlightTransid, cause: crate::FlightCause) {
        let now = self.world.now();
        let pid = self.pid;
        self.world.flightrec_mut().record(now, pid, transid, cause);
    }

    /// Record a trace event attributed to this process.
    pub fn trace(&mut self, kind: &'static str, detail: impl FnOnce() -> String) {
        self.world.trace_note(kind, self.pid.index as u64, detail);
    }
}
