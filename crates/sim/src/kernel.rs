//! The simulation kernel: owns all processes, hardware state, the event
//! queue, stable storage, metrics, and the fault injector.

use crate::config::SimConfig;
use crate::event::{EventKind, QueuedEvent};
use crate::fault::Fault;
use crate::flightrec::FlightRecorder;
use crate::ids::{CpuId, LinkId, NodeId, Pid};
use crate::metrics::Metrics;
use crate::msg::Payload;
use crate::process::{Ctx, Process, SendError, SystemEvent, TimerId};
use crate::stable::StableStorage;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap, HashSet};

struct ProcSlot {
    pid: Pid,
    alive: bool,
    kind: &'static str,
    process: Option<Box<dyn Process>>,
}

/// The simulated world. Construct one, build the topology, spawn processes,
/// schedule faults, then drive it with [`World::run_until`] /
/// [`World::run_for`] / [`World::run_until_quiescent`].
pub struct World {
    cfg: SimConfig,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent>,
    procs: Vec<ProcSlot>,
    topology: Topology,
    names: HashMap<(NodeId, String), Pid>,
    stable: StableStorage,
    rng: StdRng,
    metrics: Metrics,
    trace: Trace,
    flightrec: FlightRecorder,
    cancelled_timers: HashSet<TimerId>,
    next_timer: u64,
    subscribers: Vec<Pid>,
    events_processed: u64,
}

impl World {
    pub fn new(cfg: SimConfig) -> World {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let trace = Trace::new(cfg.trace_enabled, cfg.trace_capacity);
        let flightrec = FlightRecorder::new(cfg.flight_recorder, cfg.flight_capacity);
        World {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            procs: Vec::new(),
            topology: Topology::new(),
            names: HashMap::new(),
            stable: StableStorage::new(),
            rng,
            metrics: Metrics::new(),
            trace,
            flightrec,
            cancelled_timers: HashSet::new(),
            next_timer: 0,
            subscribers: Vec::new(),
            events_processed: 0,
        }
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a node with `cpus` processor modules (2..=16).
    pub fn add_node(&mut self, cpus: u8) -> NodeId {
        self.topology.add_node(cpus)
    }

    /// Connect two nodes with a communications link of the given latency.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> LinkId {
        self.topology.add_link(a, b, latency)
    }

    /// Set a per-link message-loss probability (exercises the end-to-end
    /// retransmission protocol in the `guardian` crate).
    pub fn set_link_loss(&mut self, link: LinkId, prob: f64) {
        self.topology.set_link_loss(link, prob);
    }

    pub fn node_count(&self) -> u8 {
        self.topology.nodes.len() as u8
    }

    pub fn cpu_count(&self, node: NodeId) -> u8 {
        self.topology.node(node).cpus.len() as u8
    }

    pub fn cpu_up(&self, node: NodeId, cpu: CpuId) -> bool {
        self.topology.node(node).cpu_up(cpu)
    }

    pub fn link_up(&self, link: LinkId) -> bool {
        self.topology.link(link).up
    }

    pub fn reachable(&mut self, from: NodeId, to: NodeId) -> bool {
        self.topology.route(from, to).is_some()
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Spawn a process; panics if the target CPU is down (a driver bug).
    pub fn spawn(&mut self, node: NodeId, cpu: u8, process: Box<dyn Process>) -> Pid {
        self.try_spawn(node, CpuId(cpu), process)
            .unwrap_or_else(|| panic!("spawn on a down CPU {node} cpu{cpu}"))
    }

    /// Spawn a process; `None` if the target CPU is down.
    pub fn try_spawn(
        &mut self,
        node: NodeId,
        cpu: CpuId,
        process: Box<dyn Process>,
    ) -> Option<Pid> {
        if !self.topology.node(node).cpu_up(cpu) {
            return None;
        }
        let pid = Pid {
            node,
            cpu,
            index: self.procs.len() as u32,
        };
        let kind = process.kind();
        self.procs.push(ProcSlot {
            pid,
            alive: true,
            kind,
            process: Some(process),
        });
        self.push_event(self.now, EventKind::Start { pid });
        Some(pid)
    }

    /// The `Process::kind` label of a process (for diagnostics), if it was
    /// ever spawned.
    pub fn process_kind(&self, pid: Pid) -> Option<&'static str> {
        self.procs.get(pid.index as usize).map(|s| s.kind)
    }

    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs
            .get(pid.index as usize)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// All live pids on the given CPU.
    pub fn procs_on_cpu(&self, node: NodeId, cpu: CpuId) -> Vec<Pid> {
        self.procs
            .iter()
            .filter(|s| s.alive && s.pid.node == node && s.pid.cpu == cpu)
            .map(|s| s.pid)
            .collect()
    }

    pub fn register_name(&mut self, node: NodeId, name: &str, pid: Pid) {
        self.names.insert((node, name.to_string()), pid);
    }

    /// Resolve a name to a live process.
    pub fn lookup_name(&self, node: NodeId, name: &str) -> Option<Pid> {
        let pid = *self.names.get(&(node, name.to_string()))?;
        self.is_alive(pid).then_some(pid)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    pub fn stable(&self) -> &StableStorage {
        &self.stable
    }

    pub fn stable_mut(&mut self) -> &mut StableStorage {
        &mut self.stable
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Rolling hash over the ordered event stream; equal hashes mean two
    /// runs behaved identically.
    pub fn trace_hash(&self) -> u64 {
        self.trace.hash()
    }

    /// Retained human-readable trace events (empty unless tracing enabled).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events().cloned().collect()
    }

    /// The transaction flight recorder (read side: timelines, JSON export).
    pub fn flightrec(&self) -> &FlightRecorder {
        &self.flightrec
    }

    pub fn flightrec_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flightrec
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    pub(crate) fn trace_note(
        &mut self,
        kind: &'static str,
        code: u64,
        detail: impl FnOnce() -> String,
    ) {
        self.trace.note(self.now, kind, code, detail);
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Apply a fault right now.
    pub fn inject(&mut self, fault: Fault) {
        self.apply_fault(fault);
    }

    /// Apply a fault at a future virtual time.
    pub fn schedule_fault(&mut self, at: SimTime, fault: Fault) {
        assert!(at >= self.now, "cannot schedule a fault in the past");
        self.push_event(at, EventKind::Fault(fault));
    }

    fn apply_fault(&mut self, fault: Fault) {
        self.trace_note("fault", 0xFA17, || fault.label());
        self.metrics.inc("sim.faults");
        match fault {
            Fault::KillCpu(node, cpu) => {
                if !self.topology.node(node).cpu_up(cpu) {
                    return;
                }
                self.topology.node_mut(node).cpus[cpu.0 as usize].up = false;
                for slot in &mut self.procs {
                    if slot.alive && slot.pid.node == node && slot.pid.cpu == cpu {
                        slot.alive = false;
                        slot.process = None;
                    }
                }
                self.notify_node(node, SystemEvent::CpuDown(node, cpu));
            }
            Fault::RestoreCpu(node, cpu) => {
                if self.topology.node(node).cpu_up(cpu) {
                    return;
                }
                self.topology.node_mut(node).cpus[cpu.0 as usize].up = true;
                self.notify_node(node, SystemEvent::CpuUp(node, cpu));
            }
            Fault::KillBus(node, bus) => {
                self.topology.node_mut(node).buses[(bus as usize) & 1] = false;
            }
            Fault::HealBus(node, bus) => {
                self.topology.node_mut(node).buses[(bus as usize) & 1] = true;
            }
            Fault::CutLink(link) => {
                self.topology.set_link_up(link, false);
                self.notify_all(SystemEvent::LinkDown(link));
            }
            Fault::HealLink(link) => {
                self.topology.set_link_up(link, true);
                self.notify_all(SystemEvent::LinkUp(link));
            }
            Fault::Partition(group) => {
                for link in self.topology.crossing_links(&group) {
                    self.topology.set_link_up(link, false);
                    self.notify_all(SystemEvent::LinkDown(link));
                }
            }
            Fault::HealAllLinks => {
                for link in self.topology.down_links() {
                    self.topology.set_link_up(link, true);
                    self.notify_all(SystemEvent::LinkUp(link));
                }
            }
            Fault::KillProcess(pid) => {
                if let Some(slot) = self.procs.get_mut(pid.index as usize) {
                    if slot.alive {
                        slot.alive = false;
                        slot.process = None;
                    }
                }
            }
        }
    }

    fn notify_node(&mut self, node: NodeId, ev: SystemEvent) {
        let delay = self.cfg.failure_detect_delay;
        let targets: Vec<Pid> = self
            .subscribers
            .iter()
            .copied()
            .filter(|p| p.node == node)
            .collect();
        for dst in targets {
            self.push_event(self.now + delay, EventKind::System { dst, ev });
        }
    }

    fn notify_all(&mut self, ev: SystemEvent) {
        let delay = self.cfg.failure_detect_delay;
        let targets: Vec<Pid> = self.subscribers.to_vec();
        for dst in targets {
            self.push_event(self.now + delay, EventKind::System { dst, ev });
        }
    }

    pub(crate) fn subscribe_system(&mut self, pid: Pid) {
        if !self.subscribers.contains(&pid) {
            self.subscribers.push(pid);
        }
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    /// Inject a message from "outside" (the test/experiment driver). The
    /// source pid is a reserved sentinel with index `u32::MAX`.
    pub fn send_external(&mut self, dst: Pid, payload: Payload) {
        let src = Pid {
            node: dst.node,
            cpu: dst.cpu,
            index: u32::MAX,
        };
        let _ = self.kernel_send(src, dst, payload);
    }

    /// Inject a message that originates on `from` and is routed over the
    /// network like any inter-node message (subject to partitions and
    /// in-flight loss).
    pub fn send_external_from(
        &mut self,
        from: NodeId,
        dst: Pid,
        payload: Payload,
    ) -> Result<(), SendError> {
        let src = Pid {
            node: from,
            cpu: CpuId(0),
            index: u32::MAX - 1,
        };
        self.kernel_send(src, dst, payload)
    }

    pub(crate) fn kernel_send(
        &mut self,
        src: Pid,
        dst: Pid,
        payload: Payload,
    ) -> Result<(), SendError> {
        let slot = self
            .procs
            .get(dst.index as usize)
            .filter(|s| s.alive)
            .ok_or(SendError::NoSuchProcess)?;
        debug_assert_eq!(slot.pid, dst);

        let (mut latency, via) = if src.index == u32::MAX || src.node == dst.node {
            if src.index != u32::MAX && src.cpu != dst.cpu {
                if !self.topology.node(dst.node).bus_up() {
                    return Err(SendError::BusDown);
                }
                self.metrics.inc("sim.msgs.bus");
                (self.cfg.bus_latency, Vec::new())
            } else {
                self.metrics.inc("sim.msgs.local");
                (self.cfg.local_latency, Vec::new())
            }
        } else {
            let route = self
                .topology
                .route(src.node, dst.node)
                .ok_or(SendError::Unreachable)?;
            self.metrics.inc("sim.msgs.net");
            self.metrics
                .add("sim.msgs.net.hops", route.links.len() as u64);
            // per-link loss: decided at send time, deterministically
            for &link in &route.links {
                let p = self.topology.link(link).loss_prob;
                if p > 0.0 && self.rng.random::<f64>() < p {
                    self.metrics.inc("sim.msgs.lost");
                    // the message vanishes on the wire: report success
                    self.trace.note(self.now, "msg.lost", dst.index as u64, || {
                        format!("{src}->{dst} lost on {link:?}")
                    });
                    return Ok(());
                }
            }
            let hops = route.links.len() as u64;
            (
                route.latency + self.cfg.net_hop_overhead.mul(hops),
                route.links,
            )
        };

        if self.cfg.jitter.as_micros() > 0 {
            latency = latency
                + SimDuration::from_micros(self.rng.random_range(0..=self.cfg.jitter.as_micros()));
        }

        self.push_event(
            self.now + latency,
            EventKind::Deliver {
                dst,
                src,
                payload,
                via,
            },
        );
        Ok(())
    }

    pub(crate) fn kernel_set_timer(&mut self, pid: Pid, delay: SimDuration, tag: u64) -> TimerId {
        let timer = TimerId(self.next_timer);
        self.next_timer += 1;
        self.push_event(self.now + delay, EventKind::Timer { pid, timer, tag });
        timer
    }

    pub(crate) fn kernel_cancel_timer(&mut self, timer: TimerId) {
        self.cancelled_timers.insert(timer);
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent { at, seq, kind });
    }

    // ------------------------------------------------------------------
    // The event loop
    // ------------------------------------------------------------------

    /// Dispatch a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver {
                dst,
                src,
                payload,
                via,
            } => {
                // lose the message if any link of its path went down in flight
                if via.iter().any(|&l| !self.topology.link(l).up) {
                    self.metrics.inc("sim.msgs.lost_in_flight");
                    self.trace.note(self.now, "msg.cut", dst.index as u64, || {
                        format!("{src}->{dst} lost to link failure in flight")
                    });
                    return true;
                }
                if !self.is_alive(dst) {
                    self.metrics.inc("sim.msgs.to_dead");
                    return true;
                }
                self.trace
                    .note(self.now, "deliver", dst.index as u64, || {
                        format!("{src}->{dst} {}", payload.type_name())
                    });
                self.with_process(dst, |proc, ctx| proc.on_message(ctx, src, payload));
            }
            EventKind::Timer { pid, timer, tag } => {
                if self.cancelled_timers.remove(&timer) || !self.is_alive(pid) {
                    return true;
                }
                self.trace.note(self.now, "timer", pid.index as u64, || {
                    format!("{pid} timer {timer:?} tag {tag}")
                });
                self.with_process(pid, |proc, ctx| proc.on_timer(ctx, timer, tag));
            }
            EventKind::System { dst, ev } => {
                if !self.is_alive(dst) {
                    return true;
                }
                self.trace.note(self.now, "system", dst.index as u64, || {
                    format!("{dst} {ev:?}")
                });
                self.with_process(dst, |proc, ctx| proc.on_system(ctx, ev));
            }
            EventKind::Fault(fault) => {
                self.apply_fault(fault);
            }
            EventKind::Start { pid } => {
                if !self.is_alive(pid) {
                    return true;
                }
                self.trace
                    .note(self.now, "start", pid.index as u64, || format!("{pid}"));
                self.with_process(pid, |proc, ctx| proc.on_start(ctx));
            }
        }
        true
    }

    fn with_process(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut Box<dyn Process>, &mut Ctx<'_>),
    ) {
        let idx = pid.index as usize;
        let Some(mut proc) = self.procs[idx].process.take() else {
            return;
        };
        let mut ctx = Ctx {
            world: self,
            pid,
            exited: false,
        };
        f(&mut proc, &mut ctx);
        let exited = ctx.exited;
        let slot = &mut self.procs[idx];
        if exited || !slot.alive {
            slot.alive = false;
            slot.process = None;
        } else {
            slot.process = Some(proc);
        }
    }

    /// Run until the virtual clock reaches `t` (events at exactly `t` are
    /// processed). The clock is advanced to `t` even if the queue drains.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until no events remain. Panics after 100 million events — a
    /// quiescence-based driver is only appropriate for workloads without
    /// free-running periodic processes.
    pub fn run_until_quiescent(&mut self) -> SimTime {
        let mut budget: u64 = 100_000_000;
        while self.step() {
            budget -= 1;
            assert!(budget > 0, "run_until_quiescent exceeded event budget");
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Process for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, src: Pid, payload: Payload) {
            let _ = ctx.send(src, payload);
        }
        fn kind(&self) -> &'static str {
            "echo"
        }
    }

    struct CollectorProbe(std::rc::Rc<std::cell::RefCell<Vec<u32>>>);
    impl Process for CollectorProbe {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            self.0.borrow_mut().push(payload.expect::<u32>());
        }
    }

    fn two_node_world() -> (World, NodeId, NodeId, LinkId) {
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(4);
        let b = w.add_node(4);
        let l = w.add_link(a, b, SimDuration::from_millis(2));
        (w, a, b, l)
    }

    #[test]
    fn local_bus_and_net_latencies() {
        let (mut w, a, b, _) = two_node_world();
        let echo_local = w.spawn(a, 0, Box::new(Echo));
        let echo_bus = w.spawn(a, 1, Box::new(Echo));
        let echo_net = w.spawn(b, 0, Box::new(Echo));
        w.run_until_quiescent();
        assert_eq!(w.process_kind(echo_local), Some("echo"));

        struct Driver {
            peers: Vec<Pid>,
            replies: std::rc::Rc<std::cell::RefCell<Vec<(u64,)>>>,
        }
        impl Process for Driver {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for &p in &self.peers {
                    ctx.send(p, Payload::new(1u32)).unwrap();
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, _payload: Payload) {
                self.replies.borrow_mut().push((ctx.now().as_micros(),));
            }
        }
        let replies = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        w.spawn(
            a,
            0,
            Box::new(Driver {
                peers: vec![echo_local, echo_bus, echo_net],
                replies: replies.clone(),
            }),
        );
        w.run_until_quiescent();
        let r = replies.borrow();
        assert_eq!(r.len(), 3, "all three echoes replied");
        // round-trips: local < bus < network
        let cfg = SimConfig::default();
        assert_eq!(r[0].0, cfg.local_latency.as_micros() * 2);
        assert_eq!(w.metrics().get("sim.msgs.bus"), 2);
        assert_eq!(w.metrics().get("sim.msgs.net"), 2);
    }

    #[test]
    fn send_to_dead_process_errors() {
        let (mut w, a, _, _) = two_node_world();
        let echo = w.spawn(a, 0, Box::new(Echo));
        w.run_until_quiescent();
        w.inject(Fault::KillProcess(echo));
        struct D {
            peer: Pid,
            result: std::rc::Rc<std::cell::RefCell<Option<Result<(), SendError>>>>,
        }
        impl Process for D {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let r = ctx.send(self.peer, Payload::new(0u32));
                *self.result.borrow_mut() = Some(r);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
        }
        let result = std::rc::Rc::new(std::cell::RefCell::new(None));
        w.spawn(
            a,
            1,
            Box::new(D {
                peer: echo,
                result: result.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(*result.borrow(), Some(Err(SendError::NoSuchProcess)));
    }

    #[test]
    fn cpu_kill_silences_processes_and_notifies_node() {
        let (mut w, a, _, _) = two_node_world();
        let echo = w.spawn(a, 0, Box::new(Echo));

        struct Watcher {
            events: std::rc::Rc<std::cell::RefCell<Vec<SystemEvent>>>,
        }
        impl Process for Watcher {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.subscribe_system();
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
            fn on_system(&mut self, _ctx: &mut Ctx<'_>, ev: SystemEvent) {
                self.events.borrow_mut().push(ev);
            }
        }
        let events = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        w.spawn(
            a,
            1,
            Box::new(Watcher {
                events: events.clone(),
            }),
        );
        w.run_until_quiescent();
        w.inject(Fault::KillCpu(a, CpuId(0)));
        w.run_for(SimDuration::from_millis(50));
        assert!(!w.is_alive(echo));
        assert_eq!(
            events.borrow().as_slice(),
            &[SystemEvent::CpuDown(a, CpuId(0))]
        );
        // restore notifies too
        w.inject(Fault::RestoreCpu(a, CpuId(0)));
        w.run_for(SimDuration::from_millis(50));
        assert_eq!(events.borrow().len(), 2);
        assert_eq!(events.borrow()[1], SystemEvent::CpuUp(a, CpuId(0)));
    }

    #[test]
    fn partition_makes_sends_fail_and_heals() {
        let (mut w, a, b, _) = two_node_world();
        let echo = w.spawn(b, 0, Box::new(Echo));
        w.run_until_quiescent();
        assert!(w.reachable(a, b));
        w.inject(Fault::Partition(vec![b]));
        assert!(!w.reachable(a, b));

        struct D {
            peer: Pid,
            result: std::rc::Rc<std::cell::RefCell<Option<Result<(), SendError>>>>,
        }
        impl Process for D {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let r = ctx.send(self.peer, Payload::new(0u32));
                *self.result.borrow_mut() = Some(r);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
        }
        let result = std::rc::Rc::new(std::cell::RefCell::new(None));
        w.spawn(
            a,
            0,
            Box::new(D {
                peer: echo,
                result: result.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(*result.borrow(), Some(Err(SendError::Unreachable)));
        w.inject(Fault::HealAllLinks);
        assert!(w.reachable(a, b));
    }

    #[test]
    fn in_flight_messages_die_when_link_cut() {
        let (mut w, a, b, l) = two_node_world();
        let echo = w.spawn(b, 0, Box::new(Echo));
        w.run_until_quiescent();
        w.send_external_from(a, echo, Payload::new(9u32)).unwrap();
        // cut the link before the message (2ms+hop) arrives
        w.schedule_fault(
            w.now() + SimDuration::from_micros(10),
            Fault::CutLink(l),
        );
        w.run_until_quiescent();
        assert_eq!(w.metrics().get("sim.msgs.lost_in_flight"), 1);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
            cancel_second: bool,
        }
        impl Process for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                let second = ctx.set_timer(SimDuration::from_millis(2), 2);
                if self.cancel_second {
                    ctx.cancel_timer(second);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: crate::TimerId, tag: u64) {
                self.fired.borrow_mut().push(tag);
            }
        }
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(2);
        w.spawn(
            a,
            0,
            Box::new(T {
                fired: fired.clone(),
                cancel_second: true,
            }),
        );
        w.run_until_quiescent();
        assert_eq!(*fired.borrow(), vec![1]);
    }

    #[test]
    fn name_service_resolves_live_processes_only() {
        struct Named;
        impl Process for Named {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.register_name("$SVC");
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
        }
        let (mut w, a, _, _) = two_node_world();
        let p = w.spawn(a, 0, Box::new(Named));
        w.run_until_quiescent();
        assert_eq!(w.lookup_name(a, "$SVC"), Some(p));
        w.inject(Fault::KillProcess(p));
        assert_eq!(w.lookup_name(a, "$SVC"), None);
    }

    #[test]
    fn deterministic_replay() {
        fn run() -> u64 {
            let (mut w, a, b, l) = two_node_world();
            let echo = w.spawn(b, 0, Box::new(Echo));
            struct Pinger {
                peer: Pid,
                n: u32,
            }
            impl Process for Pinger {
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    ctx.set_timer(SimDuration::from_micros(100), 0);
                }
                fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
                fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: crate::TimerId, _tag: u64) {
                    if self.n > 0 {
                        self.n -= 1;
                        let _ = ctx.send(self.peer, Payload::new(self.n));
                        ctx.set_timer(SimDuration::from_micros(700), 0);
                    }
                }
            }
            w.spawn(a, 1, Box::new(Pinger { peer: echo, n: 20 }));
            w.schedule_fault(SimTime::from_micros(5_000), Fault::CutLink(l));
            w.schedule_fault(SimTime::from_micros(9_000), Fault::HealLink(l));
            w.run_until(SimTime::from_micros(50_000));
            w.trace_hash()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn bus_failure_blocks_intra_node_traffic_until_healed() {
        let (mut w, a, _, _) = two_node_world();
        let echo = w.spawn(a, 0, Box::new(Echo));
        w.run_until_quiescent();
        w.inject(Fault::KillBus(a, 0));
        // one bus down: traffic still flows
        struct D {
            peer: Pid,
            results: std::rc::Rc<std::cell::RefCell<Vec<Result<(), SendError>>>>,
        }
        impl Process for D {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let r = ctx.send(self.peer, Payload::new(0u32));
                self.results.borrow_mut().push(r);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: Pid, _: Payload) {}
        }
        let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        w.spawn(
            a,
            1,
            Box::new(D {
                peer: echo,
                results: results.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(results.borrow()[0], Ok(()));
        // both buses down: BusDown
        w.inject(Fault::KillBus(a, 1));
        w.spawn(
            a,
            1,
            Box::new(D {
                peer: echo,
                results: results.clone(),
            }),
        );
        w.run_until_quiescent();
        assert_eq!(results.borrow()[1], Err(SendError::BusDown));
    }

    #[test]
    fn collector_smoke() {
        // sanity: external sends reach a process in timestamp order
        let mut w = World::new(SimConfig::default());
        let a = w.add_node(2);
        let sink: std::rc::Rc<std::cell::RefCell<Vec<u32>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let p = w.spawn(a, 0, Box::new(CollectorProbe(sink.clone())));
        w.run_until_quiescent();
        for i in 0..5u32 {
            w.send_external(p, Payload::new(i));
        }
        w.run_until_quiescent();
        assert_eq!(*sink.borrow(), vec![0, 1, 2, 3, 4]);
    }
}
