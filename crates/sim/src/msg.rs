//! Type-erased message payloads.
//!
//! All interprocess communication in the simulated GUARDIAN world is by
//! message. Every layer (storage, audit, TMF, application) defines its own
//! message enums; the kernel moves them around as type-erased [`Payload`]s
//! and the receiver downcasts to the type it expects — the moral equivalent
//! of GUARDIAN's untyped message buffers, but checked at runtime.

use std::any::Any;

/// A type-erased, owned message payload.
pub struct Payload {
    inner: Box<dyn Any + Send>,
    type_name: &'static str,
}

impl Payload {
    /// Wrap any `Send + 'static` value as a payload.
    pub fn new<T: Any + Send>(value: T) -> Payload {
        Payload {
            inner: Box::new(value),
            type_name: std::any::type_name::<T>(),
        }
    }

    /// The Rust type name of the wrapped value, for tracing and error
    /// messages.
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }

    /// True if the payload holds a value of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.inner.is::<T>()
    }

    /// Recover the wrapped value, or give the payload back on type mismatch.
    pub fn downcast<T: Any>(self) -> Result<T, Payload> {
        let type_name = self.type_name;
        match self.inner.downcast::<T>() {
            Ok(v) => Ok(*v),
            Err(inner) => Err(Payload { inner, type_name }),
        }
    }

    /// Borrow the wrapped value if it has type `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.inner.downcast_ref::<T>()
    }

    /// Recover the wrapped value, panicking with a descriptive message on a
    /// type mismatch. Use in process handlers where receiving an unexpected
    /// type is a protocol bug.
    #[track_caller]
    pub fn expect<T: Any>(self) -> T {
        let got = self.type_name;
        match self.downcast::<T>() {
            Ok(v) => v,
            Err(_) => panic!(
                "payload type mismatch: expected {}, got {}",
                std::any::type_name::<T>(),
                got
            ),
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload<{}>", self.type_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    #[test]
    fn roundtrip() {
        let p = Payload::new(Ping(7));
        assert!(p.is::<Ping>());
        assert!(!p.is::<String>());
        assert_eq!(p.downcast::<Ping>().unwrap(), Ping(7));
    }

    #[test]
    fn mismatch_returns_payload() {
        let p = Payload::new(Ping(1));
        let p = p.downcast::<String>().unwrap_err();
        // still intact after the failed downcast
        assert_eq!(p.downcast::<Ping>().unwrap(), Ping(1));
    }

    #[test]
    fn downcast_ref_and_name() {
        let p = Payload::new(42u64);
        assert_eq!(p.downcast_ref::<u64>(), Some(&42));
        assert!(p.type_name().contains("u64"));
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn expect_panics_with_context() {
        Payload::new(Ping(1)).expect::<String>();
    }
}
