//! The transaction flight recorder: a structured per-transaction event
//! layer recorded beside (never inside) the deterministic trace.
//!
//! Every layer of the stack — session verbs, TMP state transitions, lock
//! queueing in the DISCPROCESS, audit forces, takeovers — reports typed
//! [`FlightCause`] events tagged with a transaction id, the virtual time,
//! and the reporting process. Events land in a bounded ring per node;
//! a post-run pass reconstructs per-transaction timelines, attributes
//! commit latency to components (lock wait vs. force vs. checkpoint vs.
//! bus), and exports JSON for offline analysis.
//!
//! The recorder is a pure side channel: it never touches the RNG, the
//! event queue, the metrics, or the trace hash, so enabling it cannot
//! perturb a run — `recorder on` and `recorder off` produce bit-identical
//! [`crate::World::trace_hash`] values (pinned by an equivalence test in
//! the chaos crate). It is off by default.

use crate::ids::Pid;
use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A transaction identity as the recorder sees it. The storage crate's
/// `Transid` cannot appear here (the sim crate sits below storage), so
/// this mirrors its fields; `Transid::flight_id()` converts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlightTransid {
    pub home_node: u8,
    pub cpu: u8,
    pub seq: u64,
}

impl fmt::Debug for FlightTransid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}.{}", self.home_node, self.cpu, self.seq)
    }
}

impl fmt::Display for FlightTransid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The lock mode as the recorder sees it. The storage crate's `LockMode`
/// cannot appear here (the sim crate sits below storage), so this mirrors
/// its variants; the DISCPROCESS converts at the report site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlightLockMode {
    Shared,
    Exclusive,
    IntentShared,
    IntentExclusive,
}

impl FlightLockMode {
    pub fn label(&self) -> &'static str {
        match self {
            FlightLockMode::Shared => "s",
            FlightLockMode::Exclusive => "x",
            FlightLockMode::IntentShared => "is",
            FlightLockMode::IntentExclusive => "ix",
        }
    }
}

/// Why a flight event was recorded. Every variant is cheap to copy; the
/// numeric payloads carry counts (volumes in a phase, records in a
/// boxcar) rather than strings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlightCause {
    /// BEGIN-TRANSACTION assigned this transid (TMP).
    Begin,
    /// END-TRANSACTION arrived; commit processing starts (TMP).
    EndRequested,
    /// Phase one started against this many participants (TMP).
    Phase1Start { participants: u32 },
    /// One participant acknowledged phase one (TMP).
    Phase1VolumeDone,
    /// A lock request conflicted and queued (DISCPROCESS).
    LockQueued { mode: FlightLockMode },
    /// A lock was granted — immediately or after a wait (DISCPROCESS);
    /// `group` is the size of the grant set after the grant, so a reader
    /// convoy (shared group > 1) is distinguishable from writer blocking.
    LockGranted { mode: FlightLockMode, group: u64 },
    /// A lock wait hit its timeout; the requester is told to restart
    /// (DISCPROCESS).
    LockTimeout,
    /// A parked lock wait was cancelled because the transaction was
    /// fenced (DISCPROCESS).
    LockFenced,
    /// Audit images appended to the trail buffer (DISCPROCESS → AUDIT).
    AuditAppend { records: u32 },
    /// Every lazy audit append of the transaction has been acknowledged
    /// (DISCPROCESS).
    AppendsDrained,
    /// The AUDITPROCESS began forcing the trail for this transaction.
    AuditForceStart,
    /// The audit force completed; `boxcar` waiters shared it.
    AuditForced { boxcar: u32 },
    /// A partitioned trail force started carrying this transaction's
    /// images on `partition` (AUDITPROCESS).
    PartitionForceStart { partition: u32 },
    /// One partition of the trail acknowledged this transaction's
    /// phase-one force (AUDITPROCESS).
    PartitionForced { partition: u32 },
    /// The commit (Monitor Audit Trail) record was queued for the group
    /// commit boxcar (TMP).
    MonitorEnqueued,
    /// The monitor boxcar began its force (TMP).
    MonitorForceStart,
    /// The monitor force completed; `boxcar` commit records shared it —
    /// this is the commit point (TMP).
    MonitorForced { boxcar: u32 },
    /// Phase two finished; the transaction is durably committed (TMP).
    Committed,
    /// The transaction aborted (TMP).
    Aborted,
    /// Backout began applying before-images (TMP → BACKOUT).
    BackoutStart,
    /// Backout finished (TMP).
    BackoutDone,
    /// A process-pair takeover touched this in-flight transaction.
    Takeover,
    /// The application session observed BEGIN complete.
    SessionBegan,
    /// The application session observed the commit.
    SessionCommitted,
    /// The application session observed the abort.
    SessionAborted,
    /// An online dump of a volume began (DISCPROCESS); events of one dump
    /// share a synthetic marker transid.
    DumpBegin { generation: u64 },
    /// One fuzzy-dump page copied (DISCPROCESS).
    DumpScan { records: u32 },
    /// An online dump completed and its end marker was forced
    /// (DISCPROCESS).
    DumpEnd { generation: u64 },
    /// The capacity manager purged audit-trail files (AUDITPROCESS).
    TrailPurge { files: u32 },
}

impl FlightCause {
    /// Stable name for display and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            FlightCause::Begin => "begin",
            FlightCause::EndRequested => "end_requested",
            FlightCause::Phase1Start { .. } => "phase1_start",
            FlightCause::Phase1VolumeDone => "phase1_volume_done",
            FlightCause::LockQueued { mode } => match mode {
                FlightLockMode::Shared => "lock_queued_s",
                FlightLockMode::Exclusive => "lock_queued_x",
                FlightLockMode::IntentShared => "lock_queued_is",
                FlightLockMode::IntentExclusive => "lock_queued_ix",
            },
            FlightCause::LockGranted { mode, .. } => match mode {
                FlightLockMode::Shared => "lock_granted_s",
                FlightLockMode::Exclusive => "lock_granted_x",
                FlightLockMode::IntentShared => "lock_granted_is",
                FlightLockMode::IntentExclusive => "lock_granted_ix",
            },
            FlightCause::LockTimeout => "lock_timeout",
            FlightCause::LockFenced => "lock_fenced",
            FlightCause::AuditAppend { .. } => "audit_append",
            FlightCause::AppendsDrained => "appends_drained",
            FlightCause::AuditForceStart => "audit_force_start",
            FlightCause::AuditForced { .. } => "audit_forced",
            FlightCause::PartitionForceStart { .. } => "partition_force_start",
            FlightCause::PartitionForced { .. } => "partition_forced",
            FlightCause::MonitorEnqueued => "monitor_enqueued",
            FlightCause::MonitorForceStart => "monitor_force_start",
            FlightCause::MonitorForced { .. } => "monitor_forced",
            FlightCause::Committed => "committed",
            FlightCause::Aborted => "aborted",
            FlightCause::BackoutStart => "backout_start",
            FlightCause::BackoutDone => "backout_done",
            FlightCause::Takeover => "takeover",
            FlightCause::SessionBegan => "session_began",
            FlightCause::SessionCommitted => "session_committed",
            FlightCause::SessionAborted => "session_aborted",
            FlightCause::DumpBegin { .. } => "dump_begin",
            FlightCause::DumpScan { .. } => "dump_scan",
            FlightCause::DumpEnd { .. } => "dump_end",
            FlightCause::TrailPurge { .. } => "trail_purge",
        }
    }

    /// The numeric payload, if the variant carries one.
    pub fn arg(&self) -> Option<(&'static str, u64)> {
        match self {
            FlightCause::Phase1Start { participants } => {
                Some(("participants", u64::from(*participants)))
            }
            FlightCause::AuditAppend { records } => Some(("records", u64::from(*records))),
            FlightCause::AuditForced { boxcar } | FlightCause::MonitorForced { boxcar } => {
                Some(("boxcar", u64::from(*boxcar)))
            }
            FlightCause::PartitionForceStart { partition }
            | FlightCause::PartitionForced { partition } => {
                Some(("partition", u64::from(*partition)))
            }
            FlightCause::DumpBegin { generation } | FlightCause::DumpEnd { generation } => {
                Some(("generation", *generation))
            }
            FlightCause::DumpScan { records } => Some(("records", u64::from(*records))),
            FlightCause::TrailPurge { files } => Some(("files", u64::from(*files))),
            FlightCause::LockGranted { group, .. } => Some(("group", *group)),
            _ => None,
        }
    }

    /// Which commit-latency component a gap *ending* at this event is
    /// attributed to (see [`attribute_commit`]).
    pub fn component(&self) -> LatencyComponent {
        match self {
            FlightCause::LockQueued { .. } => LatencyComponent::Bus,
            FlightCause::LockGranted { .. }
            | FlightCause::LockTimeout
            | FlightCause::LockFenced => LatencyComponent::LockWait,
            FlightCause::AppendsDrained | FlightCause::AuditAppend { .. } => {
                LatencyComponent::Checkpoint
            }
            FlightCause::AuditForced { .. }
            | FlightCause::PartitionForced { .. }
            | FlightCause::MonitorForceStart
            | FlightCause::MonitorForced { .. } => LatencyComponent::Force,
            _ => LatencyComponent::Bus,
        }
    }
}

/// Commit-latency attribution buckets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LatencyComponent {
    /// Waiting in a lock queue.
    LockWait,
    /// Disc forces of the audit trail (phase-one and monitor-record).
    Force,
    /// Waiting for checkpoints / lazy audit appends to drain.
    Checkpoint,
    /// Message travel and processing (everything else).
    Bus,
}

impl LatencyComponent {
    pub fn label(&self) -> &'static str {
        match self {
            LatencyComponent::LockWait => "lock_wait",
            LatencyComponent::Force => "force",
            LatencyComponent::Checkpoint => "checkpoint",
            LatencyComponent::Bus => "bus",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    pub at: SimTime,
    pub pid: Pid,
    pub transid: FlightTransid,
    pub cause: FlightCause,
}

/// One committed transaction's lifetime decomposed by component. The four
/// components partition the `Begin → Committed` window, so they sum
/// exactly to `total_us`; `commit_us` is the classical `EndRequested →
/// Committed` sub-window, kept separately so it can be cross-checked
/// against the TMP's own `tmf.commit_latency_us` histogram.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommitAttribution {
    /// Full window: the transaction's first recorded event (normally
    /// `Begin`) to its first `Committed`.
    pub total_us: u64,
    /// END-TRANSACTION to commit point: the commit latency proper.
    pub commit_us: u64,
    pub lock_wait_us: u64,
    pub force_us: u64,
    pub checkpoint_us: u64,
    pub bus_us: u64,
}

impl CommitAttribution {
    pub fn component_sum(&self) -> u64 {
        self.lock_wait_us + self.force_us + self.checkpoint_us + self.bus_us
    }
}

/// The per-world recorder: one bounded ring of events per node.
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    rings: BTreeMap<u8, VecDeque<FlightEvent>>,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(enabled: bool, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            enabled,
            capacity: capacity.max(1),
            rings: BTreeMap::new(),
            dropped: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Events evicted from full rings (diagnostic; timelines of long runs
    /// may be truncated at the front once this is non-zero).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event (no-op while disabled).
    pub fn record(&mut self, at: SimTime, pid: Pid, transid: FlightTransid, cause: FlightCause) {
        if !self.enabled {
            return;
        }
        let ring = self.rings.entry(pid.node.0).or_default();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped += 1;
        }
        ring.push_back(FlightEvent {
            at,
            pid,
            transid,
            cause,
        });
    }

    /// Every retained event, ordered by time (ties broken by node, then
    /// ring order — each per-node ring is already time-ordered, so a
    /// stable sort on time alone is deterministic).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut all: Vec<FlightEvent> = self.rings.values().flatten().copied().collect();
        all.sort_by_key(|e| e.at);
        all
    }

    /// Per-transaction timelines, each time-ordered.
    pub fn timelines(&self) -> BTreeMap<FlightTransid, Vec<FlightEvent>> {
        let mut out: BTreeMap<FlightTransid, Vec<FlightEvent>> = BTreeMap::new();
        for e in self.events() {
            out.entry(e.transid).or_default().push(e);
        }
        out
    }

    /// Human-readable timeline of one transaction (empty string if the
    /// recorder never saw it).
    pub fn format_timeline(&self, transid: FlightTransid) -> String {
        let Some(events) = self.timelines().remove(&transid) else {
            return String::new();
        };
        format_timeline(transid, &events)
    }

    /// JSON export of every timeline (hand-rolled; no serialization
    /// dependency in the workspace).
    pub fn to_json(&self) -> String {
        let timelines = self.timelines();
        let mut s = String::from("{\n  \"dropped\": ");
        s.push_str(&self.dropped.to_string());
        s.push_str(",\n  \"transactions\": [\n");
        let n = timelines.len();
        for (i, (transid, events)) in timelines.iter().enumerate() {
            s.push_str("    {\"transid\": \"");
            s.push_str(&transid.to_string());
            s.push_str("\", \"events\": [\n");
            for (j, e) in events.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"at_us\": {}, \"node\": {}, \"cpu\": {}, \"cause\": \"{}\"",
                    e.at.as_micros(),
                    e.pid.node.0,
                    e.pid.cpu.0,
                    e.cause.name()
                ));
                if let Some((k, v)) = e.cause.arg() {
                    s.push_str(&format!(", \"{k}\": {v}"));
                }
                s.push('}');
                s.push_str(if j + 1 < events.len() { ",\n" } else { "\n" });
            }
            s.push_str("    ]}");
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Render one transaction's timeline as indented text.
pub fn format_timeline(transid: FlightTransid, events: &[FlightEvent]) -> String {
    let mut s = format!("  {transid}:\n");
    let t0 = events.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
    for e in events {
        s.push_str(&format!(
            "    +{:>9}us  \\N{}.{}  {}",
            e.at.since(t0).as_micros(),
            e.pid.node.0,
            e.pid.cpu.0,
            e.cause.name()
        ));
        if let Some((k, v)) = e.cause.arg() {
            s.push_str(&format!(" ({k}={v})"));
        }
        s.push('\n');
    }
    s
}

/// Decompose one committed transaction's lifetime. The full window runs
/// from its first `Begin` (falling back to `EndRequested` if the ring
/// evicted the front) to the first `Committed` after its first
/// `EndRequested`; each adjacent-event gap is attributed to the component
/// of the gap's *ending* event. Gaps before `EndRequested` capture the
/// verbs — lock waits taken while the transaction was still issuing
/// updates land in `lock_wait_us`, which is where contention lives (locks
/// are acquired during the verbs, never between END and the commit
/// point). Returns `None` if the commit window is absent (uncommitted, or
/// the ring evicted it).
pub fn attribute_commit(events: &[FlightEvent]) -> Option<CommitAttribution> {
    let endreq = events
        .iter()
        .position(|e| e.cause == FlightCause::EndRequested)?;
    let end = events[endreq..]
        .iter()
        .position(|e| e.cause == FlightCause::Committed)?
        + endreq;
    let start = events[..endreq]
        .iter()
        .position(|e| e.cause == FlightCause::Begin)
        .unwrap_or(endreq);
    let mut a = CommitAttribution {
        total_us: events[end].at.since(events[start].at).as_micros(),
        commit_us: events[end].at.since(events[endreq].at).as_micros(),
        ..CommitAttribution::default()
    };
    for pair in events[start..=end].windows(2) {
        let gap = pair[1].at.since(pair[0].at).as_micros();
        match pair[1].cause.component() {
            LatencyComponent::LockWait => a.lock_wait_us += gap,
            LatencyComponent::Force => a.force_us += gap,
            LatencyComponent::Checkpoint => a.checkpoint_us += gap,
            LatencyComponent::Bus => a.bus_us += gap,
        }
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CpuId, NodeId};
    use crate::time::SimDuration;

    fn pid(node: u8, cpu: u8) -> Pid {
        Pid {
            node: NodeId(node),
            cpu: CpuId(cpu),
            index: 0,
        }
    }

    fn tid(seq: u64) -> FlightTransid {
        FlightTransid {
            home_node: 0,
            cpu: 1,
            seq,
        }
    }

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let mut fr = FlightRecorder::new(false, 16);
        fr.record(at(1), pid(0, 0), tid(1), FlightCause::Begin);
        assert!(fr.events().is_empty());
        assert!(fr.timelines().is_empty());
    }

    #[test]
    fn ring_is_bounded_per_node() {
        let mut fr = FlightRecorder::new(true, 4);
        for i in 0..10 {
            fr.record(at(i), pid(0, 0), tid(1), FlightCause::Begin);
        }
        assert_eq!(fr.events().len(), 4);
        assert_eq!(fr.dropped(), 6);
        // another node's ring is independent
        fr.record(at(100), pid(1, 0), tid(2), FlightCause::Begin);
        assert_eq!(fr.events().len(), 5);
    }

    #[test]
    fn timelines_merge_nodes_in_time_order() {
        let mut fr = FlightRecorder::new(true, 64);
        fr.record(at(10), pid(0, 1), tid(7), FlightCause::Begin);
        fr.record(at(30), pid(0, 1), tid(7), FlightCause::Committed);
        fr.record(
            at(20),
            pid(1, 2),
            tid(7),
            FlightCause::LockGranted {
                mode: FlightLockMode::Exclusive,
                group: 1,
            },
        );
        let tl = fr.timelines();
        let events = &tl[&tid(7)];
        let causes: Vec<&str> = events.iter().map(|e| e.cause.name()).collect();
        assert_eq!(causes, vec!["begin", "lock_granted_x", "committed"]);
    }

    #[test]
    fn attribution_partitions_the_commit_window() {
        let events = vec![
            FlightEvent {
                at: at(0),
                pid: pid(0, 1),
                transid: tid(1),
                cause: FlightCause::Begin,
            },
            FlightEvent {
                at: at(100),
                pid: pid(0, 1),
                transid: tid(1),
                cause: FlightCause::EndRequested,
            },
            FlightEvent {
                at: at(150),
                pid: pid(0, 1),
                transid: tid(1),
                cause: FlightCause::Phase1Start { participants: 1 },
            },
            FlightEvent {
                at: at(400),
                pid: pid(0, 2),
                transid: tid(1),
                cause: FlightCause::AuditForced { boxcar: 2 },
            },
            FlightEvent {
                at: at(450),
                pid: pid(0, 1),
                transid: tid(1),
                cause: FlightCause::Phase1VolumeDone,
            },
            FlightEvent {
                at: at(900),
                pid: pid(0, 1),
                transid: tid(1),
                cause: FlightCause::MonitorForced { boxcar: 1 },
            },
            FlightEvent {
                at: at(1000),
                pid: pid(0, 1),
                transid: tid(1),
                cause: FlightCause::Committed,
            },
        ];
        let a = attribute_commit(&events).expect("committed window present");
        assert_eq!(a.total_us, 1000, "full window starts at Begin");
        assert_eq!(a.commit_us, 900, "commit window starts at EndRequested");
        assert_eq!(a.component_sum(), a.total_us, "components partition the window");
        assert_eq!(a.force_us, 250 + 450);
        assert_eq!(a.bus_us, 100 + 50 + 50 + 100);
        assert_eq!(a.lock_wait_us, 0);
    }

    #[test]
    fn attribution_counts_pre_end_lock_waits() {
        // contention shows up during the verbs, before END-TRANSACTION:
        // the full window must attribute it to lock_wait while the commit
        // sub-window stays the classical END → commit latency
        let mk = |us, cause| FlightEvent {
            at: at(us),
            pid: pid(0, 1),
            transid: tid(2),
            cause,
        };
        let events = vec![
            mk(0, FlightCause::Begin),
            mk(
                50,
                FlightCause::LockQueued {
                    mode: FlightLockMode::Exclusive,
                },
            ),
            mk(
                400,
                FlightCause::LockGranted {
                    mode: FlightLockMode::Exclusive,
                    group: 1,
                },
            ),
            mk(500, FlightCause::EndRequested),
            mk(900, FlightCause::MonitorForced { boxcar: 1 }),
            mk(1000, FlightCause::Committed),
        ];
        let a = attribute_commit(&events).expect("committed window present");
        assert_eq!(a.total_us, 1000);
        assert_eq!(a.commit_us, 500);
        assert_eq!(a.lock_wait_us, 350);
        assert_eq!(a.force_us, 400);
        assert_eq!(a.bus_us, 50 + 100 + 100);
        assert_eq!(a.component_sum(), a.total_us);
    }

    #[test]
    fn attribution_without_begin_falls_back_to_commit_window() {
        // a ring that evicted the transaction's front truncates the full
        // window to the commit window instead of mis-measuring
        let mk = |us, cause| FlightEvent {
            at: at(us),
            pid: pid(0, 1),
            transid: tid(3),
            cause,
        };
        let events = vec![
            mk(500, FlightCause::EndRequested),
            mk(1000, FlightCause::Committed),
        ];
        let a = attribute_commit(&events).expect("committed window present");
        assert_eq!(a.total_us, 500);
        assert_eq!(a.commit_us, 500);
    }

    #[test]
    fn attribution_absent_without_commit() {
        let events = vec![FlightEvent {
            at: at(0),
            pid: pid(0, 1),
            transid: tid(1),
            cause: FlightCause::EndRequested,
        }];
        assert!(attribute_commit(&events).is_none());
    }

    #[test]
    fn json_export_shape() {
        let mut fr = FlightRecorder::new(true, 16);
        fr.record(at(5), pid(0, 1), tid(3), FlightCause::Begin);
        fr.record(at(9), pid(0, 1), tid(3), FlightCause::MonitorForced { boxcar: 4 });
        let json = fr.to_json();
        assert!(json.contains("\"transid\": \"T0.1.3\""));
        assert!(json.contains("\"cause\": \"monitor_forced\", \"boxcar\": 4"));
        assert!(json.contains("\"at_us\": 5"));
    }
}
