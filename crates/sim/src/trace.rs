//! Event tracing and the determinism hash.
//!
//! Two facilities:
//! * a bounded human-readable trace (off by default, enabled via
//!   [`crate::SimConfig::trace_enabled`]) for debugging protocol runs;
//! * a rolling FNV-1a hash over the ordered event stream, always on, used by
//!   tests to assert that two runs with the same seed and fault schedule are
//!   bit-identical in behaviour.

use crate::time::SimTime;
use std::collections::VecDeque;

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub at: SimTime,
    pub kind: &'static str,
    pub detail: String,
}

pub(crate) struct Trace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Trace {
    pub fn new(enabled: bool, capacity: usize) -> Trace {
        Trace {
            enabled,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            hash: FNV_OFFSET,
        }
    }

    /// Fold an event into the determinism hash (always) and into the
    /// readable trace (when enabled). `code` should identify the event kind
    /// and principals; `detail` is only evaluated when tracing is on.
    pub fn note(&mut self, at: SimTime, kind: &'static str, code: u64, detail: impl FnOnce() -> String) {
        self.hash ^= at.as_micros();
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        self.hash ^= code;
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        for b in kind.bytes() {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        if self.enabled {
            if self.events.len() == self.capacity {
                self.events.pop_front();
            }
            self.events.push_back(TraceEvent {
                at,
                kind,
                detail: detail(),
            });
        }
    }

    pub fn hash(&self) -> u64 {
        self.hash
    }

    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_reflects_event_stream() {
        let mut a = Trace::new(false, 8);
        let mut b = Trace::new(false, 8);
        a.note(SimTime::from_micros(1), "x", 10, String::new);
        b.note(SimTime::from_micros(1), "x", 10, String::new);
        assert_eq!(a.hash(), b.hash());
        b.note(SimTime::from_micros(2), "x", 10, String::new);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn disabled_trace_skips_detail_closure() {
        let mut t = Trace::new(false, 8);
        t.note(SimTime::ZERO, "x", 0, || panic!("must not be called"));
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn bounded_capacity() {
        let mut t = Trace::new(true, 2);
        for i in 0..5u64 {
            t.note(SimTime::from_micros(i), "e", i, || format!("{i}"));
        }
        let kept: Vec<String> = t.events().map(|e| e.detail.clone()).collect();
        assert_eq!(kept, vec!["3".to_string(), "4".to_string()]);
    }
}
