//! # encompass-sim
//!
//! A deterministic discrete-event simulation (DES) kernel that models the
//! Tandem NonStop hardware and operating-system substrate described in
//! Borr, *Transaction Monitoring in ENCOMPASS* (VLDB 1981):
//!
//! * **Nodes** of 2–16 **processor modules** (CPUs) connected by dual
//!   high-speed interprocessor buses ("Dynabus").
//! * A **network** of nodes connected by point-to-point links with
//!   best-path routing and automatic re-routing on link failure.
//! * **Stable storage** that survives processor failures (the simulated
//!   disc media), with independently failable mirrored drives.
//! * **Processes** that communicate only by **messages** (the GUARDIAN
//!   abstraction), scheduled by a single virtual clock.
//! * **Failure injection**: CPU crash/restore, bus failure, link cut,
//!   network partition, process kill — all schedulable at exact virtual
//!   times, making every failure interleaving reproducible.
//!
//! The kernel is intentionally single-threaded: given the same
//! [`SimConfig::seed`] and the same fault schedule, a run produces an
//! identical event trace (see [`World::trace_hash`]), which is what makes
//! the recovery protocols in the upper crates property-testable.
//!
//! ## Example
//!
//! ```
//! use encompass_sim::{World, SimConfig, Process, Ctx, Payload, Pid};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, src: Pid, payload: Payload) {
//!         // bounce the message straight back
//!         let _ = ctx.send(src, payload);
//!     }
//! }
//!
//! struct Driver { peer: Pid, got_reply: bool }
//! impl Process for Driver {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(self.peer, Payload::new("ping")).unwrap();
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_>, _src: Pid, _payload: Payload) {
//!         self.got_reply = true;
//!     }
//! }
//!
//! let mut world = World::new(SimConfig::default());
//! let node = world.add_node(2);
//! let echo = world.spawn(node, 0, Box::new(Echo));
//! world.spawn(node, 1, Box::new(Driver { peer: echo, got_reply: false }));
//! world.run_until_quiescent();
//! assert!(world.now().as_micros() > 0);
//! ```

pub mod config;
pub mod event;
pub mod fault;
pub mod flightrec;
pub mod ids;
pub mod kernel;
pub mod metrics;
pub mod msg;
pub mod process;
pub mod stable;
pub mod time;
pub mod topology;
pub mod trace;

pub use config::SimConfig;
pub use fault::Fault;
pub use flightrec::{
    attribute_commit, format_timeline, CommitAttribution, FlightCause, FlightEvent,
    FlightLockMode, FlightRecorder, FlightTransid, LatencyComponent,
};
pub use ids::{CpuId, LinkId, NodeId, Pid};
pub use kernel::World;
pub use metrics::{HistogramHandle, Metrics};
pub use msg::Payload;
pub use process::{Ctx, Process, SendError, SystemEvent, TimerId};
pub use stable::StableStorage;
pub use time::{SimDuration, SimTime};
